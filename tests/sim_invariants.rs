//! Simulator invariants across crates: accounting identities, recovery
//! semantics, and the qualitative claims C1/C2 in miniature.

use wdm_robust_routing::prelude::*;

fn nsfnet(w: usize) -> WdmNetwork {
    NetworkBuilder::nsfnet(w).build()
}

fn cfg(policy: Policy, seed: u64) -> SimConfig {
    SimConfig {
        policy,
        traffic: TrafficModel::new(4.0, 10.0),
        duration: 500.0,
        failure_rate: 0.0,
        mean_repair: 10.0,
        reconfig_threshold: None,
        seed,
        switchover_time: 0.001,
        setup_time_per_hop: 0.05,
    }
}

#[test]
fn accounting_identity_offered_equals_admitted_plus_blocked() {
    let net = nsfnet(8);
    for policy in [
        Policy::CostOnly,
        Policy::Joint { a: 2.0 },
        Policy::TwoStep,
        Policy::PrimaryOnly,
    ] {
        let m = run_sim(&net, cfg(policy, 123));
        assert_eq!(m.offered, m.admitted + m.blocked, "{}", policy.name());
        assert!(m.load_samples == m.offered);
        assert!(m.peak_network_load <= 1.0 + 1e-9);
        assert!(m.mean_network_load() <= m.peak_network_load);
    }
}

#[test]
fn active_protection_recovers_instantly_passive_cannot() {
    // The paper's C2 claim is about *recovery latency*: the active approach
    // answers a primary-path cut with a pre-provisioned backup (no
    // re-computation, no setup failure risk at cut time), while the passive
    // approach must re-establish a connection under post-failure resource
    // pressure. (A drop-rate comparison between the two policies would be
    // confounded: protection reserves twice the channels, so the residual
    // capacity differs.)
    let net = nsfnet(16);
    let mk = |policy| SimConfig {
        failure_rate: 0.3,
        mean_repair: 15.0,
        traffic: TrafficModel::new(3.0, 20.0),
        duration: 800.0,
        ..cfg(policy, 99)
    };
    let seeds: Vec<u64> = (0..3).collect();
    let active = run_replications(&net, mk(Policy::CostOnly), &seeds);
    let passive = run_replications(&net, mk(Policy::PrimaryOnly), &seeds);
    let fast: u64 = active.iter().map(|m| m.fast_switchovers).sum();
    let active_hits: u64 = active
        .iter()
        .map(|m| m.fast_switchovers + m.passive_recoveries + m.recovery_failures)
        .sum();
    assert!(fast > 0, "active protection must switch over");
    assert!(
        fast as f64 / active_hits as f64 > 0.5,
        "most primary cuts should be answered instantly: {fast}/{active_hits}"
    );
    // The passive policy by construction never recovers instantly.
    assert_eq!(passive.iter().map(|m| m.fast_switchovers).sum::<u64>(), 0);
    assert!(passive
        .iter()
        .any(|m| m.passive_recoveries + m.recovery_failures > 0));
}

#[test]
fn joint_policy_flattens_load_claim_c1() {
    // C1's mechanism: load-aware routing keeps the *maximum* link load lower
    // at equal offered traffic, so the network crosses the reconfiguration
    // threshold later/less often. We assert the mechanism (mean sampled
    // network load), which is monotone and far less noisy than raw
    // reconfiguration event counts at one specific threshold; the
    // exp_dynamic_sim binary reports the reconfiguration counts themselves
    // across a load sweep.
    let net = nsfnet(8);
    let mk = |policy| SimConfig {
        traffic: TrafficModel::new(4.0, 10.0),
        duration: 400.0,
        ..cfg(policy, 7)
    };
    let seeds: Vec<u64> = (0..4).collect();
    let cost_only = run_replications(&net, mk(Policy::CostOnly), &seeds);
    let joint = run_replications(
        &net,
        mk(Policy::Joint {
            a: std::f64::consts::E,
        }),
        &seeds,
    );
    let mean_load =
        |ms: &[Metrics]| ms.iter().map(|m| m.mean_network_load()).sum::<f64>() / ms.len() as f64;
    assert!(
        mean_load(&joint) <= mean_load(&cost_only) + 0.02,
        "joint {} vs cost-only {} mean network load",
        mean_load(&joint),
        mean_load(&cost_only)
    );
}

#[test]
fn repairs_restore_capacity() {
    let net = nsfnet(8);
    let m = run_sim(
        &net,
        SimConfig {
            failure_rate: 1.0,
            mean_repair: 2.0, // fast repair
            duration: 800.0,
            traffic: TrafficModel::new(1.0, 5.0),
            ..cfg(Policy::CostOnly, 31)
        },
    );
    assert!(m.failures_injected > 100);
    // With fast repairs and light traffic, blocking stays negligible.
    assert!(
        m.blocking_probability() < 0.05,
        "blocking {} despite fast repairs",
        m.blocking_probability()
    );
}

#[test]
fn streamed_and_batch_replications_agree() {
    let net = nsfnet(8);
    let seeds: Vec<u64> = (0..4).collect();
    let batch = run_replications(&net, cfg(Policy::CostOnly, 0), &seeds);
    let mut streamed: Vec<(u64, Metrics)> = Vec::new();
    run_replications_streaming(&net, cfg(Policy::CostOnly, 0), &seeds, |seed, m| {
        streamed.push((seed, m));
    });
    streamed.sort_by_key(|(s, _)| *s);
    for (i, (seed, m)) in streamed.iter().enumerate() {
        assert_eq!(*seed, seeds[i]);
        assert_eq!(*m, batch[i]);
    }
}
