//! Experiments T2 / T3 / L2 in test form: the paper's approximation
//! guarantees hold empirically on randomized instances.
//!
//! * Theorem 2: §3.3 cost ≤ 2 × exact optimum (premise: conversion cost at a
//!   node ≤ cost of any incident link).
//! * Theorem 3: MinCog threshold ≤ 3 × the exact minimal feasible threshold.
//! * Lemma 2: refined cost ≤ auxiliary (unrefined) cost; refined legs stay
//!   edge-disjoint.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_robust_routing::core::exact::{exhaustive_best_pair, ilp_best_pair};
use wdm_robust_routing::core::mincog::{exact_min_load_threshold, find_two_paths_mincog};
use wdm_robust_routing::graph::EdgeId;
use wdm_robust_routing::prelude::*;

/// Random small premise-satisfying network: n ≤ 9 nodes, random links,
/// uniform per-link costs ≥ 1, full conversion cost ≤ min link cost.
fn random_net(rng: &mut ChaCha8Rng, n: usize, w: usize, link_p: f64) -> WdmNetwork {
    let conv_cost = rng.gen_range(0.0..1.0); // <= every link cost (>= 1)
    let mut b = NetworkBuilder::new(w);
    for _ in 0..n {
        b.add_node(ConversionTable::Full { cost: conv_cost });
    }
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(link_p) {
                // Random availability, never empty.
                let mut set = WavelengthSet::empty();
                for l in 0..w {
                    if rng.gen_bool(0.7) {
                        set.insert(Wavelength(l as u8));
                    }
                }
                if set.is_empty() {
                    set.insert(Wavelength(rng.gen_range(0..w) as u8));
                }
                b.add_link_with(
                    NodeId(u as u32),
                    NodeId(v as u32),
                    rng.gen_range(1.0..10.0),
                    set,
                );
            }
        }
    }
    b.build()
}

#[test]
fn theorem2_ratio_against_exhaustive() {
    let mut rng = ChaCha8Rng::seed_from_u64(2001);
    let mut measured = Vec::new();
    let mut feasible = 0;
    for _ in 0..120 {
        let n = rng.gen_range(4..8);
        let net = random_net(&mut rng, n, 3, 0.4);
        assert!(net.satisfies_ratio_premise());
        let st = ResidualState::fresh(&net);
        let s = NodeId(0);
        let t = NodeId(n as u32 - 1);
        let approx = RobustRouteFinder::new(&net).find(&st, s, t);
        let (exact, stats) = exhaustive_best_pair(&net, &st, s, t, 20_000);
        assert!(!stats.truncated);
        match (approx, exact) {
            (Ok(a), Some(e)) => {
                feasible += 1;
                let ratio = a.total_cost() / e.total_cost();
                assert!(
                    ratio <= 2.0 + 1e-9,
                    "Theorem 2 violated: approx {} vs exact {}",
                    a.total_cost(),
                    e.total_cost()
                );
                assert!(ratio >= 1.0 - 1e-9, "approx below exact?!");
                measured.push(ratio);
            }
            (Err(_), None) => {} // consistently infeasible
            // The aux-graph reduction is complete: if Suurballe finds no
            // pair in G', none exists in G. The converse must hold too.
            (a, e) => panic!(
                "feasibility mismatch: {a:?} vs {:?}",
                e.map(|r| r.total_cost())
            ),
        }
    }
    assert!(feasible >= 30, "not enough feasible instances ({feasible})");
    let mean = measured.iter().sum::<f64>() / measured.len() as f64;
    // Typical quality is far below the worst-case bound.
    assert!(mean < 1.25, "mean ratio suspiciously high: {mean}");
}

#[test]
fn ilp_agrees_with_exhaustive_on_small_instances() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut checked = 0;
    for _ in 0..25 {
        let n = rng.gen_range(4..6);
        let net = random_net(&mut rng, n, 2, 0.45);
        let st = ResidualState::fresh(&net);
        let s = NodeId(0);
        let t = NodeId(n as u32 - 1);
        let (ex, stats) = exhaustive_best_pair(&net, &st, s, t, 20_000);
        assert!(!stats.truncated);
        let (ilp, _) = ilp_best_pair(&net, &st, s, t, &Default::default()).unwrap();
        match (ex, ilp) {
            (Some(a), Some(b)) => {
                checked += 1;
                assert!(
                    (a.total_cost() - b.total_cost()).abs() < 1e-5,
                    "exhaustive {} vs ILP {}",
                    a.total_cost(),
                    b.total_cost()
                );
            }
            (None, None) => {}
            (a, b) => panic!(
                "feasibility mismatch: exhaustive {:?} vs ilp {:?}",
                a.map(|r| r.total_cost()),
                b.map(|r| r.total_cost())
            ),
        }
    }
    assert!(checked >= 5, "not enough feasible instances ({checked})");
}

#[test]
fn theorem3_bottleneck_ratio() {
    use wdm_robust_routing::core::mincog::route_bottleneck_load;
    let mut rng = ChaCha8Rng::seed_from_u64(3001);
    let mut feasible = 0;
    for _ in 0..60 {
        let n = rng.gen_range(5..9);
        // Uniform capacities (full complements) so Theorem 3's constant
        // applies exactly: 2x from the doubling schedule + 1 from the
        // current-vs-prospective 1/N admission offset.
        let mut b = NetworkBuilder::new(4);
        for _ in 0..n {
            b.add_node(ConversionTable::Full { cost: 0.5 });
        }
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(0.5) {
                    b.add_link(NodeId(u as u32), NodeId(v as u32), rng.gen_range(1.0..10.0));
                }
            }
        }
        let net = b.build();
        let mut st = ResidualState::fresh(&net);
        // Random pre-load.
        for ei in 0..net.link_count() {
            let e = EdgeId::from(ei);
            for l in net.lambda(e).iter() {
                if rng.gen_bool(0.3) {
                    let _ = st.occupy(&net, e, l);
                }
            }
        }
        let s = NodeId(0);
        let t = NodeId(n as u32 - 1);
        let heur = find_two_paths_mincog(&net, &st, s, t, 2.0);
        let exact = exact_min_load_threshold(&net, &st, s, t, 2.0);
        match (heur, exact) {
            (Ok(h), Ok(e)) => {
                feasible += 1;
                let b_heur = route_bottleneck_load(&net, &st, &h.route);
                assert!(
                    b_heur <= 3.0 * e.threshold + 1e-6,
                    "Theorem 3 violated: bottleneck {} vs exact {}",
                    b_heur,
                    e.threshold
                );
                assert!(b_heur + 1e-9 >= e.threshold, "heuristic beat the optimum?!");
                assert!(h.route.is_edge_disjoint());
            }
            (Err(_), Err(_)) => {}
            (h, e) => panic!("feasibility mismatch: {h:?} vs {e:?}"),
        }
    }
    assert!(feasible >= 15, "not enough feasible instances ({feasible})");
}

#[test]
fn lemma2_refinement_dominates_and_preserves_disjointness() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut feasible = 0;
    for _ in 0..150 {
        let n = rng.gen_range(4..9);
        let net = random_net(&mut rng, n, 3, 0.45);
        let st = ResidualState::fresh(&net);
        let s = NodeId(rng.gen_range(0..n as u32));
        let mut t = NodeId(rng.gen_range(0..n as u32));
        if s == t {
            t = NodeId((t.0 + 1) % n as u32);
        }
        if let Ok((route, diag)) = RobustRouteFinder::new(&net).find_with_diagnostics(&st, s, t) {
            feasible += 1;
            assert!(
                diag.refined_cost <= diag.aux_cost + 1e-9,
                "Lemma 2 violated: refined {} > aux {}",
                diag.refined_cost,
                diag.aux_cost
            );
            assert!(route.is_edge_disjoint(), "Lemma 2 disjointness violated");
            route.primary.validate(&net, &st).unwrap();
            route.backup.validate(&net, &st).unwrap();
        }
    }
    assert!(feasible >= 40, "not enough feasible instances ({feasible})");
}
