//! End-to-end integration: the full pipeline on the standard WAN
//! topologies, across all policies, with occupancy bookkeeping.

use wdm_robust_routing::core::mincog::route_bottleneck_load;
use wdm_robust_routing::prelude::*;

#[test]
fn nsfnet_all_pairs_have_robust_routes() {
    let net = NetworkBuilder::nsfnet(8).build();
    let state = ResidualState::fresh(&net);
    let mut finder = RobustRouteFinder::new(&net);
    let n = net.node_count();
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let route = finder
                .find(&state, NodeId(s as u32), NodeId(t as u32))
                .unwrap_or_else(|e| panic!("{s} -> {t}: {e}"));
            assert!(route.is_edge_disjoint());
            route.primary.validate(&net, &state).unwrap();
            route.backup.validate(&net, &state).unwrap();
            assert!(route.primary.cost <= route.backup.cost);
        }
    }
}

#[test]
fn arpanet_like_all_pairs_under_every_policy() {
    let topo = wdm_robust_routing::graph::topology::arpanet_like();
    let net =
        NetworkBuilder::from_topology(&topo, 8, ConversionTable::Full { cost: 1.0 }, 0.01).build();
    let state = ResidualState::fresh(&net);
    // Sample of pairs (full n² × policies would be slow in debug builds).
    let pairs = [(0u32, 19u32), (3, 16), (7, 12), (19, 0), (10, 5)];
    // Note: Ksp needs a generous k here — with k = 8 the candidate list for
    // the network-diameter pair (0, 19) contains no edge-disjoint
    // combination at all (the baseline's known incompleteness; the §3.3
    // algorithm has no such parameter to tune).
    for policy in [
        Policy::CostOnly,
        Policy::LoadOnly { a: 2.0 },
        Policy::Joint { a: 2.0 },
        Policy::Unrefined,
        Policy::Ksp { k: 32 },
    ] {
        for &(s, t) in &pairs {
            let r = policy.route(&net, &state, NodeId(s), NodeId(t));
            let r = r.unwrap_or_else(|e| panic!("{} on {s}->{t}: {e}", policy.name()));
            if let ProvisionedRoute::Protected(route) = &r {
                assert!(route.is_edge_disjoint(), "{}", policy.name());
            } else {
                panic!("{} must protect", policy.name());
            }
        }
    }
}

#[test]
fn occupancy_accumulates_and_releases_exactly() {
    let net = NetworkBuilder::nsfnet(8).build();
    let mut state = ResidualState::fresh(&net);
    let mut finder = RobustRouteFinder::new(&net);
    let mut routes = Vec::new();
    // Fill with connections until the first block.
    let mut pair = 0u32;
    loop {
        let s = NodeId(pair % 14);
        let t = NodeId((pair * 5 + 3) % 14);
        pair += 1;
        if s == t {
            continue;
        }
        match finder.find(&state, s, t) {
            Ok(r) => {
                r.occupy(&net, &mut state).unwrap();
                routes.push(r);
            }
            Err(_) => break,
        }
        assert!(routes.len() < 10_000, "network never saturates?");
    }
    assert!(!routes.is_empty());
    assert!(
        state.network_load(&net) > 0.5,
        "saturation should push load up"
    );
    // Releasing everything restores the fresh state.
    for r in &routes {
        r.release(&mut state);
    }
    assert_eq!(state, ResidualState::fresh(&net));
}

#[test]
fn policies_trade_cost_for_load_on_a_stressed_network() {
    let net = NetworkBuilder::nsfnet(8).build();
    let mut state = ResidualState::fresh(&net);
    let mut finder = RobustRouteFinder::new(&net);
    // Stress one corridor.
    for _ in 0..3 {
        if let Ok(r) = finder.find(&state, NodeId(0), NodeId(13)) {
            r.occupy(&net, &mut state).unwrap();
        }
    }
    let cost_only = finder.find(&state, NodeId(0), NodeId(13)).unwrap();
    let joint = find_two_paths_joint(&net, &state, NodeId(0), NodeId(13), 2.0).unwrap();
    // The joint route never has a worse bottleneck than the cost-only route.
    let b_cost = route_bottleneck_load(&net, &state, &cost_only);
    let b_joint = route_bottleneck_load(&net, &state, &joint.route);
    assert!(
        b_joint <= b_cost + 1e-9,
        "joint bottleneck {b_joint} vs cost-only {b_cost}"
    );
    // And cost-only never pays more than joint in route cost.
    assert!(cost_only.total_cost() <= joint.route.total_cost() + 1e-9);
}

#[test]
fn ring_has_exactly_one_disjoint_pair_and_it_is_found() {
    let topo = wdm_robust_routing::graph::topology::ring(8, 100.0);
    let net =
        NetworkBuilder::from_topology(&topo, 4, ConversionTable::Full { cost: 0.5 }, 0.01).build();
    let state = ResidualState::fresh(&net);
    let route = RobustRouteFinder::new(&net)
        .find(&state, NodeId(0), NodeId(4))
        .unwrap();
    // On a ring the only disjoint pair is clockwise + counter-clockwise:
    // 4 hops each at cost 1.0.
    assert_eq!(route.primary.len() + route.backup.len(), 8);
    assert!((route.total_cost() - 8.0).abs() < 1e-9);
}

#[test]
fn grid_torus_routes_everywhere_with_limited_conversion() {
    let topo = wdm_robust_routing::graph::topology::grid(4, 4, true, 50.0);
    let net = NetworkBuilder::from_topology(
        &topo,
        8,
        ConversionTable::Range {
            range: 2,
            cost: 0.2,
        },
        0.01,
    )
    .build();
    let state = ResidualState::fresh(&net);
    let mut finder = RobustRouteFinder::new(&net);
    for t in 1..16u32 {
        let route = finder.find(&state, NodeId(0), NodeId(t));
        assert!(route.is_ok(), "0 -> {t}: {route:?}");
    }
}

#[test]
fn no_conversion_network_still_routes_on_continuous_wavelengths() {
    let net = {
        let topo = wdm_robust_routing::graph::topology::nsfnet();
        NetworkBuilder::from_topology(&topo, 4, ConversionTable::None, 0.01).build()
    };
    let state = ResidualState::fresh(&net);
    let route = RobustRouteFinder::new(&net)
        .find(&state, NodeId(0), NodeId(13))
        .expect("wavelength-continuous routing is feasible on a fresh net");
    // Without conversion every leg stays on one wavelength.
    assert_eq!(route.primary.conversion_count(), 0);
    assert_eq!(route.backup.conversion_count(), 0);
}
