//! Experiment F1: structural reproduction of the paper's Figure 1 — the
//! residual network → auxiliary graph construction of §3.3.1.
//!
//! The published bitmap is not machine-readable, so we assert every
//! *structural rule* of the construction on a residual network with the same
//! qualitative features (multi-wavelength links, partial availability,
//! wavelength conversion at interior nodes).

use wdm_robust_routing::core::aux_graph::{AuxArc, AuxGraph, AuxNode, AuxSpec};
use wdm_robust_routing::prelude::*;

fn fig1_net() -> (WdmNetwork, Vec<wdm_robust_routing::graph::EdgeId>) {
    let mut b = NetworkBuilder::new(3);
    let n: Vec<_> = (0..4)
        .map(|_| b.add_node(ConversionTable::Full { cost: 1.0 }))
        .collect();
    let e = vec![
        b.add_link_with(n[0], n[1], 2.0, WavelengthSet::from_indices(&[0, 1])),
        b.add_link_with(n[1], n[3], 2.0, WavelengthSet::from_indices(&[1, 2])),
        b.add_link_with(n[0], n[2], 3.0, WavelengthSet::from_indices(&[0])),
        b.add_link_with(n[2], n[3], 3.0, WavelengthSet::from_indices(&[2])),
        b.add_link_with(n[1], n[2], 1.0, WavelengthSet::from_indices(&[0, 1, 2])),
    ];
    (b.build(), e)
}

#[test]
fn edge_node_count_is_two_per_admitted_link_plus_terminals() {
    let (net, _) = fig1_net();
    let state = ResidualState::fresh(&net);
    let aux = AuxGraph::build(&net, &state, NodeId(0), NodeId(3), AuxSpec::g_prime());
    // §3.3.1: "G' contains 2m nodes" (+ s' and t'').
    assert_eq!(aux.graph.node_count(), 2 * net.link_count() + 2);
}

#[test]
fn every_admitted_link_has_exactly_one_traversal_arc_with_average_weight() {
    let (net, edges) = fig1_net();
    let state = ResidualState::fresh(&net);
    let aux = AuxGraph::build(&net, &state, NodeId(0), NodeId(3), AuxSpec::g_prime());
    for &pe in &edges {
        let traversals: Vec<_> = aux
            .graph
            .edge_ids()
            .filter(|&ae| matches!(aux.graph.edge(ae).kind, AuxArc::Traversal(x) if x == pe))
            .collect();
        assert_eq!(traversals.len(), 1, "one traversal arc per link");
        // ω(u_out^e -> v_in^e) = Σ_{λ∈avail} w(e,λ) / |Λ_avail(e)|; costs are
        // uniform here, so the average equals the base cost.
        let w = aux.graph.edge(traversals[0]).weight;
        assert!((w - net.min_link_cost(pe)).abs() < 1e-12);
        // Its endpoints are the link's own edge-nodes.
        let (u, v) = aux.graph.endpoints(traversals[0]);
        assert!(matches!(aux.graph.node(u), AuxNode::OutNode(x) if *x == pe));
        assert!(matches!(aux.graph.node(v), AuxNode::InNode(x) if *x == pe));
    }
}

#[test]
fn conversion_arcs_exist_iff_a_conversion_is_possible() {
    let (net, edges) = fig1_net();
    let state = ResidualState::fresh(&net);
    let aux = AuxGraph::build(&net, &state, NodeId(0), NodeId(3), AuxSpec::g_prime());
    // With full conversion, every (in-link, out-link) pair at an interior
    // node gets a conversion arc: node 1 has in {e0}, out {e1, e4};
    // node 2 has in {e2, e4}, out {e3}.
    let mut got: Vec<(usize, usize)> = aux
        .graph
        .edge_ids()
        .filter_map(|ae| match aux.graph.edge(ae).kind {
            AuxArc::Conversion(_) => {
                let (u, v) = aux.graph.endpoints(ae);
                let from = match aux.graph.node(u) {
                    AuxNode::InNode(x) => x.index(),
                    _ => panic!("conversion arc must start at an in-node"),
                };
                let to = match aux.graph.node(v) {
                    AuxNode::OutNode(x) => x.index(),
                    _ => panic!("conversion arc must end at an out-node"),
                };
                Some((from, to))
            }
            _ => None,
        })
        .collect();
    got.sort();
    let e = |i: usize| edges[i].index();
    let mut want = vec![(e(0), e(1)), (e(0), e(4)), (e(2), e(3)), (e(4), e(3))];
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn conversion_weight_is_average_over_allowed_pairs() {
    let (net, edges) = fig1_net();
    let state = ResidualState::fresh(&net);
    let aux = AuxGraph::build(&net, &state, NodeId(0), NodeId(3), AuxSpec::g_prime());
    // e0 (avail {0,1}) -> e1 (avail {1,2}) at node 1, full conversion cost 1:
    // pairs (0,1)=1, (0,2)=1, (1,1)=0, (1,2)=1 -> K_v = 4, avg = 3/4.
    let arc = aux
        .graph
        .edge_ids()
        .find(|&ae| {
            matches!(aux.graph.edge(ae).kind, AuxArc::Conversion(_))
                && matches!(aux.graph.node(aux.graph.src(ae)), AuxNode::InNode(x) if *x == edges[0])
                && matches!(aux.graph.node(aux.graph.dst(ae)), AuxNode::OutNode(x) if *x == edges[1])
        })
        .expect("conversion arc e0 -> e1");
    assert!((aux.graph.edge(arc).weight - 0.75).abs() < 1e-12);
}

#[test]
fn source_and_sink_taps_cover_exactly_the_terminal_links() {
    let (net, edges) = fig1_net();
    let state = ResidualState::fresh(&net);
    let aux = AuxGraph::build(&net, &state, NodeId(0), NodeId(3), AuxSpec::g_prime());
    let mut from_source = Vec::new();
    let mut to_sink = Vec::new();
    for ae in aux.graph.edge_ids() {
        if matches!(aux.graph.edge(ae).kind, AuxArc::Tap) {
            assert_eq!(aux.graph.edge(ae).weight, 0.0, "taps are free");
            let (u, v) = aux.graph.endpoints(ae);
            if u == aux.source {
                match aux.graph.node(v) {
                    AuxNode::OutNode(x) => from_source.push(*x),
                    other => panic!("source tap must reach an out-node, got {other:?}"),
                }
            } else {
                assert_eq!(v, aux.sink);
                match aux.graph.node(u) {
                    AuxNode::InNode(x) => to_sink.push(*x),
                    other => panic!("sink tap must leave an in-node, got {other:?}"),
                }
            }
        }
    }
    from_source.sort();
    to_sink.sort();
    assert_eq!(
        from_source,
        vec![edges[0], edges[2]],
        "E_out(s) = {{e0, e2}}"
    );
    assert_eq!(to_sink, vec![edges[1], edges[3]], "E_in(t) = {{e1, e3}}");
}

#[test]
fn semilightpath_in_g_has_corresponding_path_in_g_prime() {
    // §3.3.2: "for every semilightpath in G from s to t, there is a
    // corresponding path in G' from s' to t''". Verify via reachability.
    let (net, _) = fig1_net();
    let state = ResidualState::fresh(&net);
    let aux = AuxGraph::build(&net, &state, NodeId(0), NodeId(3), AuxSpec::g_prime());
    let slp = wdm_robust_routing::core::optimal_slp::optimal_semilightpath(
        &net,
        &state,
        NodeId(0),
        NodeId(3),
    )
    .expect("reachable");
    // Walk the corresponding edge-nodes in G'.
    let mut at = aux.source;
    for hop in &slp.hops {
        let uo = aux.out_node_of(hop.edge).expect("admitted");
        let vi = aux.in_node_of(hop.edge).expect("admitted");
        // There must be an arc at -> uo (tap or conversion) and uo -> vi.
        assert!(
            aux.graph
                .out_edges(at)
                .iter()
                .any(|&e| aux.graph.dst(e) == uo),
            "no arc into out-node of {:?}",
            hop.edge
        );
        assert!(
            aux.graph
                .out_edges(uo)
                .iter()
                .any(|&e| aux.graph.dst(e) == vi),
            "missing traversal arc"
        );
        at = vi;
    }
    assert!(
        aux.graph
            .out_edges(at)
            .iter()
            .any(|&e| aux.graph.dst(e) == aux.sink),
        "final in-node must tap into t''"
    );
}

#[test]
fn no_disjoint_pair_in_g_prime_implies_none_in_g() {
    // §3.3.2's converse sanity: on a bridge network both checks agree.
    let mut b = NetworkBuilder::new(2);
    let n: Vec<_> = (0..3)
        .map(|_| b.add_node(ConversionTable::Full { cost: 0.5 }))
        .collect();
    b.add_link(n[0], n[1], 1.0);
    b.add_link(n[0], n[1], 1.0);
    b.add_link(n[1], n[2], 1.0); // bridge
    let net = b.build();
    let state = ResidualState::fresh(&net);
    let aux = AuxGraph::build(&net, &state, NodeId(0), NodeId(2), AuxSpec::g_prime());
    let pair = wdm_robust_routing::graph::suurballe::edge_disjoint_pair(
        &aux.graph,
        aux.source,
        aux.sink,
        |e| aux.graph.edge(e).weight,
    );
    assert!(pair.is_none());
    let direct = RobustRouteFinder::new(&net).find(&state, NodeId(0), NodeId(2));
    assert!(direct.is_err());
}
