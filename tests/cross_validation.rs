//! Cross-crate property tests: independent implementations must agree.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_robust_routing::graph::mincostflow::min_cost_disjoint_paths;
use wdm_robust_routing::graph::suurballe::edge_disjoint_pair;
use wdm_robust_routing::graph::{DiGraph, NodeId};
use wdm_robust_routing::prelude::*;

// Suurballe and min-cost flow must agree on every random digraph.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn suurballe_equals_min_cost_flow(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = rng.gen_range(4..12u32);
        let mut arcs = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(0.35) {
                    arcs.push((u, v, rng.gen_range(1..100) as f64));
                }
            }
        }
        let g = DiGraph::weighted(n as usize, &arcs);
        let s = NodeId(0);
        let t = NodeId(n - 1);
        let a = edge_disjoint_pair(&g, s, t, |e| g.weight(e));
        let b = min_cost_disjoint_paths(&g, s, t, 2, |e| g.weight(e));
        match (a, b) {
            (None, None) => {}
            (Some(pair), Some((paths, cost))) => {
                prop_assert!((pair.total_cost - cost).abs() < 1e-6);
                prop_assert!(!paths[0].shares_edge_with(&paths[1]));
                prop_assert!(pair.is_edge_disjoint());
            }
            (a, b) => prop_assert!(false, "existence mismatch {a:?} vs {b:?}"),
        }
    }

    /// The §3.3 finder's output is always a pair of valid, edge-disjoint
    /// semilightpaths whose cost matches the Eq. 1 recomputation.
    #[test]
    fn robust_routes_are_always_valid(seed in 0u64..5_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = rng.gen_range(4..10usize);
        let w = rng.gen_range(1..5usize);
        let mut b = NetworkBuilder::new(w);
        for _ in 0..n {
            let conv = match rng.gen_range(0..3) {
                0 => ConversionTable::None,
                1 => ConversionTable::Full { cost: rng.gen_range(0.0..2.0) },
                _ => ConversionTable::Range { range: 1, cost: rng.gen_range(0.0..2.0) },
            };
            b.add_node(conv);
        }
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v && rng.gen_bool(0.4) {
                    let mut set = WavelengthSet::empty();
                    for l in 0..w {
                        if rng.gen_bool(0.8) {
                            set.insert(Wavelength(l as u8));
                        }
                    }
                    if set.is_empty() {
                        set.insert(Wavelength(0));
                    }
                    b.add_link_with(NodeId(u), NodeId(v), rng.gen_range(0.5..20.0), set);
                }
            }
        }
        let net = b.build();
        let mut state = ResidualState::fresh(&net);
        // Random occupancy.
        for ei in 0..net.link_count() {
            let e = wdm_robust_routing::graph::EdgeId::from(ei);
            for l in net.lambda(e).iter() {
                if rng.gen_bool(0.2) {
                    let _ = state.occupy(&net, e, l);
                }
            }
        }
        let s = NodeId(0);
        let t = NodeId(n as u32 - 1);
        if let Ok(route) = RobustRouteFinder::new(&net).find(&state, s, t) {
            prop_assert!(route.is_edge_disjoint());
            prop_assert!(route.primary.validate(&net, &state).is_ok());
            prop_assert!(route.backup.validate(&net, &state).is_ok());
            prop_assert!((route.primary.recompute_cost(&net) - route.primary.cost).abs() < 1e-9);
            prop_assert!((route.backup.recompute_cost(&net) - route.backup.cost).abs() < 1e-9);
            prop_assert!(route.primary.cost <= route.backup.cost);
            // Occupying and releasing is an exact inverse.
            let before = state.clone();
            let mut st = state.clone();
            route.occupy(&net, &mut st).unwrap();
            route.release(&mut st);
            prop_assert_eq!(before, st);
        }
    }

    /// Baseline dominance: nothing beats the exact optimum, and the paper's
    /// §3.3 algorithm is never worse than the unrefined variant.
    #[test]
    fn policy_cost_ordering(seed in 0u64..2_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = rng.gen_range(4..7usize);
        let mut b = NetworkBuilder::new(2);
        for _ in 0..n {
            b.add_node(ConversionTable::Full { cost: rng.gen_range(0.0..0.5) });
        }
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v && rng.gen_bool(0.5) {
                    b.add_link(NodeId(u), NodeId(v), rng.gen_range(1.0..10.0));
                }
            }
        }
        let net = b.build();
        let state = ResidualState::fresh(&net);
        let s = NodeId(0);
        let t = NodeId(n as u32 - 1);
        let approx = RobustRouteFinder::new(&net).find(&state, s, t);
        let (exact, stats) =
            wdm_robust_routing::core::exact::exhaustive_best_pair(&net, &state, s, t, 50_000);
        prop_assert!(!stats.truncated);
        if let (Ok(a), Some(e)) = (&approx, &exact) {
            prop_assert!(a.total_cost() + 1e-9 >= e.total_cost());
            // Unrefined (when it succeeds) is never better than refined.
            if let Ok(u) =
                wdm_robust_routing::core::baselines::suurballe_unrefined(&net, &state, s, t)
            {
                prop_assert!(a.total_cost() <= u.total_cost() + 1e-9);
            }
            // Two-step (when it succeeds) is also bounded below by exact.
            if let Ok(ts) = wdm_robust_routing::core::baselines::two_step_pair(&net, &state, s, t) {
                prop_assert!(ts.total_cost() + 1e-9 >= e.total_cost());
            }
        }
    }
}
