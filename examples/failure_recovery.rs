//! Failure recovery: active (pre-provisioned backup) vs passive (recompute
//! on failure) protection under fibre cuts — the paper's §1 motivation.
//!
//! ```sh
//! cargo run --release --example failure_recovery
//! ```

use wdm_robust_routing::prelude::*;

fn main() {
    let net = NetworkBuilder::nsfnet(16).build();
    let seeds: Vec<u64> = (0..8).collect();

    println!("NSFNET, W = 16, fibre-cut rate 0.2/unit, mean repair 20 units");
    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>10} {:>12}",
        "policy", "failures", "switchovers", "passive", "dropped", "fast ratio"
    );
    for policy in [
        Policy::CostOnly,    // active protection (paper)
        Policy::PrimaryOnly, // passive approach
    ] {
        let cfg = SimConfig {
            policy,
            traffic: TrafficModel::new(4.0, 15.0),
            duration: 2000.0,
            failure_rate: 0.2,
            mean_repair: 20.0,
            reconfig_threshold: None,
            seed: 0,
            switchover_time: 0.001,
            setup_time_per_hop: 0.05,
        };
        let runs = run_replications(&net, cfg, &seeds);
        let sum = |f: fn(&Metrics) -> u64| runs.iter().map(f).sum::<u64>();
        let failures = sum(|m| m.failures_injected);
        let fast = sum(|m| m.fast_switchovers);
        let passive = sum(|m| m.passive_recoveries);
        let dropped = sum(|m| m.recovery_failures);
        let ratio = if fast + passive + dropped > 0 {
            fast as f64 / (fast + passive + dropped) as f64
        } else {
            0.0
        };
        println!(
            "{:<16} {:>9} {:>12} {:>12} {:>10} {:>11.1}%",
            policy.name(),
            failures,
            fast,
            passive,
            dropped,
            ratio * 100.0
        );
    }
    println!("\nActive protection answers almost every cut with an instant");
    println!("switchover; the passive policy must recompute routes under");
    println!("post-failure resource pressure and drops what it cannot fit.");
}
