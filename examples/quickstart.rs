//! Quickstart: provision a protected connection on NSFNET.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wdm_robust_routing::prelude::*;

fn main() {
    // The classic 14-node NSFNET backbone, 8 wavelengths per fibre,
    // full wavelength conversion at every node.
    let net = NetworkBuilder::nsfnet(8).build();
    let mut state = ResidualState::fresh(&net);

    // Request: Seattle (0) -> DC (13).
    let (s, t) = (NodeId(0), NodeId(13));
    let mut finder = RobustRouteFinder::new(&net);
    let route = finder
        .find(&state, s, t)
        .expect("NSFNET is 2-edge-connected, a disjoint pair exists");

    assert!(route.is_edge_disjoint());
    println!("request {s} -> {t}");
    println!(
        "  primary: {} hops, {} conversions, cost {:.2}",
        route.primary.len(),
        route.primary.conversion_count(),
        route.primary.cost
    );
    for hop in &route.primary.hops {
        let (u, v) = net.endpoints(hop.edge);
        println!("    {u} -> {v} on {}", hop.wavelength);
    }
    println!(
        "  backup : {} hops, {} conversions, cost {:.2}",
        route.backup.len(),
        route.backup.conversion_count(),
        route.backup.cost
    );
    for hop in &route.backup.hops {
        let (u, v) = net.endpoints(hop.edge);
        println!("    {u} -> {v} on {}", hop.wavelength);
    }

    // Reserve the channels; the residual network shrinks accordingly.
    route.occupy(&net, &mut state).expect("channels are free");
    let snap = load_snapshot(&net, &state);
    println!(
        "network load after provisioning: max {:.3}, mean {:.3}, {} channels in use",
        snap.max, snap.mean, snap.channels_in_use
    );

    // A second request between the same endpoints still succeeds: the
    // reserved wavelengths are avoided automatically.
    let second = finder.find(&state, s, t).expect("capacity remains");
    println!(
        "second request total cost {:.2} (first was {:.2})",
        second.total_cost(),
        route.total_cost()
    );
}
