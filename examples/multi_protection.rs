//! Extensions beyond the paper: node-disjoint protection (survives router
//! failures, not just fibre cuts) and k-disjoint fans (multiple backups).
//!
//! ```sh
//! cargo run --example multi_protection
//! ```

use wdm_robust_routing::core::multi::find_k_disjoint;
use wdm_robust_routing::prelude::*;

fn main() {
    let net = NetworkBuilder::nsfnet(8).build();
    let state = ResidualState::fresh(&net);
    let (s, t) = (NodeId(0), NodeId(8));

    // Edge-disjoint (the paper's §3.3): survives any single fibre cut.
    let edge = RobustRouteFinder::new(&net).find(&state, s, t).unwrap();
    println!(
        "edge-disjoint pair : cost {:.1} ({} + {} hops)",
        edge.total_cost(),
        edge.primary.len(),
        edge.backup.len()
    );

    // Node-disjoint: additionally survives any single router failure.
    let node = find_node_disjoint(&net, &state, s, t).unwrap();
    println!(
        "node-disjoint pair : cost {:.1} ({} + {} hops)",
        node.total_cost(),
        node.primary.len(),
        node.backup.len()
    );
    assert!(
        !node
            .primary
            .physical_path()
            .shares_interior_node_with(&node.backup.physical_path(), net.graph()),
        "legs must not share interior routers"
    );
    assert!(node.total_cost() + 1e-9 >= edge.total_cost());

    // k-disjoint fan: a primary plus two simultaneous backups.
    let fan = find_k_disjoint(&net, &state, s, t, 3).unwrap();
    println!("3-disjoint fan     : cost {:.1}", fan.total_cost());
    for (i, leg) in fan.legs.iter().enumerate() {
        let role = if i == 0 { "primary " } else { "backup  " };
        println!(
            "  {role}: {} hops, cost {:.1}, wavelengths {:?}",
            leg.len(),
            leg.cost,
            leg.hops.iter().map(|h| h.wavelength).collect::<Vec<_>>()
        );
    }
    assert!(fan.is_edge_disjoint());

    // Degree limits cap the fan size: asking for more reports cleanly.
    match find_k_disjoint(&net, &state, s, t, 5) {
        Err(e) => println!("5-disjoint fan     : {e}"),
        Ok(f) => println!("5-disjoint fan     : cost {:.1}", f.total_cost()),
    }
}
