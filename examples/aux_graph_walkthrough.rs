//! Walkthrough of the §3.3.1 auxiliary-graph construction (the paper's
//! Figure 1), printed as Graphviz DOT.
//!
//! ```sh
//! cargo run --example aux_graph_walkthrough
//! # pipe the DOT blocks through `dot -Tsvg` to render them
//! ```

use wdm_robust_routing::core::aux_graph::{AuxArc, AuxGraph, AuxNode, AuxSpec};
use wdm_robust_routing::graph::dot::to_dot;
use wdm_robust_routing::prelude::*;

fn main() {
    // A residual network in the spirit of Figure 1: four nodes, five links,
    // three wavelengths, partial availability.
    let mut b = NetworkBuilder::new(3);
    let n: Vec<_> = (0..4)
        .map(|_| b.add_node(ConversionTable::Full { cost: 1.0 }))
        .collect();
    let e = [
        b.add_link_with(n[0], n[1], 2.0, WavelengthSet::from_indices(&[0, 1])),
        b.add_link_with(n[1], n[3], 2.0, WavelengthSet::from_indices(&[1, 2])),
        b.add_link_with(n[0], n[2], 3.0, WavelengthSet::from_indices(&[0])),
        b.add_link_with(n[2], n[3], 3.0, WavelengthSet::from_indices(&[2])),
        b.add_link_with(n[1], n[2], 1.0, WavelengthSet::from_indices(&[0, 1, 2])),
    ];
    let net = b.build();
    let state = ResidualState::fresh(&net);

    println!("== residual network G(V, E, Λ_avail) ==");
    for &eid in &e {
        let (u, v) = net.endpoints(eid);
        println!(
            "  {u} -> {v}: Λ_avail = {:?}, w = {:.1}",
            state.avail(&net, eid),
            net.min_link_cost(eid)
        );
    }

    let aux = AuxGraph::build(&net, &state, NodeId(0), NodeId(3), AuxSpec::g_prime());
    println!("\n== auxiliary graph G'(V', E', ω) ==");
    println!(
        "  |V'| = {} (2 edge-nodes per admitted link + s' + t''), |E'| = {}",
        aux.graph.node_count(),
        aux.graph.edge_count()
    );
    for ae in aux.graph.edge_ids() {
        let d = aux.graph.edge(ae);
        let (u, v) = aux.graph.endpoints(ae);
        let label = |n: NodeId| match aux.graph.node(n) {
            AuxNode::Source => "s'".to_string(),
            AuxNode::Sink => "t''".to_string(),
            AuxNode::OutNode(pe) => format!("out^e{}", pe.index()),
            AuxNode::InNode(pe) => format!("in^e{}", pe.index()),
        };
        let kind = match d.kind {
            AuxArc::Traversal(pe) => format!("traverse e{}", pe.index()),
            AuxArc::Conversion(v) => format!("convert@n{v}"),
            AuxArc::Tap => "tap".to_string(),
        };
        println!(
            "  {} -> {}  ω = {:.3}  ({kind})",
            label(u),
            label(v),
            d.weight
        );
    }

    println!("\n== DOT rendering of G' ==");
    let dot = to_dot(
        &aux.graph,
        "Gprime",
        |_, data| match data {
            AuxNode::Source => "s'".into(),
            AuxNode::Sink => "t''".into(),
            AuxNode::OutNode(pe) => format!("out e{}", pe.index()),
            AuxNode::InNode(pe) => format!("in e{}", pe.index()),
        },
        |_, data| format!("{:.2}", data.weight),
    );
    println!("{dot}");

    // Run the full §3.3 pipeline on it.
    let (route, diag) = RobustRouteFinder::new(&net)
        .find_with_diagnostics(&state, NodeId(0), NodeId(3))
        .expect("pair exists");
    println!("Suurballe on G' -> aux cost {:.3}", diag.aux_cost);
    println!(
        "Liang-Shen refinement -> final cost {:.3} (Lemma 2: {:.3} <= {:.3})",
        diag.refined_cost, diag.refined_cost, diag.aux_cost
    );
    println!(
        "primary edges {:?}, backup edges {:?}",
        route.primary.edges().collect::<Vec<_>>(),
        route.backup.edges().collect::<Vec<_>>()
    );
}
