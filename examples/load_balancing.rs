//! Load balancing and reconfiguration: how the §4 load-aware algorithms
//! reduce the number of network reconfigurations — the paper's headline
//! systems claim.
//!
//! ```sh
//! cargo run --release --example load_balancing
//! ```

use wdm_robust_routing::core::mincog::{
    exact_min_load_threshold, find_two_paths_mincog, route_bottleneck_load,
};
use wdm_robust_routing::prelude::*;

fn main() {
    let net = NetworkBuilder::nsfnet(16).build();

    // Part 1: one request on a partially loaded network — compare the link
    // loads the three algorithms are willing to touch.
    let mut state = ResidualState::fresh(&net);
    // Pre-load a popular corridor.
    let mut finder = RobustRouteFinder::new(&net);
    for _ in 0..10 {
        if let Ok(r) = finder.find(&state, NodeId(0), NodeId(13)) {
            r.occupy(&net, &mut state).unwrap();
        }
    }
    println!("after pre-loading 10 connections 0 -> 13:");
    let snap = load_snapshot(&net, &state);
    println!("  network load {:.3}, mean {:.3}", snap.max, snap.mean);

    let (s, t) = (NodeId(1), NodeId(12));
    let cost_route = finder.find(&state, s, t).unwrap();
    let mincog = find_two_paths_mincog(&net, &state, s, t, std::f64::consts::E).unwrap();
    let exact = exact_min_load_threshold(&net, &state, s, t, std::f64::consts::E).unwrap();
    let joint = find_two_paths_joint(&net, &state, s, t, std::f64::consts::E).unwrap();
    println!("\nrequest {s} -> {t}:");
    println!(
        "  cost-only (3.3): cost {:>7.2}, bottleneck load {:.3}",
        cost_route.total_cost(),
        route_bottleneck_load(&net, &state, &cost_route)
    );
    println!(
        "  mincog   (4.1): cost {:>7.2}, bottleneck load {:.3} (threshold {:.3}, {} probes)",
        mincog.route.total_cost(),
        route_bottleneck_load(&net, &state, &mincog.route),
        mincog.threshold,
        mincog.probes
    );
    println!(
        "  exact min-load : cost {:>7.2}, bottleneck load {:.3} (threshold {:.3})",
        exact.route.total_cost(),
        route_bottleneck_load(&net, &state, &exact.route),
        exact.threshold
    );
    println!(
        "  joint    (4.2): cost {:>7.2}, bottleneck load {:.3} (threshold {:.3})",
        joint.route.total_cost(),
        joint.bottleneck_load,
        joint.threshold
    );

    // Part 2: reconfiguration counts over a long run.
    println!("\nreconfigurations over 2000 time units at threshold ρ >= 0.75:");
    println!(
        "{:<16} {:>10} {:>12} {:>10}",
        "policy", "reconfigs", "moved conns", "blocking"
    );
    for policy in [
        Policy::CostOnly,
        Policy::Joint {
            a: std::f64::consts::E,
        },
    ] {
        let cfg = SimConfig {
            policy,
            traffic: TrafficModel::new(8.0, 10.0),
            duration: 2000.0,
            failure_rate: 0.0,
            mean_repair: 1.0,
            reconfig_threshold: Some(0.75),
            seed: 0,
            switchover_time: 0.001,
            setup_time_per_hop: 0.05,
        };
        let runs = run_replications(&net, cfg, &(0..8).collect::<Vec<u64>>());
        let reconfigs: u64 = runs.iter().map(|m| m.reconfig_events).sum();
        let moved: u64 = runs.iter().map(|m| m.reconfig_moved).sum();
        let (bp, _) = mean_std(
            &runs
                .iter()
                .map(|m| m.blocking_probability())
                .collect::<Vec<_>>(),
        );
        println!(
            "{:<16} {:>10} {:>12} {:>9.3}%",
            policy.name(),
            reconfigs,
            moved,
            bp * 100.0
        );
    }
    println!("\nThe joint policy spreads load as it routes, so the network");
    println!("crosses the reconfiguration threshold far less often.");
}
