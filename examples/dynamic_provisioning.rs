//! Dynamic provisioning: a day of Poisson traffic on NSFNET under the
//! paper's §4.2 joint policy, compared with cost-only routing.
//!
//! ```sh
//! cargo run --release --example dynamic_provisioning
//! ```

use wdm_robust_routing::prelude::*;

fn main() {
    let net = NetworkBuilder::nsfnet(16).build();
    let seeds: Vec<u64> = (0..8).collect();

    println!("NSFNET, W = 16, 8 replications x 2000 time units");
    println!(
        "{:<16} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "policy", "erlangs", "blocking", "mean cost", "mean load", "peak load"
    );
    for erlangs in [40.0, 80.0] {
        for policy in [
            Policy::CostOnly,
            Policy::Joint {
                a: std::f64::consts::E,
            },
            Policy::TwoStep,
        ] {
            let cfg = SimConfig {
                policy,
                traffic: TrafficModel::new(erlangs / 10.0, 10.0),
                duration: 2000.0,
                failure_rate: 0.0,
                mean_repair: 1.0,
                reconfig_threshold: None,
                seed: 0,
                switchover_time: 0.001,
                setup_time_per_hop: 0.05,
            };
            let runs = run_replications(&net, cfg, &seeds);
            let (bp, _) = mean_std(
                &runs
                    .iter()
                    .map(|m| m.blocking_probability())
                    .collect::<Vec<_>>(),
            );
            let (cost, _) = mean_std(&runs.iter().map(|m| m.mean_route_cost()).collect::<Vec<_>>());
            let (load, _) = mean_std(
                &runs
                    .iter()
                    .map(|m| m.mean_network_load())
                    .collect::<Vec<_>>(),
            );
            let (peak, _) = mean_std(&runs.iter().map(|m| m.peak_network_load).collect::<Vec<_>>());
            println!(
                "{:<16} {:>8.0} {:>9.3}% {:>12.2} {:>12.3} {:>10.3}",
                policy.name(),
                erlangs,
                bp * 100.0,
                cost,
                load,
                peak
            );
        }
    }
    println!("\nExpected shape: joint(4.2) trades a little route cost for a");
    println!("flatter load distribution and lower blocking at high Erlangs.");
}
