//! Vendored offline subset of rayon.
//!
//! Covers the shapes this workspace uses: `slice.par_iter()` and
//! `range.into_par_iter()` followed by `.map(f).collect()`. Parallel
//! iterators here are random-access index spaces; `collect` splits the index
//! range into one contiguous chunk per available core, evaluates chunks on
//! `std::thread::scope` workers, and reassembles results **in input order**
//! (the property `run_replications` relies on for seed/metric pairing).
//! Worker panics propagate to the caller like upstream rayon.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A random-access parallel iterator: a length plus a thread-safe
/// per-index producer.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    fn par_len(&self) -> usize;

    /// Produces the item at `index`; called concurrently from workers.
    fn par_get(&self, index: usize) -> Self::Item;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        collect_ordered(&self).into_iter().collect()
    }
}

fn collect_ordered<I: ParallelIterator>(iter: &I) -> Vec<I::Item> {
    let n = iter.par_len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return (0..n).map(|i| iter.par_get(i)).collect();
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || (lo..hi).map(|i| iter.par_get(i)).collect::<Vec<_>>())
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out
    })
}

/// Borrowing entry point: `collection.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.items.len()
    }

    fn par_get(&self, index: usize) -> &'a T {
        &self.items[index]
    }
}

/// Consuming entry point: `range.into_par_iter()`.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.len
    }

    fn par_get(&self, index: usize) -> usize {
        self.start + index
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, R, F> ParallelIterator for Map<S, F>
where
    S: ParallelIterator,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn par_get(&self, index: usize) -> R {
        (self.f)(self.base.par_get(index))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 1000);
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn range_into_par_iter_matches_serial() {
        let par: Vec<usize> = (3..503).into_par_iter().map(|i| i * i).collect();
        let ser: Vec<usize> = (3..503).map(|i| i * i).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn empty_inputs_collect_empty() {
        let par: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(par.is_empty());
        let none: Vec<u8> = Vec::<u8>::new().par_iter().map(|&b| b).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..64)
                .into_par_iter()
                .map(|i| {
                    if i == 40 {
                        panic!("boom");
                    }
                    i
                })
                .collect();
        });
        assert!(result.is_err());
    }
}
