//! Vendored offline subset of serde.
//!
//! The build environment has no registry access, so this crate provides the
//! slice of serde the workspace needs: `#[derive(serde::Serialize,
//! serde::Deserialize)]` (via the vendored `serde_derive` proc-macro) plus the
//! traits the derived code targets. Instead of upstream's visitor
//! architecture, both traits go through a concrete JSON-like [`Value`] tree —
//! `serde_json` then reduces to printing and parsing that tree. Data layouts
//! match serde's defaults (externally tagged enums, newtype structs as their
//! inner value) so derived JSON looks exactly like upstream's.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped value tree: the interchange format between the
/// [`Serialize`]/[`Deserialize`] traits and `serde_json`.
///
/// Objects preserve insertion order (serialized structs keep field order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its narrowest faithful representation so `u64`
/// payloads (e.g. 64-bit wavelength masks) round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    /// The number as an `f64` (lossy for huge integers, as in JSON itself).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The number as an `i64`, if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Short variant label for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON text (what `serde_json::to_string` produces).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_json(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

/// Writes `v` as JSON into `out`; `indent = Some(width)` pretty-prints.
///
/// Lives here (rather than in the vendored `serde_json`) so `Value` can
/// implement [`fmt::Display`] without an orphan impl; `serde_json` re-uses it.
#[doc(hidden)]
pub fn write_json(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_json_number(out, *n),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_indent(out, indent, depth + 1);
                write_json(out, item, indent, depth + 1);
            }
            write_json_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(out, val, indent, depth + 1);
            }
            write_json_indent(out, indent, depth);
            out.push('}');
        }
    }

    fn write_json_indent(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * depth {
                out.push(' ');
            }
        }
    }

    fn write_json_number(out: &mut String, n: Number) {
        use fmt::Write as _;
        match n {
            Number::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Number::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Number::F64(v) => {
                if v.is_nan() {
                    out.push_str("NaN");
                } else if v == f64::INFINITY {
                    out.push_str("Infinity");
                } else if v == f64::NEG_INFINITY {
                    out.push_str("-Infinity");
                } else if v == v.trunc() && v.abs() < 1e15 {
                    // Match serde_json: floats always carry a decimal point.
                    let _ = write!(out, "{v:.1}");
                } else {
                    // Rust's shortest round-trip float formatting.
                    let _ = write!(out, "{v}");
                }
            }
        }
    }

    fn write_json_string(out: &mut String, s: &str) {
        use fmt::Write as _;
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                '\u{0008}' => out.push_str("\\b"),
                '\u{000C}' => out.push_str("\\f"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// (De)serialization error: a plain message, like `serde_json::Error`
/// rendered to text.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a required struct field in an object (derive-macro helper).
pub fn field<'a>(
    fields: &'a [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'a Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}` in {ty}")))
}

/// Type-mismatch error constructor (derive-macro helper).
pub fn unexpected(got: &Value, expected: &str) -> DeError {
    DeError::new(format!("expected {expected}, found {}", got.kind()))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let Value::Number(n) = v else {
                    return Err(unexpected(v, stringify!($t)));
                };
                let raw = n
                    .as_u64()
                    .ok_or_else(|| DeError::new(concat!("invalid ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let Value::Number(n) = v else {
                    return Err(unexpected(v, stringify!($t)));
                };
                let raw = n
                    .as_i64()
                    .ok_or_else(|| DeError::new(concat!("invalid ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(unexpected(v, "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(unexpected(v, "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(unexpected(v, "string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(unexpected(v, "null")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(unexpected(v, "array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let Value::Array(items) = v else {
            return Err(unexpected(v, "array"));
        };
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new("array length changed during deserialization"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let Value::Array(items) = v else {
                    return Err(unexpected(v, "tuple array"));
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected array of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            _ => Err(unexpected(v, "object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
