//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Generates impls of the vendored serde's value-tree traits. Since the
//! offline build has no `syn`/`quote`, the item is parsed with a small
//! hand-rolled scanner over `proc_macro::TokenTree`s and the impl is emitted
//! as a source string. Supported shapes — everything this workspace derives:
//!
//! * structs with named fields, tuple structs (newtype included), unit
//!   structs, with plain type generics (bounds/defaults on the item are
//!   handled; `where` clauses on brace-bodied items are skipped);
//! * enums with unit, tuple and struct variants (serde's externally-tagged
//!   layout: `"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}`).
//!
//! `#[serde(...)]` attributes are not supported (none exist in-tree).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    body: Body,
}

enum Kind {
    Struct(Body),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn skip_attrs_and_vis(it: &mut TokenIter) {
    loop {
        match it.peek() {
            Some(tt) if is_punct(tt, '#') => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde derive: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(it: &mut TokenIter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected {what}, found {other:?}"),
    }
}

/// Parses `<...>` generic parameters, returning the type-parameter names
/// (bounds and defaults are skipped; lifetimes are ignored).
fn parse_generics(it: &mut TokenIter) -> Vec<String> {
    let mut params = Vec::new();
    match it.peek() {
        Some(tt) if is_punct(tt, '<') => {
            it.next();
        }
        _ => return params,
    }
    let mut depth = 1usize;
    let mut at_start = true;
    let mut in_tail = false;
    for tt in it.by_ref() {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => {
                    at_start = true;
                    in_tail = false;
                }
                ':' | '=' | '\'' if depth == 1 => in_tail = true,
                _ => {}
            },
            TokenTree::Ident(id) if depth == 1 && at_start && !in_tail => {
                let name = id.to_string();
                if name == "const" {
                    panic!("serde derive: const generics are not supported");
                }
                params.push(name);
                at_start = false;
            }
            _ => {}
        }
    }
    params
}

/// Skips one field type: consumes tokens until a top-level `,` (consumed) or
/// the end of the stream.
fn skip_type(it: &mut TokenIter) {
    let mut depth = 0usize;
    let mut prev_dash = false;
    while let Some(tt) =
        it.next_if(|tt| !(matches!(tt, TokenTree::Punct(p) if p.as_char() == ',')) || depth > 0)
    {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                // `->` in fn-pointer types must not close a `<`.
                '>' if !prev_dash => depth = depth.saturating_sub(1),
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
    }
    // Consume the separating comma, if present.
    it.next();
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it = stream.into_iter().peekable();
    let mut names = Vec::new();
    while it.peek().is_some() {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        names.push(expect_ident(&mut it, "field name"));
        match it.next() {
            Some(tt) if is_punct(&tt, ':') => {}
            other => panic!("serde derive: expected `:` after field, found {other:?}"),
        }
        skip_type(&mut it);
    }
    names
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut it = stream.into_iter().peekable();
    let mut count = 0usize;
    while it.peek().is_some() {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut it);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while it.peek().is_some() {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut it, "variant name");
        let body = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                it.next();
                Body::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                it.next();
                Body::Tuple(count_tuple_fields(g))
            }
            _ => Body::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while let Some(tt) = it.next() {
            if is_punct(&tt, ',') {
                break;
            }
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "item name");
    let generics = parse_generics(&mut it);
    // Skip a `where` clause if one precedes the brace body.
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        it.next();
        while let Some(tt) = it.peek() {
            if matches!(tt, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace) {
                break;
            }
            it.next();
        }
    }
    let kind = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Body::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Body::Tuple(count_tuple_fields(g.stream())))
            }
            Some(tt) if is_punct(&tt, ';') => Kind::Struct(Body::Unit),
            other => panic!("serde derive: malformed struct body: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    };
    Item {
        name,
        generics,
        kind,
    }
}

/// `impl<A: ::serde::Trait, B: ::serde::Trait>` / `Name<A, B>` header parts.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), item.name.clone());
    }
    let params: Vec<String> = item
        .generics
        .iter()
        .map(|g| format!("{g}: ::serde::{bound}"))
        .collect();
    let args = item.generics.join(", ");
    (
        format!("<{}>", params.join(", ")),
        format!("{}<{}>", item.name, args),
    )
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, ty) = impl_header(item, "Serialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Body::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Body::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::Struct(Body::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        Body::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        Body::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 {inner})]),",
                                binds = binds.join(", ")
                            )
                        }
                        Body::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {fields} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![{items}]))]),",
                                fields = fields.join(", "),
                                items = items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_named_constructor(path: &str, fields: &[String], obj_expr: &str, ty_label: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                 ::serde::field({obj_expr}, \"{f}\", \"{ty_label}\")?)?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, ty) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Body::Unit) => format!(
            "match v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             other => ::std::result::Result::Err(::serde::unexpected(other, \"{name}\")) }}"
        ),
        Kind::Struct(Body::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Body::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = v.as_array().ok_or_else(|| ::serde::unexpected(v, \"{name}\"))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::new(\
                 \"wrong tuple length for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({inits}))",
                inits = inits.join(", ")
            )
        }
        Kind::Struct(Body::Named(fields)) => {
            let ctor = gen_named_constructor(name, fields, "__fields", name);
            format!(
                "let __fields = v.as_object()\
                 .ok_or_else(|| ::serde::unexpected(v, \"struct {name}\"))?;\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.body, Body::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        Body::Unit => {
                            format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                        }
                        Body::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        ),
                        Body::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                 let __items = __inner.as_array().ok_or_else(|| \
                                 ::serde::unexpected(__inner, \"{name}::{vname}\"))?;\n\
                                 if __items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::new(\
                                 \"wrong tuple length for {name}::{vname}\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({inits}))\n\
                                 }}",
                                inits = inits.join(", ")
                            )
                        }
                        Body::Named(fields) => {
                            let ctor = gen_named_constructor(
                                &format!("{name}::{vname}"),
                                fields,
                                "__obj",
                                &format!("{name}::{vname}"),
                            );
                            format!(
                                "\"{vname}\" => {{\n\
                                 let __obj = __inner.as_object().ok_or_else(|| \
                                 ::serde::unexpected(__inner, \"{name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({ctor})\n\
                                 }}",
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __inner) = &__fields[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::unexpected(__other, \"enum {name}\")),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
         fn from_value(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl failed to parse")
}
