//! Vendored offline subset of crossbeam.
//!
//! * [`channel`] — unbounded MPSC channels over `std::sync::mpsc` (the only
//!   channel flavour this workspace uses).
//! * [`thread`] — scoped threads over `std::thread::scope`, preserving
//!   crossbeam's two API differences from std: the spawn closure receives a
//!   `&Scope` (so nested spawns type-check), and a worker panic surfaces as
//!   `Err` from [`thread::scope`] instead of a propagated panic.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocking iterator over remaining messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope: `Err` holds the payload of the first worker panic.
    pub type Result<T> = std::thread::Result<T>;

    /// Spawn handle passed to the scope closure and to every spawned thread.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope again so
        /// it can spawn siblings (crossbeam's signature, hence `move |_|`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; joins all spawned threads before
    /// returning. A panic in any worker (or in `f` itself) is caught and
    /// returned as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope itself panics (after joining) when a worker
        // panicked; catching here converts that back to crossbeam's Err.
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fans_in_from_scoped_workers() {
        let (tx, rx) = channel::unbounded();
        let total: u64 = thread::scope(|scope| {
            for chunk in 0..4u64 {
                let tx = tx.clone();
                scope.spawn(move |_| {
                    for v in chunk * 10..chunk * 10 + 10 {
                        tx.send(v).unwrap();
                    }
                });
            }
            drop(tx);
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        })
        .expect("workers");
        assert_eq!(total, (0u64..40).sum());
    }

    #[test]
    fn recv_errors_after_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn worker_panic_becomes_err() {
        let result = thread::scope(|scope| {
            scope.spawn(|_| panic!("worker died"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("nested scope");
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
