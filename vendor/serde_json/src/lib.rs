//! Vendored offline subset of `serde_json`.
//!
//! Prints and parses the vendored serde [`Value`] tree as JSON text. The
//! grammar is RFC 8259 JSON plus three extensions on input/output —
//! `Infinity`, `-Infinity` and `NaN` (Python-`json`-style) — so that
//! non-finite `f64`s (e.g. forbidden entries in conversion-cost matrices)
//! survive a round trip instead of degrading to `null`.

pub use serde::{Number, Value};

use serde::write_json as write_value;

/// Error type; re-exported serde error so `serde_json::Error` exists.
pub type Error = serde::DeError;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s.as_bytes())?;
    T::from_value(&value)
}

/// Deserializes from JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let value = parse_value_complete(bytes)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn err(msg: impl Into<String>) -> Error {
    Error::new(msg)
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(err(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(err("unexpected end of input")),
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'N') => {
                self.expect_keyword("NaN")?;
                Ok(Value::Number(Number::F64(f64::NAN)))
            }
            Some(b'I') => {
                self.expect_keyword("Infinity")?;
                Ok(Value::Number(Number::F64(f64::INFINITY)))
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(err(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.bump(); // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.bump(); // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(err("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(err("expected `:` after object key"));
            }
            fields.push((key, self.parse_value()?));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                _ => return Err(err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.bump(); // "
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| err("invalid UTF-8 in string"))?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000C}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(err("unpaired surrogate in string"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        s.push(char::from_u32(code).ok_or_else(|| err("invalid unicode escape"))?);
                    }
                    _ => return Err(err("invalid escape in string")),
                },
                _ => return Err(err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| err("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.bump();
            if self.peek() == Some(b'I') {
                self.expect_keyword("Infinity")?;
                return Ok(Value::Number(Number::F64(f64::NEG_INFINITY)));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| err("invalid number"))?;
        if !is_float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::I64(v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| err(format!("invalid number `{text}`")))
    }
}

fn parse_value_complete(bytes: &[u8]) -> Result<Value, Error> {
    let mut p = Parser::new(bytes);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U64(u64::MAX))),
            ("b".into(), Value::Number(Number::I64(-42))),
            (
                "c".into(),
                Value::Array(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::String("x \"y\" \n \u{1F600}".into()),
                    Value::Number(Number::F64(2.5)),
                ]),
            ),
            ("d".into(), Value::Object(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_survive() {
        let v = Value::Array(vec![
            Value::Number(Number::F64(f64::INFINITY)),
            Value::Number(Number::F64(f64::NEG_INFINITY)),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[Infinity,-Infinity]");
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
        let nan: Vec<f64> = from_str("[NaN]").unwrap();
        assert!(nan[0].is_nan());
    }

    #[test]
    fn integer_floats_keep_their_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
        let as_int: f64 = from_str("7").unwrap();
        assert_eq!(as_int, 7.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "A\u{1F600}");
    }
}
