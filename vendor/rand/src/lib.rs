//! Vendored offline subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and an empty registry, so the
//! workspace vendors the small slice of `rand` it actually uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, uniform range sampling for the
//! integer and float types that appear in the codebase, and a deterministic
//! [`rngs::StdRng`] (xoshiro256++). Seeding via [`SeedableRng::seed_from_u64`]
//! uses SplitMix64 expansion like upstream; no bit-compatibility with the real
//! crate is promised (all in-repo expectations are self-consistent).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A uniform double in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types with uniform sampling over a half-open or inclusive range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Samples uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

/// Unbiased-enough sample from `[0, span)` via 128-bit widening multiply
/// (bias is `O(span / 2^64)`, far below anything observable here).
#[inline]
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as u64)
                    .wrapping_sub(low as u64)
                    .wrapping_add(inclusive as u64);
                assert!(
                    span != 0 || inclusive,
                    "cannot sample from an empty range"
                );
                if span == 0 {
                    // Inclusive full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i64 as u64)
                    .wrapping_sub(low as i64 as u64)
                    .wrapping_add(inclusive as u64);
                assert!(span != 0 || inclusive, "cannot sample from an empty range");
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (low as i64).wrapping_add(sample_u64_below(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "cannot sample from an empty f64 range");
        let v = low + (high - low) * unit_f64(rng);
        // Floating rounding can land exactly on `high`; nudge back inside.
        if v >= high {
            f64::from_bits(high.to_bits() - 1)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "cannot sample from an empty f32 range");
        let v = low + (high - low) * f32::sample_standard(rng);
        if v >= high {
            f32::from_bits(high.to_bits() - 1)
        } else {
            v
        }
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_in(rng, start, end, true)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, RG>(&mut self, range: RG) -> T
    where
        Self: Sized,
        T: SampleUniform,
        RG: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step, used for seed expansion (as upstream does).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates an RNG from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (fast, high quality,
    /// deterministic; not the upstream ChaCha12, which nothing here relies
    /// on).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = rotl(s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = rng.gen_range(3..17usize);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-9i32..10);
            assert!((-9..10).contains(&b));
            let c = rng.gen_range(0..=5usize);
            assert!((0..=5).contains(&c));
            let d = rng.gen_range(1.0..10.0);
            assert!((1.0..10.0).contains(&d));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }
}
