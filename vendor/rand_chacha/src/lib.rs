//! Vendored ChaCha8 random number generator.
//!
//! A real ChaCha8 keystream (Bernstein's quarter-round, 8 rounds) over the
//! vendored [`rand`] traits. Statistical quality matches the genuine cipher;
//! stream-position APIs and word-order bit-compatibility with the upstream
//! `rand_chacha` crate are not provided (nothing in this workspace depends on
//! them — seeds only ever come from [`rand::SeedableRng::seed_from_u64`]).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, key, 64-bit counter, 64-bit nonce (zero).
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unserved word in `buf` (16 = exhausted).
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, &inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(inp);
        }
        self.buf = working;
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            state[4 + i] = u32::from_le_bytes(b);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_f64_moments_look_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn blocks_differ_across_refills() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
