//! Vendored offline subset of proptest.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`, range and
//! tuple strategies, [`Just`], [`prop_oneof!`], `collection::vec`, [`any`],
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, deliberate for an offline vendored stub:
//! * **No shrinking** — a failing case reports its generated inputs and
//!   panics; minimization is up to the reader.
//! * **Deterministic seeding** — case `i` of test `t` draws from
//!   `ChaCha8(hash(module_path::t) ^ i)`, so failures reproduce exactly.
//!   `.proptest-regressions` files are never *read* (re-running the test
//!   replays every case deterministically anyway), but each failure is
//!   *recorded* to `proptest-regressions/` so CI can upload the evidence.
//! * **`PROPTEST_CASES` overrides every config** — upstream only applies
//!   the env var to defaulted configs; the stub applies it to explicit
//!   `ProptestConfig { cases: .. }` literals too, so one knob (the nightly
//!   CI job) scales every suite in the workspace.

use rand::{Rng, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// The RNG handed to strategies.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy (the element type of [`prop_oneof!`]).
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed strategies (see [`prop_oneof!`]).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V: fmt::Debug> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a default whole-domain strategy ([`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy for [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a hash of a test path — the per-test RNG seed base.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// Fresh deterministic RNG for one test case.
pub fn new_case_rng(test_seed: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(test_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Effective case count for a test: `PROPTEST_CASES` in the environment
/// overrides the configured count (see the module docs for why the
/// override is unconditional here).
pub fn cases_from_env(configured: u32) -> u32 {
    parse_cases(std::env::var("PROPTEST_CASES").ok().as_deref(), configured)
}

fn parse_cases(env: Option<&str>, configured: u32) -> u32 {
    match env {
        Some(v) if !v.trim().is_empty() => v
            .trim()
            .parse()
            .expect("PROPTEST_CASES must be an unsigned integer"),
        _ => configured,
    }
}

/// Best-effort record of a failing case, appended to
/// `proptest-regressions/<test_path>.txt` relative to the test's working
/// directory (the crate root under `cargo test`). Upstream's `cc` lines
/// carry a shrink seed; the stub's carry the derived RNG seed, the case
/// index and the generated inputs — everything reproduction needs, since
/// the runner is deterministic. IO failures are swallowed: persistence
/// must never mask the actual test failure.
pub fn persist_regression(test_path: &str, case: u32, seed: u64, inputs: &str) {
    use std::io::Write;
    let dir = std::path::Path::new("proptest-regressions");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let file = dir.join(format!("{}.txt", test_path.replace("::", "__")));
    let opened = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&file);
    if let Ok(mut f) = opened {
        let _ = writeln!(
            f,
            "cc test={test_path} case={case} seed={seed:#018x} inputs={inputs}"
        );
        eprintln!("persisted failing case to {}", file.display());
    }
}

/// Explicit test-case failure, for `return Err(TestCaseError::fail(..))`
/// inside `proptest!` bodies (which run in a `Result`-returning closure).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Upstream rejects re-draw the case; without shrinking machinery we
    /// treat a reject like a failure so it can't silently mask a bug.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(format!("rejected: {}", reason.into()))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat_param in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __cases = $crate::cases_from_env(__cfg.cases);
                let __strategy = ($($strategy,)+);
                let __path = concat!(module_path!(), "::", stringify!($name));
                let __seed = $crate::fnv1a(__path);
                for __case in 0..__cases {
                    let mut __rng = $crate::new_case_rng(__seed, __case);
                    let __values = $crate::Strategy::generate(&__strategy, &mut __rng);
                    let __debug = format!("{:?}", &__values);
                    let ($($arg,)+) = __values;
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> $crate::TestCaseResult { $body; ::std::result::Result::Ok(()) }
                        )
                    );
                    match __result {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(__err)) => {
                            $crate::persist_regression(__path, __case, __seed, &__debug);
                            panic!(
                                "proptest case {}/{} of `{}` failed ({}) with inputs: {}",
                                __case + 1,
                                __cases,
                                stringify!($name),
                                __err,
                                __debug,
                            );
                        }
                        ::std::result::Result::Err(__panic) => {
                            $crate::persist_regression(__path, __case, __seed, &__debug);
                            eprintln!(
                                "proptest case {}/{} of `{}` failed with inputs: {}",
                                __case + 1,
                                __cases,
                                stringify!($name),
                                __debug,
                            );
                            ::std::panic::resume_unwind(__panic);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_obey_bounds(
            x in 3usize..10,
            v in crate::collection::vec(0u8..5, 0..7),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 7);
            prop_assert!(v.iter().all(|&b| b < 5));
            let _ = flag;
        }

        #[test]
        fn oneof_and_map_compose(op in prop_oneof![
            (0usize..4, 1u64..9).prop_map(|(a, b)| (a, b)),
            Just((9usize, 0u64)),
        ]) {
            let (a, b) = op;
            prop_assert!(a < 4 && (1..9).contains(&b) || (a == 9 && b == 0));
        }

        #[test]
        fn flat_map_respects_inner(len in 1usize..5,
                                   pair in (1usize..4).prop_flat_map(|n|
                                       (Just(n), crate::collection::vec(0u8..3, n)))) {
            let _ = len;
            let (n, items) = pair;
            prop_assert_eq!(items.len(), n);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = (0u64..1000, 0u64..1000);
        let mut a = crate::new_case_rng(7, 3);
        let mut b = crate::new_case_rng(7, 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn env_case_count_overrides_config() {
        assert_eq!(crate::parse_cases(None, 96), 96);
        assert_eq!(crate::parse_cases(Some(""), 96), 96);
        assert_eq!(crate::parse_cases(Some(" \t"), 96), 96);
        assert_eq!(crate::parse_cases(Some("1024"), 96), 1024);
        assert_eq!(crate::parse_cases(Some(" 8 "), 96), 8);
    }

    #[test]
    #[should_panic(expected = "PROPTEST_CASES must be an unsigned integer")]
    fn env_case_count_rejects_garbage() {
        crate::parse_cases(Some("lots"), 96);
    }

    #[test]
    fn regressions_are_persisted_on_failure() {
        // Runs in a scratch dir so the append-only regression file can't
        // accumulate across test invocations in the source tree.
        let dir = std::env::temp_dir().join(format!("proptest-stub-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        crate::persist_regression("my_crate::tests::prop", 17, 0xDEAD_BEEF, "(3, [1, 2])");
        std::env::set_current_dir(old).unwrap();
        let file = dir.join("proptest-regressions/my_crate__tests__prop.txt");
        let text = std::fs::read_to_string(&file).unwrap();
        assert!(
            text.contains("cc test=my_crate::tests::prop case=17 seed=0x00000000deadbeef"),
            "unexpected regression line: {text}"
        );
        assert!(text.contains("inputs=(3, [1, 2])"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
