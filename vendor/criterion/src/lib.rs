//! Vendored offline subset of criterion.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by plain
//! `Instant` wall-clock timing with a text report (no plots, no saved
//! baselines, no statistical regression analysis).
//!
//! Each benchmark is auto-calibrated: the iteration count doubles until one
//! sample exceeds a floor, then `sample_size` samples run at that count and
//! the report prints the minimum, median and mean ns/iter. Passing `--quick`
//! (or setting `CRITERION_QUICK=1`) shrinks the floor and sample count —
//! used by CI smoke runs.

use std::fmt;
use std::time::{Duration, Instant};

/// Settings shared by every benchmark run from one harness invocation.
#[derive(Clone, Copy, Debug)]
struct Settings {
    /// Minimum duration one sample must reach during calibration.
    sample_floor: Duration,
    /// Hard cap on calibration doubling.
    max_iters: u64,
    /// Cap applied on top of the per-group `sample_size`.
    max_samples: usize,
}

impl Settings {
    fn from_env() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0");
        if quick {
            Settings {
                sample_floor: Duration::from_micros(200),
                max_iters: 1 << 16,
                max_samples: 10,
            }
        } else {
            Settings {
                sample_floor: Duration::from_millis(2),
                max_iters: 1 << 24,
                max_samples: 100,
            }
        }
    }
}

/// Entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_env(),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark (reported without a group prefix).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(self.settings, None, id, self.settings.max_samples, f);
        self
    }

    /// Opens a named group; benchmarks in it report as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn samples(&self) -> usize {
        let cap = self.criterion.settings.max_samples;
        self.sample_size.map_or(cap, |n| n.min(cap)).max(2)
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.samples();
        run_benchmark(
            self.criterion.settings,
            Some(&self.name),
            &id.into().0,
            samples,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.samples();
        run_benchmark(
            self.criterion.settings,
            Some(&self.name),
            &id.into().0,
            samples,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier; a function name optionally tagged with a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Runs the closure under timing; handed to benchmark bodies.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` consecutive calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so older `criterion::black_box` imports keep working.
pub use std::hint::black_box;

fn run_benchmark<F: FnMut(&mut Bencher)>(
    settings: Settings,
    group: Option<&str>,
    id: &str,
    samples: usize,
    mut f: F,
) {
    // Calibrate: double the iteration count until one sample is long enough
    // for the timer floor not to dominate.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= settings.sample_floor || iters >= settings.max_iters {
            break;
        }
        iters *= 2;
    }

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));

    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!(
        "{label:<50} min {:>12}  median {:>12}  mean {:>12}  ({samples} samples x {iters} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a bench group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_settings() -> Settings {
        Settings {
            sample_floor: Duration::from_micros(50),
            max_iters: 1 << 12,
            max_samples: 5,
        }
    }

    #[test]
    fn bencher_runs_body_each_iteration() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 37,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 37);
        assert!(b.elapsed > Duration::ZERO || count == 37);
    }

    #[test]
    fn run_benchmark_calls_body() {
        let mut calls = 0u32;
        run_benchmark(quick_settings(), Some("g"), "case", 3, |b| {
            calls += 1;
            b.iter(|| std::hint::black_box(1 + 1));
        });
        // Calibration runs plus three samples.
        assert!(calls >= 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).0, "f/12");
        assert_eq!(BenchmarkId::from_parameter("8x2").0, "8x2");
    }
}
