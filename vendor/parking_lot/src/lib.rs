//! Vendored offline subset of parking_lot.
//!
//! [`Mutex`] wraps `std::sync::Mutex` with parking_lot's API differences
//! that this workspace relies on: `lock()` returns the guard directly (no
//! `Result`), and a poisoned mutex is locked transparently instead of
//! erroring — parking_lot has no poisoning.

/// Guard type; parking_lot's guard derefs identically to std's.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_mutates_shared_state() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn poisoned_lock_still_locks() {
        let m = Mutex::new(41usize);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock();
            panic!("poison it");
        }));
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
