//! Property-based invariants of the paper's constructions.
#![allow(clippy::needless_range_loop)] // index scans over the link space

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_core::aux_graph::{AuxGraph, AuxSpec};
use wdm_core::conversion::ConversionTable;
use wdm_core::mincog::{
    exact_min_load_threshold, find_two_paths_mincog, route_bottleneck_load, threshold_bounds,
};
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_core::optimal_slp::{assign_wavelengths_on_path, optimal_semilightpath};
use wdm_core::wavelength::{Wavelength, WavelengthSet};
use wdm_graph::{EdgeId, NodeId};

fn random_net(seed: u64) -> (WdmNetwork, ResidualState) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(4..10usize);
    let w = rng.gen_range(2..6usize);
    let mut b = NetworkBuilder::new(w);
    for _ in 0..n {
        let conv = match rng.gen_range(0..3) {
            0 => ConversionTable::None,
            1 => ConversionTable::Full {
                cost: rng.gen_range(0.0..2.0),
            },
            _ => ConversionTable::Range {
                range: rng.gen_range(1..3),
                cost: rng.gen_range(0.0..2.0),
            },
        };
        b.add_node(conv);
    }
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && rng.gen_bool(0.45) {
                let mut set = WavelengthSet::empty();
                for l in 0..w {
                    if rng.gen_bool(0.7) {
                        set.insert(Wavelength(l as u8));
                    }
                }
                if set.is_empty() {
                    set.insert(Wavelength(0));
                }
                b.add_link_with(NodeId(u), NodeId(v), rng.gen_range(1.0..10.0), set);
            }
        }
    }
    let net = b.build();
    let mut st = ResidualState::fresh(&net);
    for ei in 0..net.link_count() {
        let e = EdgeId::from(ei);
        for l in net.lambda(e).iter() {
            if rng.gen_bool(0.25) {
                let _ = st.occupy(&net, e, l);
            }
        }
    }
    (net, st)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// §4.1: "G_c is a subgraph of G'" — every link/arc admitted under a
    /// threshold is admitted without one.
    #[test]
    fn g_c_is_a_subgraph_of_g_prime(seed in 0u64..50_000, theta in 0.05f64..1.0) {
        let (net, st) = random_net(seed);
        let s = NodeId(0);
        let t = NodeId((net.node_count() - 1) as u32);
        let gp = AuxGraph::build(&net, &st, s, t, AuxSpec::g_prime());
        let gc = AuxGraph::build(&net, &st, s, t, AuxSpec::g_c(2.0, theta));
        for ei in 0..net.link_count() {
            let e = EdgeId::from(ei);
            if gc.out_node_of(e).is_some() {
                prop_assert!(gp.out_node_of(e).is_some(),
                    "link {e:?} admitted in G_c but not in G'");
            }
        }
        prop_assert!(gc.admitted_links() <= gp.admitted_links());
        prop_assert!(gc.graph.edge_count() <= gp.graph.edge_count());
    }

    /// Raising the load threshold only adds links (monotone admission).
    #[test]
    fn threshold_admission_is_monotone(seed in 0u64..50_000, lo in 0.05f64..0.5) {
        let (net, st) = random_net(seed);
        let s = NodeId(0);
        let t = NodeId((net.node_count() - 1) as u32);
        let hi = lo + 0.4;
        let a = AuxGraph::build(&net, &st, s, t, AuxSpec::g_c(2.0, lo));
        let b = AuxGraph::build(&net, &st, s, t, AuxSpec::g_c(2.0, hi));
        for ei in 0..net.link_count() {
            let e = EdgeId::from(ei);
            if a.out_node_of(e).is_some() {
                prop_assert!(b.out_node_of(e).is_some());
            }
        }
    }

    /// The optimal semilightpath never costs more than any fixed-path
    /// assignment along any particular route.
    #[test]
    fn optimal_slp_lower_bounds_fixed_path_dp(seed in 0u64..50_000) {
        let (net, st) = random_net(seed);
        let s = NodeId(0);
        let t = NodeId((net.node_count() - 1) as u32);
        if let Some(best) = optimal_semilightpath(&net, &st, s, t) {
            prop_assert!(best.validate(&net, &st).is_ok());
            // DP along the best path must reproduce exactly its cost.
            let edges: Vec<EdgeId> = best.edges().collect();
            let dp = assign_wavelengths_on_path(&net, &st, s, &edges)
                .expect("the optimal path is feasible");
            prop_assert!((dp.cost - best.cost).abs() < 1e-9);
        }
    }

    /// MinCog's achieved bottleneck load is never below the exact optimum
    /// and its threshold stays within the bounds; feasibility agrees with
    /// the exact search.
    #[test]
    fn mincog_threshold_sandwich(seed in 0u64..50_000) {
        let (net, st) = random_net(seed);
        let s = NodeId(0);
        let t = NodeId((net.node_count() - 1) as u32);
        let (lo, hi) = threshold_bounds(&net, &st);
        prop_assert!(lo <= hi + 1e-12);
        match (
            find_two_paths_mincog(&net, &st, s, t, 2.0),
            exact_min_load_threshold(&net, &st, s, t, 2.0),
        ) {
            (Ok(h), Ok(e)) => {
                let b_heur = route_bottleneck_load(&net, &st, &h.route);
                prop_assert!(b_heur + 1e-9 >= e.threshold, "exact must be minimal");
                prop_assert!(
                    (route_bottleneck_load(&net, &st, &e.route) - e.threshold).abs() < 1e-9,
                    "exact route achieves its own bound"
                );
                prop_assert!(h.threshold <= hi + 1e-6);
                prop_assert!(h.route.is_edge_disjoint());
                prop_assert!(e.route.is_edge_disjoint());
            }
            (Err(_), Err(_)) => {}
            // Restricted conversion tables make auxiliary-pair feasibility
            // an over-approximation of semilightpath feasibility, and
            // refinement success is not monotone in the threshold — so the
            // two searches may disagree on feasibility there. With full
            // conversion (the paper's assumption (i)) they never do.
            (Ok(_), Err(_)) | (Err(_), Ok(_)) => {
                let full_conversion = (0..net.node_count()).all(|v| {
                    matches!(
                        net.conversion(NodeId(v as u32)),
                        ConversionTable::Full { .. }
                    )
                });
                prop_assert!(
                    !full_conversion,
                    "feasibility mismatch under full conversion"
                );
            }
        }
    }

    /// Theorem 3's constant on uniform-capacity networks: the heuristic's
    /// achieved bottleneck is within 3x of the exact minimum (2x from the
    /// doubling schedule + 1 from the current-vs-prospective 1/N offset).
    #[test]
    fn mincog_theorem3_bound_uniform_capacity(seed in 0u64..50_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7E57);
        let n = rng.gen_range(5..10usize);
        let w = 4usize;
        let mut b = NetworkBuilder::new(w);
        for _ in 0..n {
            b.add_node(ConversionTable::Full { cost: 0.5 });
        }
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if u != v && rng.gen_bool(0.5) {
                    b.add_link(NodeId(u), NodeId(v), rng.gen_range(1.0..10.0));
                }
            }
        }
        let net = b.build();
        let mut st = ResidualState::fresh(&net);
        for ei in 0..net.link_count() {
            let e = EdgeId::from(ei);
            for l in net.lambda(e).iter() {
                if rng.gen_bool(0.35) {
                    let _ = st.occupy(&net, e, l);
                }
            }
        }
        let s = NodeId(0);
        let t = NodeId((n - 1) as u32);
        if let (Ok(h), Ok(e)) = (
            find_two_paths_mincog(&net, &st, s, t, 2.0),
            exact_min_load_threshold(&net, &st, s, t, 2.0),
        ) {
            let b_heur = route_bottleneck_load(&net, &st, &h.route);
            prop_assert!(
                b_heur <= 3.0 * e.threshold + 1e-6,
                "Theorem 3: bottleneck {} vs exact {}",
                b_heur,
                e.threshold
            );
        }
    }

    /// Occupying a found route raises per-link loads exactly on its edges.
    #[test]
    fn occupancy_delta_is_confined_to_route_edges(seed in 0u64..50_000) {
        let (net, mut st) = random_net(seed);
        let s = NodeId(0);
        let t = NodeId((net.node_count() - 1) as u32);
        let Ok(route) = wdm_core::disjoint::RobustRouteFinder::new(&net).find(&st, s, t) else {
            return Ok(());
        };
        let before: Vec<usize> = (0..net.link_count())
            .map(|i| st.used_count(EdgeId::from(i)))
            .collect();
        route.occupy(&net, &mut st).expect("route fits");
        let mut delta_edges: Vec<usize> = route
            .primary
            .edges()
            .chain(route.backup.edges())
            .map(|e| e.index())
            .collect();
        delta_edges.sort_unstable();
        for ei in 0..net.link_count() {
            let after = st.used_count(EdgeId::from(ei));
            if delta_edges.binary_search(&ei).is_ok() {
                prop_assert_eq!(after, before[ei] + 1);
            } else {
                prop_assert_eq!(after, before[ei]);
            }
        }
    }
}
