//! Property tests for the `.wdm` text format: any network expressible in
//! the format must round-trip exactly.

use proptest::prelude::*;
use wdm_core::conversion::ConversionTable;
use wdm_core::io::{parse_network, write_network};
use wdm_core::network::NetworkBuilder;
use wdm_core::wavelength::{Wavelength, WavelengthSet};
use wdm_graph::NodeId;

#[derive(Debug, Clone)]
struct NetSpec {
    w: usize,
    convs: Vec<u8>,                 // 0 = none, 1 = full, 2 = range
    conv_costs: Vec<u32>,           // cost in hundredths
    links: Vec<(u8, u8, u32, u64)>, // u, v, cost-hundredths, lambda mask
}

fn spec_strategy() -> impl Strategy<Value = NetSpec> {
    (2usize..9, 2usize..7)
        .prop_flat_map(|(n, w)| {
            let convs = proptest::collection::vec(0u8..3, n);
            let costs = proptest::collection::vec(0u32..500, n);
            let links = proptest::collection::vec(
                (0..n as u8, 0..n as u8, 1u32..2000, 1u64..(1 << w)),
                0..14,
            );
            (Just(w), convs, costs, links)
        })
        .prop_map(|(w, convs, conv_costs, links)| NetSpec {
            w,
            convs,
            conv_costs,
            links,
        })
}

fn build(spec: &NetSpec) -> wdm_core::network::WdmNetwork {
    let mut b = NetworkBuilder::new(spec.w);
    for (i, &kind) in spec.convs.iter().enumerate() {
        let cost = spec.conv_costs[i] as f64 / 100.0;
        let conv = match kind {
            0 => ConversionTable::None,
            1 => ConversionTable::Full { cost },
            _ => ConversionTable::Range {
                range: (i % 3 + 1) as u8,
                cost,
            },
        };
        b.add_node(conv);
    }
    for &(u, v, c, mask) in &spec.links {
        if u == v {
            continue;
        }
        let mut set = WavelengthSet::empty();
        for l in 0..spec.w {
            if mask & (1 << l) != 0 {
                set.insert(Wavelength(l as u8));
            }
        }
        if set.is_empty() {
            set.insert(Wavelength(0));
        }
        b.add_link_with(NodeId(u as u32), NodeId(v as u32), c as f64 / 100.0, set);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn text_format_round_trips_exactly(spec in spec_strategy()) {
        let net = build(&spec);
        let text = write_network(&net).expect("expressible network");
        let back = parse_network(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        prop_assert_eq!(net.node_count(), back.node_count());
        prop_assert_eq!(net.link_count(), back.link_count());
        prop_assert_eq!(net.num_wavelengths(), back.num_wavelengths());
        for v in net.graph().node_ids() {
            prop_assert_eq!(net.conversion(v), back.conversion(v));
        }
        for e in net.graph().edge_ids() {
            prop_assert_eq!(net.endpoints(e), back.endpoints(e));
            prop_assert_eq!(net.lambda(e), back.lambda(e));
            for l in net.lambda(e).iter() {
                prop_assert_eq!(net.link_cost(e, l), back.link_cost(e, l));
            }
        }
        // And a second round trip is byte-identical (canonical form).
        let text2 = write_network(&back).expect("still expressible");
        prop_assert_eq!(text, text2);
    }

    #[test]
    fn state_round_trip_restarts_clocks_monotonically(spec in spec_strategy()) {
        let net = build(&spec);
        let mut st = wdm_core::network::ResidualState::fresh(&net);
        for e in net.graph().edge_ids() {
            if e.index() % 2 == 0 {
                if let Some(l) = net.lambda(e).first() {
                    let _ = st.occupy(&net, e, l);
                }
            }
        }
        let json = serde_json::to_string(&st).expect("serialise");
        let back: wdm_core::network::ResidualState =
            serde_json::from_str(&json).expect("deserialise");
        prop_assert_eq!(&back, &st);
        // Clocks restart at 1 — never 0 — with every link stamped dirty, so
        // any consumer synced against the old lineage must refresh.
        prop_assert_eq!(back.change_clock(), 1);
        for e in net.graph().edge_ids() {
            prop_assert_eq!(back.link_change_clock(e), 1);
        }
    }

    #[test]
    fn json_round_trips_exactly(spec in spec_strategy()) {
        let net = build(&spec);
        let json = serde_json::to_string(&net).expect("serialise");
        let back: wdm_core::network::WdmNetwork =
            serde_json::from_str(&json).expect("deserialise");
        prop_assert_eq!(net.link_count(), back.link_count());
        for e in net.graph().edge_ids() {
            prop_assert_eq!(net.lambda(e), back.lambda(e));
        }
        for v in net.graph().node_ids() {
            prop_assert_eq!(net.conversion(v), back.conversion(v));
        }
    }
}

/// Regression: a *warm* [`RouterCtx`](wdm_core::aux_engine::RouterCtx)
/// (synced against the pre-round-trip state lineage at a high change
/// clock) must route the round-tripped state identically to a cold one.
/// An earlier revision deserialised states with clocks reset to 0, which
/// the warm engine's per-link dirtiness test (`link clock > synced clock`)
/// read as "nothing changed" — stale weights, silently wrong routes.
#[test]
fn warm_router_ctx_refreshes_against_round_tripped_state() {
    use wdm_core::aux_engine::RouterCtx;
    use wdm_core::disjoint::robust_route_ctx;
    use wdm_core::network::ResidualState;

    let net = NetworkBuilder::nsfnet(8).build();
    let mut st = ResidualState::fresh(&net);
    let mut warm = RouterCtx::new();
    for &(s, t) in &[(0u32, 13u32), (2, 11), (5, 10)] {
        let (route, _) = robust_route_ctx(&mut warm, &net, &st, NodeId(s), NodeId(t))
            .expect("nsfnet pairs are routable");
        route.occupy(&net, &mut st).expect("fresh channels");
    }
    assert!(st.change_clock() > 1, "the warm ctx synced past clock 1");

    let json = serde_json::to_string(&st).expect("serialise");
    let back: ResidualState = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back, st);

    let mut cold = RouterCtx::new();
    for &(s, t) in &[(1u32, 12u32), (3, 9), (6, 8)] {
        let w = robust_route_ctx(&mut warm, &net, &back, NodeId(s), NodeId(t));
        let c = robust_route_ctx(&mut cold, &net, &back, NodeId(s), NodeId(t));
        match (w, c) {
            (Ok((wr, _)), Ok((cr, _))) => assert_eq!(wr, cr, "{s}->{t}"),
            (Err(we), Err(ce)) => assert_eq!(we.to_string(), ce.to_string()),
            (w, c) => panic!("warm/cold disagree on {s}->{t}: {w:?} vs {c:?}"),
        }
    }
}
