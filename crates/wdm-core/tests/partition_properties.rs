//! Property-based invariants of the static topology partitioner
//! (`wdm_core::partition`): every directed link lands in exactly one
//! shard or the cut set, shard weights stay edge-balanced within the
//! stated tolerance, growth is a deterministic function of
//! `(net, shards, seed)`, and [`ShardMap`] classification is
//! deterministic and consistent with the partition.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_core::conversion::ConversionTable;
use wdm_core::network::{NetworkBuilder, WdmNetwork};
use wdm_core::partition::{DemandClass, ShardMap, TopologyPartition};
use wdm_core::predict::LocalityPredictor;
use wdm_graph::{EdgeId, NodeId};

/// A random directed network; sometimes disconnected (isolated tail
/// nodes), so the grower's teleport path is exercised too.
fn random_net(seed: u64) -> WdmNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(4..24usize);
    let mut b = NetworkBuilder::new(4);
    let nodes: Vec<_> = (0..n)
        .map(|_| b.add_node(ConversionTable::Full { cost: 0.2 }))
        .collect();
    // A ring over a prefix keeps most of the graph connected; the rest of
    // the nodes stay isolated unless a chord happens to reach them.
    let core = rng.gen_range(3..=n);
    for i in 0..core {
        b.add_link(nodes[i], nodes[(i + 1) % core], rng.gen_range(1.0..10.0));
        b.add_link(nodes[(i + 1) % core], nodes[i], rng.gen_range(1.0..10.0));
    }
    for _ in 0..rng.gen_range(0..3 * n) {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b.add_link(nodes[u], nodes[v], rng.gen_range(1.0..10.0));
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The partition-of-links law: each directed link is owned by exactly
    /// one shard or listed in the cut set, cut links join different node
    /// shards, intra links join co-resident ones, and every node is
    /// claimed by a real shard.
    #[test]
    fn every_link_is_intra_xor_cut(seed in 0u64..1_000_000, shards in 1usize..9) {
        let net = random_net(seed);
        let p = TopologyPartition::grow(&net, shards, seed ^ 0xA5);
        prop_assert!(p.shard_count() >= 1 && p.shard_count() <= net.node_count());
        for v in 0..net.node_count() {
            prop_assert!((p.node_shard(NodeId(v as u32)) as usize) < p.shard_count());
        }
        let mut cut_seen = 0usize;
        for ei in 0..net.link_count() {
            let e = EdgeId::from(ei);
            let (u, v) = net.graph().endpoints(e);
            match p.link_shard(e) {
                Some(s) => {
                    prop_assert_eq!(p.node_shard(u), s);
                    prop_assert_eq!(p.node_shard(v), s);
                    prop_assert!(!p.cut_links().contains(&e));
                }
                None => {
                    prop_assert_ne!(p.node_shard(u), p.node_shard(v));
                    prop_assert!(p.cut_links().contains(&e));
                    cut_seen += 1;
                }
            }
        }
        prop_assert_eq!(cut_seen, p.cut_links().len());
        let expect_ratio = if net.link_count() == 0 {
            0.0
        } else {
            cut_seen as f64 / net.link_count() as f64
        };
        prop_assert_eq!(p.cut_ratio(), expect_ratio);
    }

    /// The list-scheduling balance invariant from the module docs:
    /// `max_s weight(s) − min_s weight(s) ≤ max_v degree_mass(v)`, and
    /// the weights sum to the total degree mass (2 × links).
    #[test]
    fn shard_weights_are_balanced_within_tolerance(
        seed in 0u64..1_000_000,
        shards in 1usize..9,
    ) {
        let net = random_net(seed);
        let p = TopologyPartition::grow(&net, shards, seed ^ 0x5A);
        let w = p.shard_weights();
        prop_assert_eq!(w.len(), p.shard_count());
        let max = *w.iter().max().expect("at least one shard");
        let min = *w.iter().min().expect("at least one shard");
        prop_assert!(
            max - min <= TopologyPartition::balance_tolerance(&net),
            "weights {:?} exceed tolerance {}",
            w,
            TopologyPartition::balance_tolerance(&net)
        );
        prop_assert_eq!(w.iter().sum::<u64>(), 2 * net.link_count() as u64);
    }

    /// Growth and classification are pure functions of their inputs: two
    /// runs from the same `(net, shards, seed)` agree on every table, and
    /// a [`ShardMap`] over a [`LocalityPredictor`] classifies a demand
    /// stream identically across runs and regardless of earlier queries.
    #[test]
    fn partition_and_shard_map_are_seed_deterministic(
        seed in 0u64..1_000_000,
        shards in 1usize..9,
    ) {
        let net = random_net(seed);
        let a = TopologyPartition::grow(&net, shards, seed);
        let b = TopologyPartition::grow(&net, shards, seed);
        prop_assert_eq!(&a, &b);

        let n = net.node_count() as u32;
        let demands: Vec<(NodeId, NodeId)> = (0..2 * n)
            .map(|k| (NodeId(k % n), NodeId((k * 7 + 3) % n)))
            .collect();
        let classify_all = |rev: bool| {
            let mut map = ShardMap::new(TopologyPartition::grow(&net, shards, seed));
            let mut oracle = LocalityPredictor::with_default_radius(&net);
            let mut out: Vec<(usize, DemandClass)> = Vec::new();
            let it: Box<dyn Iterator<Item = usize>> = if rev {
                Box::new((0..demands.len()).rev())
            } else {
                Box::new(0..demands.len())
            };
            for k in it {
                let (s, t) = demands[k];
                out.push((k, map.classify(&mut oracle, s, t)));
            }
            out.sort_by_key(|&(k, _)| k);
            out
        };
        // Same stream twice, and the same stream in reverse order: the
        // lazily-built predictor balls must not leak state between
        // queries.
        prop_assert_eq!(classify_all(false), classify_all(false));
        prop_assert_eq!(classify_all(false), classify_all(true));

        // Intra classifications are consistent with the partition: both
        // endpoints must live in the claimed shard.
        let mut map = ShardMap::new(a);
        let mut oracle = LocalityPredictor::with_default_radius(&net);
        for &(s, t) in &demands {
            if let DemandClass::Intra(home) = map.classify(&mut oracle, s, t) {
                prop_assert_eq!(map.partition().node_shard(s), home);
                prop_assert_eq!(map.partition().node_shard(t), home);
            }
        }
    }
}
