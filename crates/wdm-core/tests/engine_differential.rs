//! Differential test: the incremental [`AuxEngine`] must be observationally
//! identical to the scratch [`AuxGraph::build`] oracle.
//!
//! A persistent engine per auxiliary-graph family (`G'`, `G_c`, `G_rc`) is
//! dragged through long random sequences of state mutations (occupy /
//! release / fail / repair), request retargets and threshold changes. After
//! every step, each engine's enabled subgraph must match a from-scratch
//! build **bit-for-bit**: same admitted links, same arcs in the same
//! relative order, identical `f64` weight bits. On top of that, the
//! minimum-cost disjoint pair found by the reusable [`SearchArena`] over the
//! engine must equal the allocating Suurballe over the scratch graph —
//! same physical edges, same total-cost bits — which pins route identity
//! (refinement is a deterministic function of the physical edge sets).
//!
//! Finally the persistent-context public entry points
//! ([`find_two_paths_mincog_ctx`], [`find_two_paths_joint_ctx`]) are
//! compared against their one-shot counterparts across the same mutation
//! history.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_core::aux_engine::{AuxEngine, RouterCtx};
use wdm_core::aux_graph::{AuxGraph, AuxSpec};
use wdm_core::conversion::ConversionTable;
use wdm_core::joint::{find_two_paths_joint, find_two_paths_joint_ctx};
use wdm_core::mincog::{find_two_paths_mincog, find_two_paths_mincog_ctx};
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_core::wavelength::{Wavelength, WavelengthSet};
use wdm_graph::suurballe::{edge_disjoint_pair_filtered, DisjointPair};
use wdm_graph::{EdgeId, NodeId, SearchArena};

fn random_net(rng: &mut ChaCha8Rng) -> WdmNetwork {
    let n = rng.gen_range(4..10usize);
    let w = rng.gen_range(2..6usize);
    let mut b = NetworkBuilder::new(w);
    for _ in 0..n {
        let conv = match rng.gen_range(0..3) {
            0 => ConversionTable::None,
            1 => ConversionTable::Full {
                cost: rng.gen_range(0.0..2.0),
            },
            _ => ConversionTable::Range {
                range: rng.gen_range(1..3),
                cost: rng.gen_range(0.0..2.0),
            },
        };
        b.add_node(conv);
    }
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && rng.gen_bool(0.45) {
                let mut set = WavelengthSet::empty();
                for l in 0..w {
                    if rng.gen_bool(0.7) {
                        set.insert(Wavelength(l as u8));
                    }
                }
                if set.is_empty() {
                    set.insert(Wavelength(0));
                }
                b.add_link_with(NodeId(u), NodeId(v), rng.gen_range(1.0..10.0), set);
            }
        }
    }
    b.build()
}

/// One random state mutation; occupy/release on illegal channels are no-ops
/// (`Err` ignored), which also exercises "nothing changed" syncs.
fn random_op(rng: &mut ChaCha8Rng, net: &WdmNetwork, st: &mut ResidualState) {
    let e = EdgeId::from(rng.gen_range(0..net.link_count()));
    match rng.gen_range(0..4) {
        0 => {
            let l = Wavelength(rng.gen_range(0..net.num_wavelengths()) as u8);
            let _ = st.occupy(net, e, l);
        }
        1 => {
            let l = Wavelength(rng.gen_range(0..net.num_wavelengths()) as u8);
            let _ = st.release(e, l);
        }
        2 => st.fail_link(e),
        _ => st.repair_link(e),
    }
}

/// Canonical form of an auxiliary arc: endpoint payloads + kind + weight
/// bits. Node/edge ids differ between the skeleton and a scratch build, but
/// the payloads (`OutNode(e)`, `InNode(e)`, `Source`, `Sink`, arc kinds)
/// identify arcs across both.
fn canon_engine(eng: &AuxEngine) -> Vec<(String, u64)> {
    eng.graph()
        .edge_ids()
        .filter(|&e| eng.enabled(e))
        .map(|e| {
            let d = eng.graph().edge(e);
            let s = eng.graph().node(eng.graph().src(e));
            let t = eng.graph().node(eng.graph().dst(e));
            (format!("{:?}->{:?} {:?}", s, t, d.kind), d.weight.to_bits())
        })
        .collect()
}

fn canon_scratch(aux: &AuxGraph) -> Vec<(String, u64)> {
    aux.graph
        .edge_ids()
        .map(|e| {
            let d = aux.graph.edge(e);
            let s = aux.graph.node(aux.graph.src(e));
            let t = aux.graph.node(aux.graph.dst(e));
            (format!("{:?}->{:?} {:?}", s, t, d.kind), d.weight.to_bits())
        })
        .collect()
}

/// Two optional pairs over the same skeleton must agree bit-for-bit: same
/// feasibility, same total-cost bits, same arc-id sequences.
fn assert_pair_bits(a: &Option<DisjointPair>, b: &Option<DisjointPair>, label: &str) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(
                a.total_cost.to_bits(),
                b.total_cost.to_bits(),
                "{label}: cost bits"
            );
            assert_eq!(a.paths[0].edges, b.paths[0].edges, "{label}: leg 0");
            assert_eq!(a.paths[1].edges, b.paths[1].edges, "{label}: leg 1");
        }
        _ => panic!("{label}: feasibility disagrees"),
    }
}

/// Engine-refreshed graph == scratch build, and arena pair search over the
/// engine == allocating pair search over the scratch graph.
#[allow(clippy::too_many_arguments)]
fn check_family(
    net: &WdmNetwork,
    st: &ResidualState,
    eng: &mut AuxEngine,
    arena: &mut SearchArena,
    s: NodeId,
    t: NodeId,
    spec: AuxSpec,
    ctx_label: &str,
) {
    eng.set_threshold(spec.threshold);
    eng.sync(net, st, s, t);
    let scratch = AuxGraph::build(net, st, s, t, spec);
    assert_eq!(
        eng.admitted_links(),
        scratch.admitted_links(),
        "{ctx_label}: admitted-link count"
    );
    assert_eq!(
        canon_engine(eng),
        canon_scratch(&scratch),
        "{ctx_label}: enabled arcs / weight bits"
    );

    // Tentpole invariant: both CSR flat searches — the f64 d-ary path and,
    // whenever the dyadic certificate holds, the scaled bucket path — must
    // be bit-identical to the pointer-chasing arena search over the same
    // skeleton (same arc ids, same cost bits).
    let (aux_s, aux_t) = (eng.source(), eng.sink());
    let int_pair = {
        let (view, int, _pot) = eng.flat_parts();
        int.map(|iw| arena.edge_disjoint_pair_flat_int(&view, &iw, None, aux_s, aux_t, || {}))
    };
    let flat_pair = arena.edge_disjoint_pair_flat(&eng.flat_view(), aux_s, aux_t, || {});

    let eng_pair = {
        let eng: &AuxEngine = eng;
        arena.edge_disjoint_pair(
            eng.graph(),
            eng.source(),
            eng.sink(),
            |e| eng.weight(e),
            |e| eng.enabled(e),
        )
    };
    assert_pair_bits(
        &eng_pair,
        &flat_pair,
        &format!("{ctx_label}: flat f64 vs pointer"),
    );
    if let Some(ip) = &int_pair {
        assert_pair_bits(&eng_pair, ip, &format!("{ctx_label}: flat int vs pointer"));
    }
    let scratch_pair = edge_disjoint_pair_filtered(
        &scratch.graph,
        scratch.source,
        scratch.sink,
        |e| scratch.weight(e),
        |_| true,
    );
    match (eng_pair, scratch_pair) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(
                a.total_cost.to_bits(),
                b.total_cost.to_bits(),
                "{ctx_label}: pair cost bits"
            );
            for leg in 0..2 {
                assert_eq!(
                    eng.physical_edges(&a.paths[leg]),
                    scratch.physical_edges(&b.paths[leg]),
                    "{ctx_label}: physical edges of leg {leg}"
                );
            }
        }
        (a, b) => panic!(
            "{ctx_label}: feasibility mismatch (engine {:?}, scratch {:?})",
            a.is_some(),
            b.is_some()
        ),
    }
}

#[test]
fn engine_equals_scratch_under_random_mutation_sequences() {
    for seed in 0..30u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xD1FF ^ seed);
        let net = random_net(&mut rng);
        let mut st = ResidualState::fresh(&net);
        let mut arena = SearchArena::new();
        let mut eng_gp = AuxEngine::new(&net, AuxSpec::g_prime());
        let mut eng_gc = AuxEngine::new(&net, AuxSpec::g_c(2.0, 0.5));
        let mut eng_grc = AuxEngine::new(&net, AuxSpec::g_rc(0.5));
        let mut theta = 0.5;
        for _step in 0..40 {
            for _ in 0..rng.gen_range(0..3) {
                random_op(&mut rng, &net, &mut st);
            }
            if rng.gen_bool(0.3) {
                theta = rng.gen_range(0.05..1.1);
            }
            let s = NodeId(rng.gen_range(0..net.node_count()) as u32);
            let t = NodeId(rng.gen_range(0..net.node_count()) as u32);
            if s == t {
                continue;
            }
            check_family(
                &net,
                &st,
                &mut eng_gp,
                &mut arena,
                s,
                t,
                AuxSpec::g_prime(),
                "G'",
            );
            check_family(
                &net,
                &st,
                &mut eng_gc,
                &mut arena,
                s,
                t,
                AuxSpec::g_c(2.0, theta),
                "G_c",
            );
            check_family(
                &net,
                &st,
                &mut eng_grc,
                &mut arena,
                s,
                t,
                AuxSpec::g_rc(theta),
                "G_rc",
            );
        }
    }
}

/// Quarter-integer link costs and free conversions make every aux weight a
/// dyadic rational below the scale cap, so the engine's integer certificate
/// must hold and the scaled bucket search must engage — and stay
/// bit-identical to the scratch oracle and the pointer search.
///
/// (Conversion costs must be 0 here: a conversion arc averages over all
/// allowed pairs *including* free identity pairs, so `m·c / k` with `m < k`
/// is generally non-dyadic for `c ≠ 0`.)
fn dyadic_net(rng: &mut ChaCha8Rng) -> WdmNetwork {
    let n = rng.gen_range(4..10usize);
    let w = 4usize;
    let mut b = NetworkBuilder::new(w);
    for _ in 0..n {
        let conv = match rng.gen_range(0..3) {
            0 => ConversionTable::None,
            1 => ConversionTable::Full { cost: 0.0 },
            _ => ConversionTable::Range {
                range: rng.gen_range(1..3),
                cost: 0.0,
            },
        };
        b.add_node(conv);
    }
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && rng.gen_bool(0.45) {
                let mut set = WavelengthSet::empty();
                for l in 0..w {
                    if rng.gen_bool(0.7) {
                        set.insert(Wavelength(l as u8));
                    }
                }
                if set.is_empty() {
                    set.insert(Wavelength(0));
                }
                let cost = rng.gen_range(4..40) as f64 / 4.0;
                b.add_link_with(NodeId(u), NodeId(v), cost, set);
            }
        }
    }
    b.build()
}

#[test]
fn dyadic_costs_engage_certified_integer_path() {
    for seed in 0..10u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x0DAD ^ seed);
        let net = dyadic_net(&mut rng);
        let mut st = ResidualState::fresh(&net);
        let mut arena = SearchArena::new();
        let mut eng_gp = AuxEngine::new(&net, AuxSpec::g_prime());
        let mut eng_grc = AuxEngine::new(&net, AuxSpec::g_rc(0.5));
        let mut theta = 0.5;
        for _step in 0..25 {
            for _ in 0..rng.gen_range(0..3) {
                random_op(&mut rng, &net, &mut st);
            }
            if rng.gen_bool(0.3) {
                theta = rng.gen_range(0.05..1.1);
            }
            let s = NodeId(rng.gen_range(0..net.node_count()) as u32);
            let t = NodeId(rng.gen_range(0..net.node_count()) as u32);
            if s == t {
                continue;
            }
            check_family(
                &net,
                &st,
                &mut eng_gp,
                &mut arena,
                s,
                t,
                AuxSpec::g_prime(),
                "dyadic G'",
            );
            assert!(eng_gp.int_certified(), "dyadic G' weights must certify");
            check_family(
                &net,
                &st,
                &mut eng_grc,
                &mut arena,
                s,
                t,
                AuxSpec::g_rc(theta),
                "dyadic G_rc",
            );
            assert!(eng_grc.int_certified(), "dyadic G_rc weights must certify");
        }
    }
}

/// Extreme cost ranges must *decertify* the integer path (scale overflow or
/// non-dyadic fractions) rather than route on clamped keys: the engine falls
/// back to the f64 flat search and still matches the scratch oracle
/// bit-for-bit. Regression for the weight-scaling overflow guard.
#[test]
fn extreme_cost_ranges_decertify_and_still_match() {
    // Case 1: huge dyadic costs — `cost << SCALE_SHIFT` exceeds the key cap.
    // Case 2: fine-grained non-dyadic costs (multiples of 0.1).
    for (case, cost_of) in [
        ("overflow", (|i: u32| 2048.0 + i as f64) as fn(u32) -> f64),
        (
            "non-dyadic",
            (|i: u32| 0.1 * (i + 1) as f64) as fn(u32) -> f64,
        ),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(0xB16C057);
        let w = 4usize;
        let mut b = NetworkBuilder::new(w);
        for _ in 0..6 {
            b.add_node(ConversionTable::Full { cost: 0.0 });
        }
        let mut i = 0u32;
        for u in 0..6u32 {
            for v in 0..6u32 {
                if u != v && rng.gen_bool(0.6) {
                    b.add_link_with(NodeId(u), NodeId(v), cost_of(i), WavelengthSet::full(w));
                    i += 1;
                }
            }
        }
        let net = b.build();
        let mut st = ResidualState::fresh(&net);
        let mut arena = SearchArena::new();
        let mut eng = AuxEngine::new(&net, AuxSpec::g_prime());
        for step in 0..10 {
            random_op(&mut rng, &net, &mut st);
            let s = NodeId(rng.gen_range(0..net.node_count()) as u32);
            let t = NodeId(rng.gen_range(0..net.node_count()) as u32);
            if s == t {
                continue;
            }
            check_family(
                &net,
                &st,
                &mut eng,
                &mut arena,
                s,
                t,
                AuxSpec::g_prime(),
                &format!("{case} step {step}"),
            );
            assert!(
                !eng.int_certified(),
                "{case}: extreme costs must decertify the integer path"
            );
        }
    }
}

/// The persistent-context public entry points agree with their one-shot
/// counterparts at every step of a mutation history (same thresholds,
/// probe counts and routes).
#[test]
fn persistent_ctx_entry_points_match_one_shot() {
    for seed in 0..15u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC7 ^ seed);
        let net = random_net(&mut rng);
        let mut st = ResidualState::fresh(&net);
        let mut ctx = RouterCtx::new();
        for _step in 0..25 {
            for _ in 0..rng.gen_range(0..4) {
                random_op(&mut rng, &net, &mut st);
            }
            let s = NodeId(rng.gen_range(0..net.node_count()) as u32);
            let t = NodeId(rng.gen_range(0..net.node_count()) as u32);
            if s == t {
                continue;
            }
            match (
                find_two_paths_mincog_ctx(&mut ctx, &net, &st, s, t, 2.0),
                find_two_paths_mincog(&net, &st, s, t, 2.0),
            ) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
                    assert_eq!(a.probes, b.probes);
                    assert_eq!(a.aux_paths, b.aux_paths);
                    assert_eq!(a.route, b.route);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("mincog ctx/one-shot mismatch: {a:?} vs {b:?}"),
            }
            match (
                find_two_paths_joint_ctx(&mut ctx, &net, &st, s, t, 2.0),
                find_two_paths_joint(&net, &st, s, t, 2.0),
            ) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
                    assert_eq!(a.route, b.route);
                    assert_eq!(a.bottleneck_load.to_bits(), b.bottleneck_load.to_bits());
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("joint ctx/one-shot mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}
