//! Property-based invariants of the event journal and the transactional
//! undo log: replay reconstructs live state bit-identically (clocks
//! included) under arbitrary interleavings of provision / teardown /
//! failure / repair, and a rolled-back transaction leaves no trace.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_core::conversion::ConversionTable;
use wdm_core::journal::{EventSink, NetEvent, StateJournal, Txn};
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_core::semilightpath::Hop;
use wdm_core::wavelength::{Wavelength, WavelengthSet};
use wdm_graph::{EdgeId, NodeId};

/// A random strongly-worked network plus a state with random pre-occupancy
/// (the journal checkpoint need not be fresh).
fn random_net(seed: u64) -> (WdmNetwork, ResidualState) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(4..9usize);
    let w = rng.gen_range(2..6usize);
    let mut b = NetworkBuilder::new(w);
    for _ in 0..n {
        b.add_node(ConversionTable::Full {
            cost: rng.gen_range(0.1..1.0),
        });
    }
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && (v == (u + 1) % n as u32 || rng.gen_bool(0.3)) {
                let mut set = WavelengthSet::empty();
                for l in 0..w {
                    if rng.gen_bool(0.8) {
                        set.insert(Wavelength(l as u8));
                    }
                }
                if set.is_empty() {
                    set.insert(Wavelength(0));
                }
                b.add_link_with(NodeId(u), NodeId(v), rng.gen_range(1.0..10.0), set);
            }
        }
    }
    let net = b.build();
    let mut st = ResidualState::fresh(&net);
    for ei in 0..net.link_count() {
        let e = EdgeId::from(ei);
        for l in net.lambda(e).iter() {
            if rng.gen_bool(0.2) {
                let _ = st.occupy(&net, e, l);
            }
        }
    }
    (net, st)
}

/// Payload equality plus global and per-link change clocks.
fn assert_bit_identical(a: &ResidualState, b: &ResidualState, net: &WdmNetwork) {
    assert_eq!(a, b, "payload (used + failed) diverged");
    assert_eq!(a.change_clock(), b.change_clock(), "global clock diverged");
    for ei in 0..net.link_count() {
        let e = EdgeId::from(ei);
        assert_eq!(
            a.link_change_clock(e),
            b.link_change_clock(e),
            "link clock diverged on {e:?}"
        );
    }
}

/// A small random hop set (channels may collide or be invalid — the
/// occupy path's strictness is part of what's under test).
fn random_hops(rng: &mut ChaCha8Rng, net: &WdmNetwork) -> Vec<Hop> {
    let k = rng.gen_range(1..4usize);
    (0..k)
        .map(|_| {
            let e = EdgeId::from(rng.gen_range(0..net.link_count()));
            let l = Wavelength(rng.gen_range(0..net.num_wavelengths()) as u8);
            Hop {
                edge: e,
                wavelength: l,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random interleavings of the full event vocabulary: replaying the
    /// journal over its checkpoint reproduces the live state bit-identically,
    /// clocks included. Failed provisions (strict occupy) are unwound by the
    /// transaction and therefore leave no trace on either lineage.
    #[test]
    fn journal_replay_matches_direct_mutation(seed in 0u64..25_000) {
        let (net, st0) = random_net(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
        let mut journal = StateJournal::new(st0.clone());
        let mut live = st0;
        let mut routes: Vec<(u64, Vec<Hop>)> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..60 {
            match rng.gen_range(0..6) {
                0..=2 => {
                    let hops = random_hops(&mut rng, &net);
                    let mut txn = Txn::begin(&mut live);
                    if txn.occupy_hops(&net, &hops).is_ok() {
                        txn.commit();
                        journal.record(NetEvent::Provision {
                            id: next_id,
                            channels: hops.clone(),
                        });
                        routes.push((next_id, hops));
                        next_id += 1;
                    }
                }
                3 => {
                    if !routes.is_empty() {
                        let i = rng.gen_range(0..routes.len());
                        let (id, hops) = routes.swap_remove(i);
                        for h in &hops {
                            let _ = live.release(h.edge, h.wavelength);
                        }
                        journal.record(NetEvent::Teardown { id, channels: hops });
                    }
                }
                4 => {
                    let e = EdgeId::from(rng.gen_range(0..net.link_count()));
                    live.fail_link(e);
                    journal.record(NetEvent::FailLink { link: e });
                }
                _ => {
                    let e = EdgeId::from(rng.gen_range(0..net.link_count()));
                    live.repair_link(e);
                    journal.record(NetEvent::RepairLink { link: e });
                }
            }
        }
        let replayed = journal.replay(&net).expect("recorded events must replay");
        assert_bit_identical(&replayed, &live, &net);
        prop_assert_eq!(replayed.semantic_hash(), live.semantic_hash());
    }

    /// `Txn::rollback` after an arbitrary mutation mix restores the exact
    /// pre-transaction snapshot — payload, failure flags, and every clock.
    #[test]
    fn txn_rollback_is_a_perfect_undo(seed in 0u64..25_000) {
        let (net, mut st) = random_net(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x2545F4914F6CDD1D));
        let before = st.clone();
        let mut txn = Txn::begin(&mut st);
        for _ in 0..40 {
            let e = EdgeId::from(rng.gen_range(0..net.link_count()));
            let l = Wavelength(rng.gen_range(0..net.num_wavelengths()) as u8);
            match rng.gen_range(0..5) {
                0 | 1 => {
                    let _ = txn.occupy(&net, e, l);
                }
                2 => {
                    let _ = txn.release(e, l);
                }
                3 => txn.fail_link(e),
                _ => txn.repair_link(e),
            }
        }
        txn.rollback();
        assert_bit_identical(&st, &before, &net);
    }

    /// A committed transaction is indistinguishable from issuing the same
    /// mutations directly on the state.
    #[test]
    fn txn_commit_equals_direct_mutation(seed in 0u64..25_000) {
        let (net, mut direct) = random_net(seed);
        let mut via_txn = direct.clone();
        let ops: Vec<(u8, EdgeId, Wavelength)> = {
            let mut rng = ChaCha8Rng::seed_from_u64(!seed);
            (0..40)
                .map(|_| {
                    (
                        rng.gen_range(0..5u8),
                        EdgeId::from(rng.gen_range(0..net.link_count())),
                        Wavelength(rng.gen_range(0..net.num_wavelengths()) as u8),
                    )
                })
                .collect()
        };
        let mut txn = Txn::begin(&mut via_txn);
        for &(op, e, l) in &ops {
            match op {
                0 | 1 => {
                    let _ = txn.occupy(&net, e, l);
                }
                2 => {
                    let _ = txn.release(e, l);
                }
                3 => txn.fail_link(e),
                _ => txn.repair_link(e),
            }
        }
        txn.commit();
        for &(op, e, l) in &ops {
            match op {
                0 | 1 => {
                    let _ = direct.occupy(&net, e, l);
                }
                2 => {
                    let _ = direct.release(e, l);
                }
                3 => direct.fail_link(e),
                _ => direct.repair_link(e),
            }
        }
        assert_bit_identical(&via_txn, &direct, &net);
    }
}
