//! Warm Johnson potentials: safety and exactness.
//!
//! The engine may carry Johnson-style potentials across requests so that
//! Suurballe pass 1 restarts warm (reduced keys, narrow bucket span). Two
//! properties are pinned here:
//!
//! 1. **Exactness** — a warm search may pick a different *equal-cost*
//!    optimum, but the pair's `total_cost` bits must equal the cold
//!    search's, step for step, across long mutation histories.
//! 2. **Staleness safety** — potentials are only valid for the residual
//!    state they were adopted under. Any event that invalidates the whole
//!    skeleton (a change-clock restart from a fresh/replaced
//!    [`ResidualState`], a threshold re-mask) must wipe the potentials to
//!    the all-zero (always-feasible) vector rather than let stale values
//!    leak into reduced keys.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_core::aux_engine::{AuxEngine, RouterCtx};
use wdm_core::aux_graph::AuxSpec;
use wdm_core::conversion::ConversionTable;
use wdm_core::mincog::{find_two_paths_mincog, find_two_paths_mincog_ctx};
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_core::wavelength::{Wavelength, WavelengthSet};
use wdm_graph::{EdgeId, NodeId, SearchArena};

/// Quarter-integer costs, free conversions: every weight certifies as a
/// dyadic multiple of `2^-SCALE_SHIFT`, so the integer/bucket path (and
/// with it the warm machinery) engages on every solve.
fn dyadic_net(rng: &mut ChaCha8Rng) -> WdmNetwork {
    let n = rng.gen_range(5..10usize);
    let w = 4usize;
    let mut b = NetworkBuilder::new(w);
    for _ in 0..n {
        let conv = if rng.gen_bool(0.5) {
            ConversionTable::Full { cost: 0.0 }
        } else {
            ConversionTable::None
        };
        b.add_node(conv);
    }
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && rng.gen_bool(0.5) {
                let mut set = WavelengthSet::empty();
                for l in 0..w {
                    if rng.gen_bool(0.7) {
                        set.insert(Wavelength(l as u8));
                    }
                }
                if set.is_empty() {
                    set.insert(Wavelength(0));
                }
                let cost = rng.gen_range(4..40) as f64 / 4.0;
                b.add_link_with(NodeId(u), NodeId(v), cost, set);
            }
        }
    }
    b.build()
}

fn random_op(rng: &mut ChaCha8Rng, net: &WdmNetwork, st: &mut ResidualState) {
    let e = EdgeId::from(rng.gen_range(0..net.link_count()));
    match rng.gen_range(0..4) {
        0 => {
            let l = Wavelength(rng.gen_range(0..net.num_wavelengths()) as u8);
            let _ = st.occupy(net, e, l);
        }
        1 => {
            let l = Wavelength(rng.gen_range(0..net.num_wavelengths()) as u8);
            let _ = st.release(e, l);
        }
        2 => st.fail_link(e),
        _ => st.repair_link(e),
    }
}

/// One solve over an engine: sync, warm-prepare (a no-op on cold engines),
/// then the flat search — integer path when certified (always, on these
/// nets), warm iff the engine carries potentials.
fn solve(
    eng: &mut AuxEngine,
    arena: &mut SearchArena,
    net: &WdmNetwork,
    st: &ResidualState,
    s: NodeId,
    t: NodeId,
) -> Option<(u64, Vec<Vec<EdgeId>>)> {
    eng.sync(net, st, s, t);
    eng.warm_prepare(net);
    let warm = eng.warm_potentials();
    let (aux_s, aux_t) = (eng.source(), eng.sink());
    let (view, int, pot) = eng.flat_parts();
    let iw = int.expect("dyadic nets must certify the integer path");
    let warm_pot = warm.then_some(pot);
    let pair = arena.edge_disjoint_pair_flat_int(&view, &iw, warm_pot, aux_s, aux_t, || {})?;
    let eng: &AuxEngine = eng;
    let legs = pair
        .paths
        .iter()
        .map(|p| eng.physical_edges(p))
        .collect::<Vec<_>>();
    Some((pair.total_cost.to_bits(), legs))
}

/// Warm and cold engines dragged through the same mutation history produce
/// pairs with identical `total_cost` bits, and the warm pair's legs stay
/// edge-disjoint in physical links.
#[test]
fn warm_totals_match_cold_across_mutations() {
    for seed in 0..12u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x3A12 ^ seed);
        let net = dyadic_net(&mut rng);
        let mut st = ResidualState::fresh(&net);
        let mut arena = SearchArena::new();
        let mut cold = AuxEngine::new(&net, AuxSpec::g_prime());
        let mut warm = AuxEngine::new(&net, AuxSpec::g_prime());
        warm.set_warm_potentials(true);
        for step in 0..30 {
            for _ in 0..rng.gen_range(0..3) {
                random_op(&mut rng, &net, &mut st);
            }
            let s = NodeId(rng.gen_range(0..net.node_count()) as u32);
            let t = NodeId(rng.gen_range(0..net.node_count()) as u32);
            if s == t {
                continue;
            }
            let c = solve(&mut cold, &mut arena, &net, &st, s, t);
            let w = solve(&mut warm, &mut arena, &net, &st, s, t);
            match (c, w) {
                (None, None) => {}
                (Some((cb, _)), Some((wb, legs))) => {
                    assert_eq!(cb, wb, "seed {seed} step {step}: total-cost bits");
                    let mut seen = std::collections::HashSet::new();
                    for leg in &legs {
                        for &e in leg {
                            assert!(
                                seen.insert(e),
                                "seed {seed} step {step}: warm legs share a physical link"
                            );
                        }
                    }
                }
                (c, w) => panic!("seed {seed} step {step}: feasibility split {c:?} vs {w:?}"),
            }
        }
    }
}

/// A change-clock restart (fresh [`ResidualState`] handed to a synced
/// engine) forces a full refresh — and must wipe the carried potentials to
/// all-zero. Stale potentials surviving a clock reset would silently
/// corrupt reduced keys on the next warm solve.
#[test]
fn stale_potentials_never_survive_clock_reset() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x57A1E);
    let net = dyadic_net(&mut rng);
    let mut st = ResidualState::fresh(&net);
    let mut arena = SearchArena::new();
    let mut eng = AuxEngine::new(&net, AuxSpec::g_prime());
    eng.set_warm_potentials(true);

    // Advance the clock and solve until the engine has adopted nonzero
    // potentials.
    let mut adopted = false;
    for step in 0..40 {
        random_op(&mut rng, &net, &mut st);
        let s = NodeId((step % net.node_count()) as u32);
        let t = NodeId(((step + 2) % net.node_count()) as u32);
        if s == t {
            continue;
        }
        solve(&mut eng, &mut arena, &net, &st, s, t);
        if eng.potentials().pi.iter().any(|&p| p > 0) {
            adopted = true;
            break;
        }
    }
    assert!(adopted, "test net never produced nonzero potentials");

    // Clock restart: a brand-new state starts from clock 0, strictly below
    // the engine's synced clock -> full refresh -> potentials wiped.
    let st2 = ResidualState::fresh(&net);
    eng.sync(&net, &st2, NodeId(0), NodeId(1));
    assert!(
        eng.potentials().pi.iter().all(|&p| p == 0),
        "stale potentials survived a change-clock reset"
    );
    assert_eq!(
        eng.potentials().max,
        0,
        "potential bound survived the reset"
    );
}

/// A threshold change re-masks the whole admission set (arcs flip without
/// per-link dirt), so it must also reset the potentials.
#[test]
fn threshold_remask_resets_potentials() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7E5A);
    let net = dyadic_net(&mut rng);
    let mut st = ResidualState::fresh(&net);
    let mut arena = SearchArena::new();
    let mut eng = AuxEngine::new(&net, AuxSpec::g_rc(0.9));
    eng.set_warm_potentials(true);

    let mut adopted = false;
    for step in 0..40 {
        random_op(&mut rng, &net, &mut st);
        let s = NodeId((step % net.node_count()) as u32);
        let t = NodeId(((step + 3) % net.node_count()) as u32);
        if s == t {
            continue;
        }
        solve(&mut eng, &mut arena, &net, &st, s, t);
        if eng.potentials().pi.iter().any(|&p| p > 0) {
            adopted = true;
            break;
        }
    }
    assert!(adopted, "test net never produced nonzero potentials");

    eng.set_threshold(Some(0.35));
    eng.sync(&net, &st, NodeId(0), NodeId(1));
    assert!(
        eng.potentials().pi.iter().all(|&p| p == 0),
        "potentials survived a threshold re-mask"
    );
}

/// The warm router context agrees with the cold one-shot router on
/// feasibility, threshold bits and probe counts across a mutation history
/// (routes may differ only among equal-cost optima, which the total-cost
/// assertions in `warm_totals_match_cold_across_mutations` pin).
#[test]
fn warm_ctx_matches_one_shot_feasibility_and_threshold() {
    for seed in 0..8u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xCA1D ^ seed);
        let net = dyadic_net(&mut rng);
        let mut st = ResidualState::fresh(&net);
        let mut ctx = RouterCtx::new();
        ctx.set_warm_potentials(true);
        for _step in 0..20 {
            for _ in 0..rng.gen_range(0..4) {
                random_op(&mut rng, &net, &mut st);
            }
            let s = NodeId(rng.gen_range(0..net.node_count()) as u32);
            let t = NodeId(rng.gen_range(0..net.node_count()) as u32);
            if s == t {
                continue;
            }
            match (
                find_two_paths_mincog_ctx(&mut ctx, &net, &st, s, t, 2.0),
                find_two_paths_mincog(&net, &st, s, t, 2.0),
            ) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
                    assert_eq!(a.probes, b.probes);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("warm ctx/one-shot feasibility split: {a:?} vs {b:?}"),
            }
        }
    }
}
