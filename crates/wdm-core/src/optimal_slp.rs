//! The optimal-semilightpath algorithm (Liang–Shen, IEEE Trans. Commun.
//! 2000 — reference \[13\] of the paper).
//!
//! Finding the cheapest semilightpath is shortest-path search over the
//! *layered wavelength graph*: states are `(link, wavelength)` pairs
//! ("arrived at `head(link)` having traversed `link` on `wavelength`"), with
//! transitions weighted by the conversion cost at the shared node plus the
//! traversal cost of the next link. Dijkstra over the ≤ `m·W` states gives
//! the `O(nW² + nW log(nW))`-flavoured bound the paper quotes in
//! Theorems 1 and 3.
//!
//! Two entry points:
//! * [`optimal_semilightpath_filtered`] — the general search, with an edge
//!   filter used by the §3.3 refinement step to restrict the search to an
//!   induced subgraph `G_i`;
//! * [`assign_wavelengths_on_path`] — the special case of a fixed edge
//!   sequence (the induced subgraph of an auxiliary-graph path is a single
//!   path), solved by an `O(L·W²)` DP; used as a fast path and as a
//!   cross-check oracle in tests.

use crate::network::{ResidualState, WdmNetwork};
use crate::semilightpath::{Hop, Semilightpath};
use crate::wavelength::Wavelength;
use wdm_graph::{EdgeId, NodeId};
use wdm_heap::{DaryHeap, MinQueue};

/// Cheapest semilightpath `s -> t` in the residual network, or `None` if
/// unreachable.
///
/// ```
/// use wdm_core::prelude::*;
/// use wdm_graph::NodeId;
///
/// // Two links with disjoint wavelengths: the optimal semilightpath must
/// // pay one conversion at the middle node.
/// let mut b = NetworkBuilder::new(2);
/// let n0 = b.add_node(ConversionTable::Full { cost: 0.5 });
/// let n1 = b.add_node(ConversionTable::Full { cost: 0.5 });
/// let n2 = b.add_node(ConversionTable::Full { cost: 0.5 });
/// b.add_link_with(n0, n1, 1.0, WavelengthSet::from_indices(&[0]));
/// b.add_link_with(n1, n2, 1.0, WavelengthSet::from_indices(&[1]));
/// let net = b.build();
/// let state = ResidualState::fresh(&net);
///
/// let p = optimal_semilightpath(&net, &state, n0, n2).unwrap();
/// assert_eq!(p.cost, 2.5);               // 1 + 0.5 (conversion) + 1
/// assert_eq!(p.conversion_count(), 1);
/// let _ = NodeId(0);
/// ```
pub fn optimal_semilightpath(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
) -> Option<Semilightpath> {
    optimal_semilightpath_filtered(net, state, s, t, |_| true)
}

/// Cheapest semilightpath `s -> t` using only links accepted by `filter`.
pub fn optimal_semilightpath_filtered(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    mut filter: impl FnMut(EdgeId) -> bool,
) -> Option<Semilightpath> {
    if s == t {
        return None;
    }
    let w = net.num_wavelengths();
    let m = net.link_count();
    let num_states = m * w;
    let state_id = |e: EdgeId, l: Wavelength| e.index() * w + l.index();

    let mut dist = vec![f64::INFINITY; num_states];
    let mut pred: Vec<u32> = vec![u32::MAX; num_states];
    let mut queue: DaryHeap<f64, 4> = DaryHeap::with_capacity(num_states);

    // Seed: every available wavelength on every out-link of s.
    for &e in net.graph().out_edges(s) {
        if !filter(e) {
            continue;
        }
        for l in state.avail(net, e).iter() {
            let id = state_id(e, l);
            let c = net.link_cost(e, l);
            if c < dist[id] {
                dist[id] = c;
                queue.insert_or_decrease(id, c);
            }
        }
    }

    let mut best_final: Option<(usize, f64)> = None;
    while let Some((id, d)) = queue.pop_min() {
        let e = EdgeId::from(id / w);
        let l = Wavelength((id % w) as u8);
        let v = net.endpoints(e).1;
        if v == t {
            best_final = Some((id, d));
            break; // Dijkstra: first settled t-state is optimal
        }
        let conv = net.conversion(v);
        for &e2 in net.graph().out_edges(v) {
            if !filter(e2) {
                continue;
            }
            let avail2 = state.avail(net, e2);
            if avail2.is_empty() {
                continue;
            }
            for l2 in avail2.iter() {
                let Some(cc) = conv.cost(l, l2) else {
                    continue;
                };
                let nd = d + cc + net.link_cost(e2, l2);
                let id2 = state_id(e2, l2);
                if nd < dist[id2] {
                    dist[id2] = nd;
                    pred[id2] = id as u32;
                    queue.insert_or_decrease(id2, nd);
                }
            }
        }
    }

    let (final_id, _) = best_final?;
    // Reconstruct hops.
    let mut hops = Vec::new();
    let mut cur = final_id;
    loop {
        let e = EdgeId::from(cur / w);
        let l = Wavelength((cur % w) as u8);
        hops.push(Hop {
            edge: e,
            wavelength: l,
        });
        if pred[cur] == u32::MAX {
            break;
        }
        cur = pred[cur] as usize;
    }
    hops.reverse();
    let slp = Semilightpath::new(net, s, hops).expect("search produces a legal semilightpath");
    debug_assert!(slp.validate(net, state).is_ok());
    Some(slp)
}

/// Optimal wavelength assignment along a *fixed* physical edge sequence:
/// dynamic programming over `(hop, wavelength)` with conversion costs,
/// `O(L·W²)`. Returns `None` if no feasible assignment exists (some hop has
/// no available wavelength, or conversions cannot connect the choices).
#[allow(clippy::needless_range_loop)] // dp is indexed by wavelength on purpose
pub fn assign_wavelengths_on_path(
    net: &WdmNetwork,
    state: &ResidualState,
    src: NodeId,
    edges: &[EdgeId],
) -> Option<Semilightpath> {
    if edges.is_empty() {
        return None;
    }
    let w = net.num_wavelengths();
    // dp[l] = best cost arriving at head(edges[i]) on wavelength l.
    let mut dp = vec![f64::INFINITY; w];
    let mut choice: Vec<Vec<u8>> = Vec::with_capacity(edges.len()); // choice[i][l] = predecessor λ
    let first_avail = state.avail(net, edges[0]);
    if first_avail.is_empty() {
        return None;
    }
    for l in first_avail.iter() {
        dp[l.index()] = net.link_cost(edges[0], l);
    }
    choice.push(vec![u8::MAX; w]);

    let mut at = net.endpoints(edges[0]).1;
    for (_i, &e) in edges.iter().enumerate().skip(1) {
        let (u, v) = net.endpoints(e);
        debug_assert_eq!(u, at, "edge sequence must be a connected walk");
        let avail = state.avail(net, e);
        let conv = net.conversion(u);
        let mut next = vec![f64::INFINITY; w];
        let mut ch = vec![u8::MAX; w];
        for l2 in avail.iter() {
            let link_c = net.link_cost(e, l2);
            for l1 in 0..w {
                if dp[l1].is_finite() {
                    if let Some(cc) = conv.cost(Wavelength(l1 as u8), l2) {
                        let cand = dp[l1] + cc + link_c;
                        if cand < next[l2.index()] {
                            next[l2.index()] = cand;
                            ch[l2.index()] = l1 as u8;
                        }
                    }
                }
            }
        }
        dp = next;
        choice.push(ch);
        at = v;
    }

    // Pick the best terminal wavelength and backtrack.
    let (best_l, best_cost) = dp
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_finite())
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(l, &c)| (l, c))?;
    let mut lambdas = vec![0u8; edges.len()];
    let mut l = best_l as u8;
    for i in (0..edges.len()).rev() {
        lambdas[i] = l;
        if i > 0 {
            l = choice[i][l as usize];
            debug_assert_ne!(l, u8::MAX);
        }
    }
    let hops: Vec<Hop> = edges
        .iter()
        .zip(&lambdas)
        .map(|(&e, &l)| Hop {
            edge: e,
            wavelength: Wavelength(l),
        })
        .collect();
    let slp = Semilightpath::new(net, src, hops).expect("DP output is legal");
    debug_assert!((slp.cost - best_cost).abs() < 1e-9);
    Some(slp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::network::NetworkBuilder;
    use crate::wavelength::WavelengthSet;

    /// A 4-node network where the cheapest *semilightpath* must pay a
    /// conversion: link 0->1 only has λ0, link 1->3 only has λ1.
    fn conversion_required() -> WdmNetwork {
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.5 }))
            .collect();
        b.add_link_with(n[0], n[1], 1.0, WavelengthSet::from_indices(&[0])); // e0
        b.add_link_with(n[1], n[3], 1.0, WavelengthSet::from_indices(&[1])); // e1
        b.add_link_with(n[0], n[2], 2.0, WavelengthSet::from_indices(&[0])); // e2
        b.add_link_with(n[2], n[3], 2.0, WavelengthSet::from_indices(&[0])); // e3
        b.build()
    }

    #[test]
    fn pays_conversion_when_cheaper() {
        let net = conversion_required();
        let st = ResidualState::fresh(&net);
        let p = optimal_semilightpath(&net, &st, NodeId(0), NodeId(3)).unwrap();
        // Top route: 1 + 0.5 + 1 = 2.5 beats bottom 4.0.
        assert_eq!(p.cost, 2.5);
        assert_eq!(p.conversion_count(), 1);
        assert_eq!(
            p.hops,
            vec![
                Hop {
                    edge: EdgeId(0),
                    wavelength: Wavelength(0)
                },
                Hop {
                    edge: EdgeId(1),
                    wavelength: Wavelength(1)
                },
            ]
        );
    }

    #[test]
    fn avoids_conversion_when_expensive() {
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 10.0 }))
            .collect();
        b.add_link_with(n[0], n[1], 1.0, WavelengthSet::from_indices(&[0]));
        b.add_link_with(n[1], n[3], 1.0, WavelengthSet::from_indices(&[1]));
        b.add_link_with(n[0], n[2], 2.0, WavelengthSet::from_indices(&[0]));
        b.add_link_with(n[2], n[3], 2.0, WavelengthSet::from_indices(&[0]));
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let p = optimal_semilightpath(&net, &st, NodeId(0), NodeId(3)).unwrap();
        // Now 1 + 10 + 1 = 12 loses to 4.0 on wavelength continuity.
        assert_eq!(p.cost, 4.0);
        assert_eq!(p.conversion_count(), 0);
    }

    #[test]
    fn respects_no_conversion_nodes() {
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..3).map(|_| b.add_node(ConversionTable::None)).collect();
        b.add_link_with(n[0], n[1], 1.0, WavelengthSet::from_indices(&[0]));
        b.add_link_with(n[1], n[2], 1.0, WavelengthSet::from_indices(&[1]));
        let net = b.build();
        let st = ResidualState::fresh(&net);
        // λ0 then λ1 requires conversion at node 1: impossible.
        assert!(optimal_semilightpath(&net, &st, NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn respects_residual_occupancy() {
        let net = conversion_required();
        let mut st = ResidualState::fresh(&net);
        // Kill the cheap top route by occupying λ0 on e0.
        st.occupy(&net, EdgeId(0), Wavelength(0)).unwrap();
        let p = optimal_semilightpath(&net, &st, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.cost, 4.0);
    }

    #[test]
    fn filter_restricts_edges() {
        let net = conversion_required();
        let st = ResidualState::fresh(&net);
        let p = optimal_semilightpath_filtered(&net, &st, NodeId(0), NodeId(3), |e| e.index() >= 2)
            .unwrap();
        assert_eq!(p.cost, 4.0);
    }

    #[test]
    fn unreachable_or_degenerate() {
        let net = conversion_required();
        let st = ResidualState::fresh(&net);
        assert!(optimal_semilightpath(&net, &st, NodeId(3), NodeId(0)).is_none());
        assert!(optimal_semilightpath(&net, &st, NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn dp_agrees_with_dijkstra_on_fixed_path() {
        let net = conversion_required();
        let st = ResidualState::fresh(&net);
        let full = optimal_semilightpath(&net, &st, NodeId(0), NodeId(3)).unwrap();
        let edges: Vec<EdgeId> = full.edges().collect();
        let dp = assign_wavelengths_on_path(&net, &st, NodeId(0), &edges).unwrap();
        assert_eq!(dp.cost, full.cost);
        assert_eq!(dp.hops, full.hops);
    }

    #[test]
    fn dp_reports_infeasible_path() {
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..3).map(|_| b.add_node(ConversionTable::None)).collect();
        b.add_link_with(n[0], n[1], 1.0, WavelengthSet::from_indices(&[0]));
        b.add_link_with(n[1], n[2], 1.0, WavelengthSet::from_indices(&[1]));
        let net = b.build();
        let st = ResidualState::fresh(&net);
        assert!(
            assign_wavelengths_on_path(&net, &st, NodeId(0), &[EdgeId(0), EdgeId(1)]).is_none()
        );
    }

    #[test]
    fn per_lambda_costs_steer_choice() {
        let mut b = NetworkBuilder::new(2);
        let n0 = b.add_node(ConversionTable::Full { cost: 0.0 });
        let n1 = b.add_node(ConversionTable::Full { cost: 0.0 });
        b.add_link_per_lambda(n0, n1, WavelengthSet::full(2), vec![5.0, 1.0]);
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let p = optimal_semilightpath(&net, &st, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(p.cost, 1.0);
        assert_eq!(p.hops[0].wavelength, Wavelength(1));
    }
}
