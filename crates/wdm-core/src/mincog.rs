//! §4.1: `Find_Two_Paths_MinCog` — minimising the network load.
//!
//! The simpler version of the joint problem: find two edge-disjoint
//! semilightpaths whose *load impact* is minimal. The algorithm searches a
//! load threshold `ϑ`: links with `ρ(e) ≥ ϑ` are excluded from the
//! thresholded auxiliary graph `G_c`, whose traversal weights are the
//! exponential congestion increments `a^((U+1)/N) − a^(U/N)`; Suurballe on
//! `G_c` then prefers lightly loaded links among those admitted.
//!
//! The paper's pseudocode performs a geometric escalation of `ϑ` from
//! `ϑ_min = min_e (U(e)+1)/N(e)` towards `ϑ_max = max_e (U(e)+1)/N(e)`
//! (steps `Δ/2^j` with `j` counting down from `j₀ = −⌈log₂ Δ⌉`), accepting
//! the first feasible threshold — that search is what Theorem 3's 3× bound
//! analyses.
//!
//! **Deviation (schedule repair).** The printed schedule's *first* step has
//! size `Δ/2^{j₀} ∈ (Δ²/2, Δ²]`, which can overshoot from `ϑ_min` straight
//! past the optimum (e.g. `ϑ_min = 0.2`, `Δ = 0.8`: probes 0.2 then 1.0,
//! while `ϑ* = 0.25` — ratio 4, breaching the theorem's own bound; the
//! proof's telescoping step divides by an empty partial sum there).
//! Theorem 3's argument needs consecutive probes that at most double, so
//! [`find_two_paths_mincog`] escalates by *doubling the threshold itself*:
//! `ϑ_i = min(2^i · ϑ_min, ϑ_max)`. Feasibility is monotone in `ϑ` and the
//! exact optimum satisfies `ϑ* ≥ ϑ_min`, so the first feasible probe obeys
//! `ϑ ≤ 2·ϑ*` — a *stronger* guarantee than the paper's 3×, with the same
//! `O(log 1/Δ)` probe count. [`exact_min_load_threshold`] additionally
//! provides the true optimum by binary search over the *discrete* candidate
//! set `{(U(e)+1)/N(e)}`, used by the T3 experiment as the baseline.

use crate::aux_engine::RouterCtx;
use crate::aux_graph::AuxSpec;
use crate::disjoint::refine_leg;
use crate::error::RoutingError;
use crate::network::{ResidualState, WdmNetwork};
use crate::semilightpath::RobustRoute;
use wdm_graph::{EdgeId, NodeId};
use wdm_telemetry::{Counter, Hist, Recorder, Tracer};

/// Default exponential base `a` for the congestion weights. The paper only
/// requires `a > 1`; the experiments sweep `a ∈ {2, e, 10}`.
pub const DEFAULT_CONGESTION_BASE: f64 = std::f64::consts::E;

/// Result of a MinCog (load-minimising) run.
#[derive(Debug, Clone)]
pub struct MinCogOutcome {
    /// The accepted threshold `ϑ`.
    pub threshold: f64,
    /// Physical edges of the two accepted auxiliary paths.
    pub aux_paths: [Vec<EdgeId>; 2],
    /// The refined semilightpath pair.
    pub route: RobustRoute,
    /// Number of `G_c` constructions (threshold probes) performed.
    pub probes: usize,
}

impl MinCogOutcome {
    /// The decision's dependency footprint: its links, plus the accepted
    /// threshold marking it globally load-dependent (the ladder bounds read
    /// every link's load — see
    /// [`RouteFootprint::is_link_local`](crate::disjoint::RouteFootprint::is_link_local)).
    pub fn dependency_footprint(&self) -> crate::disjoint::RouteFootprint {
        let mut fp = crate::disjoint::RouteFootprint::of_route(&self.route);
        fp.threshold = Some(self.threshold);
        fp
    }
}

/// Tries one threshold spec end-to-end: Suurballe on the thresholded `G_c`
/// *plus* the Liang–Shen refinement. Under restricted conversion tables an
/// auxiliary pair may have no feasible wavelength assignment — such probes
/// count as infeasible so the search escalates instead of failing (with
/// full conversion, the paper's assumption (i), refinement never fails).
///
/// Consecutive probes reuse the context's `G_c` engine: only the admission
/// mask changes between thresholds, so each probe after the first is an
/// `O(m)` re-mask plus the searches — no graph construction, no `O(W²)`
/// conversion sums.
pub(crate) fn probe_route<R: Recorder, T: Tracer>(
    ctx: &mut RouterCtx<R, T>,
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    spec: AuxSpec,
) -> Option<(RobustRoute, [Vec<EdgeId>; 2])> {
    let (_, aux_paths) = ctx.disjoint_pair(net, state, s, t, spec)?;
    let leg_a = refine_leg(net, state, s, t, &aux_paths[0]).ok()?;
    let leg_b = refine_leg(net, state, s, t, &aux_paths[1]).ok()?;
    Some((RobustRoute::ordered(leg_a, leg_b), aux_paths))
}

/// The feasible-threshold bounds `(ϑ_min, ϑ_max)` from the paper:
/// `min / max` over links of `(U(e)+1)/N(e)`.
///
/// Only links with available capacity participate: a saturated or failed
/// link can never carry a new route, and including it would push
/// `ϑ_max = (N+1)/N` above 1 and break the geometric schedule's `Δ < 1`
/// assumption (the paper's loads always lie in `(0, 1]`).
pub fn threshold_bounds(net: &WdmNetwork, state: &ResidualState) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for ei in 0..net.link_count() {
        let e = EdgeId::from(ei);
        if state.avail(net, e).is_empty() {
            continue;
        }
        let p = state.prospective_load(net, e);
        if p.is_finite() {
            lo = lo.min(p);
            hi = hi.max(p);
        }
    }
    if lo.is_infinite() {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// §4.1 `Find_Two_Paths_MinCog` with the repaired geometric escalation
/// (see the module docs): probes `ϑ_min, 2ϑ_min, 4ϑ_min, …` capped at
/// `ϑ_max`, accepting the first feasible threshold. Guarantees
/// `ϑ ≤ 2·ϑ*` (stronger than Theorem 3's 3×) in `O(log(ϑ_max/ϑ_min))`
/// Suurballe probes. `a` is the exponential congestion base of `G_c`.
///
/// A threshold `ϑ` admits links with `ρ(e) < ϑ`; because a routed pair
/// occupies one extra channel per chosen link, the *resulting* network load
/// contribution of the chosen links is at most `max_e (U(e)+1)/N(e)` over
/// them, which the experiments report.
pub fn find_two_paths_mincog(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    a: f64,
) -> Result<MinCogOutcome, RoutingError> {
    find_two_paths_mincog_ctx(&mut RouterCtx::new(), net, state, s, t, a)
}

/// The `i`-th rung of the doubling ladder `ϑ_i = min(2^i·ϑ_min, ϑ_max)`,
/// computed by the exact float sequence the escalation loop produces (so a
/// remembered rung reproduces its probe value bit-for-bit).
fn ladder_rung(theta_min: f64, theta_max: f64, i: u32) -> f64 {
    let mut theta = theta_min;
    for _ in 0..i {
        theta = (theta * 2.0).min(theta_max);
    }
    theta
}

/// [`find_two_paths_mincog`] over a caller-owned [`RouterCtx`]: every probe
/// of the threshold search shares one incrementally maintained `G_c` engine
/// (probes after the first only re-mask admission), and a long-lived
/// context additionally amortises across requests.
///
/// **Warm start.** The context remembers the accepted ladder rung of the
/// previous search together with the residual-state change clock it was
/// accepted at. A later search in the *same* residual epoch sees the same
/// ladder (the bounds depend only on the state), so it starts probing at the
/// remembered rung — halving downward while feasible, escalating by doubling
/// as usual when infeasible. Under full conversion (assumption (i)) probe
/// feasibility is monotone in ϑ, so both directions stop at exactly the rung
/// the cold search would accept: the outcome is bit-identical and only the
/// `probes` count (and the `threshold_probes` telemetry) shrinks. The ≤2·ϑ*
/// guarantee is untouched — the rung below the accepted one is probed (or
/// known) infeasible, hence ϑ* > ϑ/2. Without full conversion, refinement
/// failures can make feasibility non-monotone and the warm start is
/// disabled.
pub fn find_two_paths_mincog_ctx<R: Recorder, T: Tracer>(
    ctx: &mut RouterCtx<R, T>,
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    a: f64,
) -> Result<MinCogOutcome, RoutingError> {
    if s == t {
        return Err(RoutingError::DegenerateRequest);
    }
    let (theta_min, theta_max) = threshold_bounds(net, state);
    if theta_max <= 0.0 {
        return Err(RoutingError::LoadSearchExhausted);
    }
    let epoch = state.change_clock();
    let warm_rung = if net.full_conversion() {
        ctx.mincog_warm
            .filter(|&(ep, _)| ep == epoch)
            .map(|(_, i)| i)
    } else {
        None
    };
    let mut probes = 0usize;

    // ϑ is an *exclusive* upper bound on current load; to admit links whose
    // prospective load equals the probe value we add a hair.
    let bump = 1e-9;
    let mut probe = |probes: &mut usize, theta: f64| {
        *probes += 1;
        probe_route(ctx, net, state, s, t, AuxSpec::g_c(a, theta + bump))
    };

    let accepted = if let Some(start) = warm_rung {
        let theta = ladder_rung(theta_min, theta_max, start);
        match probe(&mut probes, theta) {
            Some(hit) => {
                // Feasible at the remembered rung: halve downward to the
                // lowest feasible rung (monotone ⇒ the cold answer).
                let mut best = (start, theta, hit);
                while best.0 > 0 {
                    let below = ladder_rung(theta_min, theta_max, best.0 - 1);
                    match probe(&mut probes, below) {
                        Some(hit) => best = (best.0 - 1, below, hit),
                        None => break,
                    }
                }
                Some(best)
            }
            None => {
                // Infeasible: escalate by doubling, exactly as the cold
                // search would from this rung.
                let mut i = start;
                let mut theta = theta;
                loop {
                    if theta >= theta_max {
                        break None;
                    }
                    theta = (theta * 2.0).min(theta_max);
                    i += 1;
                    if let Some(hit) = probe(&mut probes, theta) {
                        break Some((i, theta, hit));
                    }
                }
            }
        }
    } else {
        // Cold search: ϑ_min, 2ϑ_min, 4ϑ_min, …, capped at ϑ_max.
        let mut i = 0u32;
        let mut theta = theta_min;
        loop {
            if let Some(hit) = probe(&mut probes, theta) {
                break Some((i, theta, hit));
            }
            if theta >= theta_max {
                break None;
            }
            theta = (theta * 2.0).min(theta_max);
            i += 1;
        }
    };
    record_probes(ctx, probes);
    match accepted {
        Some((rung, theta, (route, aux_paths))) => {
            if net.full_conversion() {
                ctx.mincog_warm = Some((epoch, rung));
            }
            Ok(MinCogOutcome {
                threshold: theta + bump,
                aux_paths,
                route,
                probes,
            })
        }
        // ϑ exceeded the max bound without a pair: drop the request.
        None => Err(RoutingError::LoadSearchExhausted),
    }
}

/// Cold path: reports one threshold search's probe count.
fn record_probes<R: Recorder, T: Tracer>(ctx: &RouterCtx<R, T>, probes: usize) {
    if ctx.recorder().enabled() {
        ctx.recorder().add(Counter::ThresholdProbes, probes as u64);
        ctx.recorder().observe(Hist::ThresholdProbes, probes as u64);
    }
}

/// Exact minimum achievable **bottleneck load**: the smallest value `B*`
/// such that a disjoint pair exists using only links whose *prospective*
/// load `(U(e)+1)/N(e)` is at most `B*`. Found by binary search over the
/// discrete candidate set of prospective loads (feasibility is monotone).
///
/// `B*` is the §4.1 objective stated directly on what the paper actually
/// minimises — the network load the routed pair *creates* — rather than on
/// the admission threshold, which is only comparable up to a per-link
/// `1/N(e)` offset. The returned `threshold` field holds `B*` and the route
/// achieves it exactly. Used as the Theorem 3 baseline: the heuristic's
/// achieved bottleneck ([`route_bottleneck_load`]) divided by `B*` is the
/// measured ratio.
pub fn exact_min_load_threshold(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    a: f64,
) -> Result<MinCogOutcome, RoutingError> {
    exact_min_load_threshold_ctx(&mut RouterCtx::new(), net, state, s, t, a)
}

/// [`exact_min_load_threshold`] over a caller-owned [`RouterCtx`] (see
/// [`find_two_paths_mincog_ctx`] for what sharing buys).
pub fn exact_min_load_threshold_ctx<R: Recorder, T: Tracer>(
    ctx: &mut RouterCtx<R, T>,
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    a: f64,
) -> Result<MinCogOutcome, RoutingError> {
    if s == t {
        return Err(RoutingError::DegenerateRequest);
    }
    let mut candidates: Vec<f64> = (0..net.link_count())
        .map(EdgeId::from)
        .filter(|&e| !state.avail(net, e).is_empty())
        .map(|e| state.prospective_load(net, e))
        .filter(|p| p.is_finite())
        .collect();
    candidates.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    candidates.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
    if candidates.is_empty() {
        return Err(RoutingError::LoadSearchExhausted);
    }
    // Binary search the smallest feasible candidate bottleneck.
    let mut lo = 0usize;
    let mut hi = candidates.len();
    let mut probes = 0usize;
    let mut best: Option<(f64, RobustRoute, [Vec<EdgeId>; 2])> = None;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let b = candidates[mid];
        probes += 1;
        match probe_route(ctx, net, state, s, t, AuxSpec::g_c_prospective(a, b)) {
            Some((route, paths)) => {
                best = Some((b, route, paths));
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    record_probes(ctx, probes);
    let (threshold, route, aux_paths) = best.ok_or(RoutingError::LoadSearchExhausted)?;
    Ok(MinCogOutcome {
        threshold,
        aux_paths,
        route,
        probes,
    })
}

/// The bottleneck prospective load over the links a route actually uses —
/// the quantity the §4.1 objective minimises (what the network load becomes
/// on those links once the route is provisioned).
pub fn route_bottleneck_load(net: &WdmNetwork, state: &ResidualState, route: &RobustRoute) -> f64 {
    route
        .primary
        .edges()
        .chain(route.backup.edges())
        .map(|e| state.prospective_load(net, e))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::network::NetworkBuilder;
    use crate::wavelength::Wavelength;

    /// Three parallel 2-hop corridors 0 -> {1,2,3} -> 4, W = 4.
    fn corridors() -> WdmNetwork {
        let mut b = NetworkBuilder::new(4);
        let n: Vec<_> = (0..5)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        for mid in 1..=3 {
            b.add_link(n[0], n[mid], 1.0); // e_{2(mid-1)}
            b.add_link(n[mid], n[4], 1.0); // e_{2(mid-1)+1}
        }
        b.build()
    }

    #[test]
    fn prefers_unloaded_corridors() {
        let net = corridors();
        let mut st = ResidualState::fresh(&net);
        // Load corridor 0 heavily (3 of 4 channels on both its links).
        for l in 0..3 {
            st.occupy(&net, EdgeId(0), Wavelength(l)).unwrap();
            st.occupy(&net, EdgeId(1), Wavelength(l)).unwrap();
        }
        let out = find_two_paths_mincog(&net, &st, NodeId(0), NodeId(4), DEFAULT_CONGESTION_BASE)
            .unwrap();
        let used: Vec<EdgeId> = out
            .route
            .primary
            .edges()
            .chain(out.route.backup.edges())
            .collect();
        assert!(
            !used.contains(&EdgeId(0)) && !used.contains(&EdgeId(1)),
            "loaded corridor must be avoided: {used:?}"
        );
        assert!(out.route.is_edge_disjoint());
        // Bottleneck of the chosen links: fresh links -> 1/4.
        assert!((route_bottleneck_load(&net, &st, &out.route) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn escalates_threshold_when_forced() {
        let net = corridors();
        let mut st = ResidualState::fresh(&net);
        // Load ALL corridors to 2/4 except corridor 2's second hop at 3/4.
        for (e, k) in [(0u32, 2), (1, 2), (2, 2), (3, 2), (4, 2), (5, 3)] {
            for l in 0..k {
                st.occupy(&net, EdgeId(e), Wavelength(l)).unwrap();
            }
        }
        let out = find_two_paths_mincog(&net, &st, NodeId(0), NodeId(4), DEFAULT_CONGESTION_BASE)
            .unwrap();
        // ϑ must have escalated beyond the initial ϑ_min = 3/4.
        assert!(out.threshold >= 0.75);
        assert!(out.probes >= 1);
        assert!(out.route.is_edge_disjoint());
    }

    #[test]
    fn drops_request_when_no_pair_at_any_threshold() {
        // A single corridor cannot host two edge-disjoint paths.
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..3)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        b.add_link(n[0], n[1], 1.0);
        b.add_link(n[1], n[2], 1.0);
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let err = find_two_paths_mincog(&net, &st, NodeId(0), NodeId(2), 2.0).unwrap_err();
        assert_eq!(err, RoutingError::LoadSearchExhausted);
    }

    #[test]
    fn exact_matches_or_beats_heuristic_threshold() {
        let net = corridors();
        let mut st = ResidualState::fresh(&net);
        for l in 0..2 {
            st.occupy(&net, EdgeId(0), Wavelength(l)).unwrap();
        }
        st.occupy(&net, EdgeId(2), Wavelength(0)).unwrap();
        let heur = find_two_paths_mincog(&net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        let exact = exact_min_load_threshold(&net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        // Compare achieved bottleneck loads (uniform capacities here, so
        // Theorem 3's 3x applies; see the module docs).
        let b_heur = route_bottleneck_load(&net, &st, &heur.route);
        let b_exact = exact.threshold;
        assert!((route_bottleneck_load(&net, &st, &exact.route) - b_exact).abs() < 1e-9);
        assert!(b_exact <= b_heur + 1e-9);
        assert!(b_heur <= 3.0 * b_exact + 1e-9);
    }

    #[test]
    fn degenerate_request_rejected() {
        let net = corridors();
        let st = ResidualState::fresh(&net);
        assert_eq!(
            find_two_paths_mincog(&net, &st, NodeId(0), NodeId(0), 2.0).unwrap_err(),
            RoutingError::DegenerateRequest
        );
    }

    #[test]
    fn warm_start_same_epoch_is_bit_identical_with_fewer_probes() {
        let net = corridors();
        let mut st = ResidualState::fresh(&net);
        // Corridors 1 and 2 heavily loaded (3/4), corridor 0 empty: the
        // ladder 0.25 → 0.5 → 1.0 only becomes feasible at its last rung,
        // so the cold search spends 3 probes.
        for e in 2..6u32 {
            for l in 0..3 {
                st.occupy(&net, EdgeId(e), Wavelength(l)).unwrap();
            }
        }
        let mut ctx = RouterCtx::new();
        let cold =
            find_two_paths_mincog_ctx(&mut ctx, &net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        assert_eq!(cold.probes, 3);
        // Same residual epoch: the warm search probes the accepted rung
        // (feasible) and the rung below (infeasible) — 2 probes, same
        // result bit-for-bit.
        let warm =
            find_two_paths_mincog_ctx(&mut ctx, &net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        assert_eq!(warm.threshold, cold.threshold);
        assert_eq!(warm.route, cold.route);
        assert_eq!(warm.aux_paths, cold.aux_paths);
        assert!(
            warm.probes < cold.probes,
            "warm {} cold {}",
            warm.probes,
            cold.probes
        );
    }

    #[test]
    fn warm_start_does_not_leak_across_epochs() {
        let net = corridors();
        let mut st = ResidualState::fresh(&net);
        for e in 2..6u32 {
            for l in 0..3 {
                st.occupy(&net, EdgeId(e), Wavelength(l)).unwrap();
            }
        }
        let mut ctx = RouterCtx::new();
        let _ = find_two_paths_mincog_ctx(&mut ctx, &net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        // Mutate the state: a new epoch. The warm slot must be ignored and
        // the outcome must equal a fresh context's.
        st.occupy(&net, EdgeId(0), Wavelength(3)).unwrap();
        let stale_ctx =
            find_two_paths_mincog_ctx(&mut ctx, &net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        let fresh = find_two_paths_mincog(&net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        assert_eq!(stale_ctx.threshold, fresh.threshold);
        assert_eq!(stale_ctx.route, fresh.route);
        assert_eq!(stale_ctx.probes, fresh.probes);
    }

    #[test]
    fn bottleneck_load_is_max_over_route_links() {
        let net = corridors();
        let mut st = ResidualState::fresh(&net);
        st.occupy(&net, EdgeId(2), Wavelength(0)).unwrap();
        let out = exact_min_load_threshold(&net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        let b = route_bottleneck_load(&net, &st, &out.route);
        assert!((0.25..=1.0).contains(&b));
    }
}
