//! Incremental auxiliary-graph engine: the zero-allocation counterpart of
//! [`AuxGraph::build`](crate::aux_graph::AuxGraph::build).
//!
//! `AuxGraph::build` reconstructs the full auxiliary graph — nodes, arcs,
//! `O(W²)` conversion averages — for every request and every threshold
//! probe. [`AuxEngine`] splits that work by change frequency:
//!
//! * **Skeleton (once per network × spec family).** Edge-nodes for *all*
//!   physical links, their traversal arcs, every conversion arc that could
//!   ever exist (pairs `(e_in, e_out)` with at least one allowed conversion
//!   under the links' *full* wavelength sets — availability only shrinks
//!   those sets, so no other pair can ever appear), and both terminal tap
//!   slots per link. Arcs are laid out in the same relative order as the
//!   scratch builder emits them, which makes the enabled subset a
//!   subsequence of the scratch graph's arc list.
//! * **Weight refresh (per dirty link).** [`ResidualState`] stamps every
//!   mutated link with its monotone change clock; [`AuxEngine::sync`]
//!   recomputes traversal weights, conversion averages and admission only
//!   for links stamped after the engine's last sync. The summation loops are
//!   verbatim copies of the scratch builder's, so refreshed weights are
//!   bit-identical to a from-scratch build.
//! * **Admission mask (per threshold change).** Thresholds affect only
//!   which links are admitted, never any weight, so
//!   [`AuxEngine::set_threshold`] flags the mask for an `O(m)` admission
//!   recompute without touching weights — the fast path for MinCog's
//!   geometric escalation and the exact binary search.
//! * **Tap retargeting (per request).** Changing `(s, t)` flips the enabled
//!   bits of the old and new terminals' tap arcs; nothing else moves.
//!
//! Because disabled arcs are filtered (not removed), searches run over a
//! graph whose enabled arcs appear in the same relative order with the same
//! weights as the scratch graph's arcs, and Dijkstra/Suurballe tie-breaking
//! depends only on that order and the weights — routes are identical, not
//! merely equal-cost (`tests/engine_differential.rs` pins this).
//!
//! ### Staleness contract
//!
//! The engine trusts the state's change clocks. Syncing one engine against
//! *independently mutated clones* of a state can alias clock values and
//! miss updates; call [`AuxEngine::invalidate`] (or use one engine per
//! state lineage) in that situation. Syncing against a state whose clock
//! went *backwards* (a fresh or deserialized state) is detected and handled
//! by a full refresh.

use crate::aux_graph::{AuxArc, AuxEdgeData, AuxNode, AuxSpec, AuxWeights, ThresholdBasis};
use crate::network::{ResidualState, WdmNetwork};
use wdm_graph::suurballe::DisjointPair;
use wdm_graph::{DiGraph, EdgeId, FlatView, IntWeights, NodeId, Path, Potentials, SearchArena};

/// Fixed-point scale for integer weight certification: weights that are
/// exact multiples of `2^-SCALE_SHIFT` get a `u64` key `weight << SCALE_SHIFT`.
/// 1/64 covers every dyadic cost the scratch builder can produce from
/// dyadic link/conversion costs (uniform averages of dyadics with power-of-two
/// divisors stay dyadic); congestion-exponential weights never certify and
/// fall back to the f64 search path.
pub const SCALE_SHIFT: u32 = 6;

/// Upper bound on a certified per-arc key. Keys above this (weights ≥ 1024)
/// de-certify the arc: the bucket queue's span is `max_key + 1 + max π`, so
/// unbounded keys would trade heap ops for unbounded bucket scans — and the
/// exactness argument needs headroom below 2^53 for summed distances.
const KEY_CAP: u64 = 1 << 16;
use wdm_telemetry::{
    CacheOutcome, Counter, Hist, NoopRecorder, NoopTracer, Phase, Recorder, Tracer,
};

/// What one [`AuxEngine::sync`] call actually recomputed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncStats {
    /// Every link's weights were refreshed (first sync, invalidation, or a
    /// state-clock regression).
    pub full: bool,
    /// Number of links whose weights were recomputed this sync.
    pub links_refreshed: u32,
    /// The admission mask was recomputed for all links (threshold change).
    pub remasked: bool,
}

/// One potential conversion arc `v_in^{e_in} → v_out^{e_out}` of the
/// skeleton.
#[derive(Debug, Clone, Copy)]
struct ConvSlot {
    /// The skeleton arc id.
    arc: EdgeId,
    /// The physical node the conversion happens at.
    node: NodeId,
    /// Incoming physical link.
    ein: EdgeId,
    /// Outgoing physical link.
    eout: EdgeId,
    /// `K_v`: allowed conversion pairs under *current* availability (0 ⇒
    /// the arc is disabled regardless of admission).
    k: u32,
}

/// Incremental auxiliary-graph engine. See the module docs.
#[derive(Debug, Clone)]
pub struct AuxEngine {
    spec: AuxSpec,
    graph: DiGraph<AuxNode, AuxEdgeData>,
    source: NodeId,
    sink: NodeId,
    /// Per physical link: its skeleton arcs (always present).
    trav_arc: Vec<EdgeId>,
    src_tap: Vec<EdgeId>,
    dst_tap: Vec<EdgeId>,
    /// All potential conversion arcs, in skeleton emission order.
    conv: Vec<ConvSlot>,
    /// Per physical link: indices into `conv` of the slots touching it.
    conv_of_link: Vec<Vec<u32>>,
    /// Per skeleton arc: participates in the current auxiliary graph.
    enabled: Vec<bool>,
    /// Per physical link: admitted under the current state + threshold.
    admitted: Vec<bool>,
    /// `(node_count, link_count)` of the network the skeleton was built for.
    fingerprint: (usize, usize),
    /// State change clock at the last sync.
    synced_clock: u64,
    ever_synced: bool,
    /// Set by [`AuxEngine::set_threshold`]: admission of *every* link must
    /// be recomputed on the next sync.
    mask_stale: bool,
    cur_s: Option<NodeId>,
    cur_t: Option<NodeId>,
    /// Dedupes conversion-weight refreshes when both endpoint links are
    /// dirty in the same sync pass.
    conv_stamp: Vec<u64>,
    pass: u64,

    // ---- CSR flat mirror (the layout the searches actually traverse) ----
    /// Row offsets per aux node (`len == node_count + 1`).
    csr_off: Vec<u32>,
    /// Destination aux node per CSR slot.
    csr_head: Vec<u32>,
    /// Skeleton arc id per CSR slot.
    csr_arc: Vec<u32>,
    /// CSR slot per arc id (inverse of `csr_arc`).
    arc_slot: Vec<u32>,
    /// Tail / head aux node per arc id.
    arc_src: Vec<u32>,
    arc_dst: Vec<u32>,
    /// Weight mirror per arc id (kept bit-identical to the graph payload).
    arc_weight: Vec<f64>,
    /// Certified integer key per arc id (valid only while `arc_exact`).
    arc_key: Vec<u64>,
    /// Whether the arc's weight is exactly `arc_key / 2^SCALE_SHIFT`.
    arc_exact: Vec<bool>,
    /// Slot-ordered mirrors of `arc_weight` / `enabled` / `arc_key`: the
    /// relaxation loops walk slots sequentially, so keeping their operands
    /// slot-contiguous spares an indirection per scanned arc.
    slot_weight: Vec<f64>,
    slot_enabled: Vec<bool>,
    slot_key: Vec<u64>,
    /// Number of arcs whose weight failed certification; the integer search
    /// engages only at zero.
    inexact: u32,
    /// Monotone upper bound on certified keys ever written.
    max_key: u64,

    // ---- warm Johnson potentials (opt-in) ----
    /// Whether searches may carry potentials across requests.
    warm: bool,
    /// The carried potentials (empty until the first warm search adopts).
    pot: Potentials,
    /// Arcs whose feasibility constraint may have tightened since the last
    /// repair (weight decrease or disabled→enabled flip).
    pi_events: Vec<u32>,
    /// Worklist buffer for `pi_repair`.
    pi_work: Vec<u32>,
}

impl AuxEngine {
    /// Builds the skeleton for `net` under `spec`. No state is consulted;
    /// call [`AuxEngine::sync`] before searching.
    pub fn new(net: &WdmNetwork, spec: AuxSpec) -> Self {
        let m = net.link_count();
        let mut graph: DiGraph<AuxNode, AuxEdgeData> = DiGraph::with_capacity(2 * m + 2, 4 * m);
        let source = graph.add_node(AuxNode::Source);
        let sink = graph.add_node(AuxNode::Sink);

        // Edge-nodes and traversal arcs for every link, in link order —
        // matching the scratch builder's emission order over its admitted
        // subset.
        let mut out_node = Vec::with_capacity(m);
        let mut in_node = Vec::with_capacity(m);
        let mut trav_arc = Vec::with_capacity(m);
        for ei in 0..m {
            let e = EdgeId::from(ei);
            let uo = graph.add_node(AuxNode::OutNode(e));
            let vi = graph.add_node(AuxNode::InNode(e));
            out_node.push(uo);
            in_node.push(vi);
            trav_arc.push(graph.add_edge(
                uo,
                vi,
                AuxEdgeData {
                    kind: AuxArc::Traversal(e),
                    weight: 0.0,
                },
            ));
        }

        // Potential conversion arcs: same (node, e_in, e_out) loop order as
        // the scratch builder, existence decided on the links' full
        // wavelength sets. Availability is a subset of those sets and the
        // conversion table is static, so a pair with no allowed conversion
        // here can never gain one.
        let mut conv: Vec<ConvSlot> = Vec::new();
        let mut conv_of_link: Vec<Vec<u32>> = vec![Vec::new(); m];
        for v in net.graph().node_ids() {
            let table = net.conversion(v);
            for &ein in net.graph().in_edges(v) {
                let lambda_in = net.lambda(ein);
                for &eout in net.graph().out_edges(v) {
                    let lambda_out = net.lambda(eout);
                    let possible = lambda_in
                        .iter()
                        .any(|la| lambda_out.iter().any(|lb| table.allows(la, lb)));
                    if !possible {
                        continue;
                    }
                    let arc = graph.add_edge(
                        in_node[ein.index()],
                        out_node[eout.index()],
                        AuxEdgeData {
                            kind: AuxArc::Conversion(v),
                            weight: 0.0,
                        },
                    );
                    let idx = conv.len() as u32;
                    conv.push(ConvSlot {
                        arc,
                        node: v,
                        ein,
                        eout,
                        k: 0,
                    });
                    conv_of_link[ein.index()].push(idx);
                    if eout != ein {
                        conv_of_link[eout.index()].push(idx);
                    }
                }
            }
        }

        // Tap slots for every link; the scratch builder emits source taps
        // (in link order) before sink taps, so both groups stay ordered.
        let mut src_tap = Vec::with_capacity(m);
        for &uo in &out_node {
            src_tap.push(graph.add_edge(
                source,
                uo,
                AuxEdgeData {
                    kind: AuxArc::Tap,
                    weight: 0.0,
                },
            ));
        }
        let mut dst_tap = Vec::with_capacity(m);
        for &vi in &in_node {
            dst_tap.push(graph.add_edge(
                vi,
                sink,
                AuxEdgeData {
                    kind: AuxArc::Tap,
                    weight: 0.0,
                },
            ));
        }

        let edge_count = graph.edge_count();
        let conv_count = conv.len();

        // CSR mirror of the finished skeleton. The skeleton never changes
        // shape, so this is built once; weights/enabled bits are per-arc
        // array updates from here on. Per-node slots inherit the ascending
        // arc-id order of `out_edges` (arcs are appended in id order), which
        // is what keeps flat relaxation order — and every Dijkstra tie —
        // identical to the pointer-based search.
        let n_aux = graph.node_count();
        let mut csr_off = Vec::with_capacity(n_aux + 1);
        let mut csr_head = Vec::with_capacity(edge_count);
        let mut csr_arc = Vec::with_capacity(edge_count);
        for v in graph.node_ids() {
            csr_off.push(csr_head.len() as u32);
            for &e in graph.out_edges(v) {
                csr_head.push(graph.dst(e).index() as u32);
                csr_arc.push(e.index() as u32);
            }
        }
        csr_off.push(csr_head.len() as u32);
        let mut arc_slot = vec![0u32; edge_count];
        for (slot, &a) in csr_arc.iter().enumerate() {
            arc_slot[a as usize] = slot as u32;
        }
        let mut arc_src = vec![0u32; edge_count];
        let mut arc_dst = vec![0u32; edge_count];
        for e in graph.edge_ids() {
            arc_src[e.index()] = graph.src(e).index() as u32;
            arc_dst[e.index()] = graph.dst(e).index() as u32;
        }

        Self {
            spec,
            graph,
            source,
            sink,
            trav_arc,
            src_tap,
            dst_tap,
            conv,
            conv_of_link,
            enabled: vec![false; edge_count],
            admitted: vec![false; m],
            fingerprint: (net.graph().node_count(), net.link_count()),
            synced_clock: 0,
            ever_synced: false,
            mask_stale: false,
            cur_s: None,
            cur_t: None,
            conv_stamp: vec![0; conv_count],
            pass: 0,
            csr_off,
            csr_head,
            csr_arc,
            arc_slot,
            arc_src,
            arc_dst,
            // All skeleton weights start at 0.0 == key 0, which certifies.
            arc_weight: vec![0.0; edge_count],
            arc_key: vec![0; edge_count],
            arc_exact: vec![true; edge_count],
            slot_weight: vec![0.0; edge_count],
            slot_enabled: vec![false; edge_count],
            slot_key: vec![0; edge_count],
            inexact: 0,
            max_key: 0,
            warm: false,
            pot: Potentials::default(),
            pi_events: Vec::new(),
            pi_work: Vec::new(),
        }
    }

    /// Whether this engine's skeleton was built for (a network shaped like)
    /// `net`. A cheap guard, not a content hash: use one engine per network.
    pub fn matches(&self, net: &WdmNetwork) -> bool {
        self.fingerprint == (net.graph().node_count(), net.link_count())
    }

    /// The active spec (threshold updates via [`AuxEngine::set_threshold`]
    /// are reflected here).
    pub fn spec(&self) -> AuxSpec {
        self.spec
    }

    /// Updates the admission threshold. Weights are unaffected by `ϑ`, so
    /// this only marks the admission mask stale; the next [`AuxEngine::sync`]
    /// recomputes admission for all links in `O(m)` without touching any
    /// `O(W²)` conversion sum.
    pub fn set_threshold(&mut self, threshold: Option<f64>) {
        if self.spec.threshold != threshold {
            self.spec.threshold = threshold;
            self.mask_stale = true;
        }
    }

    /// Forgets all synced state, forcing the next [`AuxEngine::sync`] to do
    /// a full refresh. Required when switching the engine to a different
    /// [`ResidualState`] *lineage* (e.g. an independently mutated clone)
    /// whose change clocks may alias the previous one's.
    pub fn invalidate(&mut self) {
        self.ever_synced = false;
    }

    /// Brings the engine in line with `state` and the request `(s, t)`:
    /// refreshes weights and admission of links mutated since the last
    /// sync (all links on first use, after [`AuxEngine::invalidate`], or
    /// when the state's clock moved backwards), reapplies the admission
    /// mask if the threshold changed, and retargets the terminal taps.
    /// Returns what was recomputed (telemetry's cache-outcome signal).
    pub fn sync(
        &mut self,
        net: &WdmNetwork,
        state: &ResidualState,
        s: NodeId,
        t: NodeId,
    ) -> SyncStats {
        debug_assert!(self.matches(net), "engine used with a different network");
        let full = !self.ever_synced || state.change_clock() < self.synced_clock;
        let mut stats = SyncStats {
            full,
            links_refreshed: 0,
            remasked: self.mask_stale,
        };
        // A full refresh or a whole-mask recompute floods the engine with
        // weight/enable transitions; carrying potentials across one would
        // require trusting the very bookkeeping the reset discards. The
        // all-zero potential is always feasible, so reset (satellite of the
        // `ResidualState`-clock-restart hazard: all-dirty ⇒ full π rebuild).
        let reset_pi = self.warm && (full || self.mask_stale);
        if full || self.mask_stale || state.change_clock() != self.synced_clock {
            self.pass += 1;
            let m = net.link_count();
            for ei in 0..m {
                let e = EdgeId::from(ei);
                let dirty = full || state.link_change_clock(e) > self.synced_clock;
                if dirty {
                    self.refresh_weights(net, state, e);
                    stats.links_refreshed += 1;
                }
                if dirty || self.mask_stale {
                    self.refresh_admission(net, state, e);
                }
            }
            self.mask_stale = false;
            self.synced_clock = state.change_clock();
            self.ever_synced = true;
        }
        if self.warm {
            if reset_pi || self.inexact > 0 {
                self.pot.reset(self.graph.node_count());
                self.pi_events.clear();
            } else {
                self.pi_repair();
            }
        }
        self.retarget(net, s, t);
        stats
    }

    /// Writes an arc weight into both the graph payload and the flat mirror,
    /// maintaining the integer certification and (when warm) the potential
    /// feasibility event queue.
    fn set_arc_weight(&mut self, arc: EdgeId, w: f64) {
        let i = arc.index();
        self.graph.edge_mut(arc).weight = w;
        let old = self.arc_weight[i];
        self.arc_weight[i] = w;
        let slot = self.arc_slot[i] as usize;
        self.slot_weight[slot] = w;
        let scaled = w * (1u64 << SCALE_SHIFT) as f64;
        // NaN/negative/huge all fail one of these (NaN.fract() is NaN).
        let exact = scaled >= 0.0 && scaled <= KEY_CAP as f64 && scaled.fract() == 0.0;
        if exact {
            let key = scaled as u64;
            self.arc_key[i] = key;
            self.slot_key[slot] = key;
            if key > self.max_key {
                self.max_key = key;
            }
        }
        if exact != self.arc_exact[i] {
            self.arc_exact[i] = exact;
            if exact {
                self.inexact -= 1;
            } else {
                self.inexact += 1;
            }
        }
        if self.warm && w < old {
            // A weight decrease can break π(v) ≤ π(u) + w.
            self.pi_events.push(i as u32);
        }
    }

    /// Recomputes the traversal weight of `e` and the conversion weights of
    /// every arc touching `e`, with the scratch builder's exact formulas
    /// (same summation loops ⇒ bit-identical results).
    fn refresh_weights(&mut self, net: &WdmNetwork, state: &ResidualState, e: EdgeId) {
        let ei = e.index();
        let avail = state.avail(net, e);
        let weight = if avail.is_empty() {
            // Never enabled (empty availability fails admission under every
            // threshold); avoid the 0/0 in the average formulas.
            0.0
        } else {
            match self.spec.weights {
                AuxWeights::AverageCost => {
                    avail.iter().map(|l| net.link_cost(e, l)).sum::<f64>() / avail.count() as f64
                }
                AuxWeights::AverageCostOverN => {
                    avail.iter().map(|l| net.link_cost(e, l)).sum::<f64>() / net.capacity(e) as f64
                }
                AuxWeights::CongestionExp { a } => {
                    let n = net.capacity(e) as f64;
                    let u = state.used_count(e) as f64;
                    a.powf((u + 1.0) / n) - a.powf(u / n)
                }
            }
        };
        self.set_arc_weight(self.trav_arc[ei], weight);
        for i in 0..self.conv_of_link[ei].len() {
            let ci = self.conv_of_link[ei][i] as usize;
            if self.conv_stamp[ci] != self.pass {
                self.conv_stamp[ci] = self.pass;
                self.refresh_conv(net, state, ci);
            }
        }
    }

    /// Recomputes one conversion arc's `K_v` and average cost.
    fn refresh_conv(&mut self, net: &WdmNetwork, state: &ResidualState, ci: usize) {
        let slot = self.conv[ci];
        let table = net.conversion(slot.node);
        let avail_in = state.avail(net, slot.ein);
        let avail_out = state.avail(net, slot.eout);
        let mut total = 0.0;
        let mut k = 0usize;
        for la in avail_in.iter() {
            for lb in avail_out.iter() {
                if let Some(c) = table.cost(la, lb) {
                    total += c;
                    k += 1;
                }
            }
        }
        self.conv[ci].k = k as u32;
        if k > 0 {
            let w = match self.spec.weights {
                AuxWeights::CongestionExp { .. } => 0.0,
                _ => total / k as f64,
            };
            self.set_arc_weight(slot.arc, w);
        }
        self.update_conv_enabled(ci);
    }

    /// Writes an arc's enabled bit into both the arc-indexed array and its
    /// slot-ordered mirror.
    #[inline]
    fn set_enabled(&mut self, idx: usize, en: bool) {
        self.enabled[idx] = en;
        self.slot_enabled[self.arc_slot[idx] as usize] = en;
    }

    /// Recomputes admission of `e` and the enabled bits of the arcs that
    /// depend on it.
    fn refresh_admission(&mut self, net: &WdmNetwork, state: &ResidualState, e: EdgeId) {
        let ei = e.index();
        let adm = if state.avail(net, e).is_empty() {
            false
        } else {
            match (self.spec.threshold, self.spec.basis) {
                (None, _) => true,
                (Some(th), ThresholdBasis::CurrentLoad) => state.load(net, e) < th - 1e-12,
                (Some(th), ThresholdBasis::ProspectiveLoad) => {
                    state.prospective_load(net, e) <= th + 1e-12
                }
            }
        };
        self.admitted[ei] = adm;
        let ti = self.trav_arc[ei].index();
        if self.warm && adm && !self.enabled[ti] {
            // Newly enabled arc: its feasibility constraint comes into force.
            self.pi_events.push(ti as u32);
        }
        self.set_enabled(ti, adm);
        // Tap constraints are re-derived from scratch each warm solve
        // (`warm_prepare`), so their flips need no events.
        let src_en = adm && self.cur_s == Some(net.graph().src(e));
        self.set_enabled(self.src_tap[ei].index(), src_en);
        let dst_en = adm && self.cur_t == Some(net.graph().dst(e));
        self.set_enabled(self.dst_tap[ei].index(), dst_en);
        for i in 0..self.conv_of_link[ei].len() {
            let ci = self.conv_of_link[ei][i] as usize;
            self.update_conv_enabled(ci);
        }
    }

    /// A conversion arc participates iff both endpoint links are admitted
    /// and at least one conversion is allowed under current availability.
    fn update_conv_enabled(&mut self, ci: usize) {
        let slot = self.conv[ci];
        let en = slot.k > 0 && self.admitted[slot.ein.index()] && self.admitted[slot.eout.index()];
        let idx = slot.arc.index();
        if self.warm && en && !self.enabled[idx] {
            self.pi_events.push(idx as u32);
        }
        self.set_enabled(idx, en);
    }

    /// Moves the terminal taps to `(s, t)`.
    fn retarget(&mut self, net: &WdmNetwork, s: NodeId, t: NodeId) {
        if self.cur_s != Some(s) {
            if let Some(old) = self.cur_s {
                for &e in net.graph().out_edges(old) {
                    self.set_enabled(self.src_tap[e.index()].index(), false);
                }
            }
            for &e in net.graph().out_edges(s) {
                self.set_enabled(self.src_tap[e.index()].index(), self.admitted[e.index()]);
            }
            self.cur_s = Some(s);
        }
        if self.cur_t != Some(t) {
            if let Some(old) = self.cur_t {
                for &e in net.graph().in_edges(old) {
                    self.set_enabled(self.dst_tap[e.index()].index(), false);
                }
            }
            for &e in net.graph().in_edges(t) {
                self.set_enabled(self.dst_tap[e.index()].index(), self.admitted[e.index()]);
            }
            self.cur_t = Some(t);
        }
    }

    /// Restores the potential feasibility invariant after queued weight
    /// decreases / arc enables by propagating upper-bound decreases forward
    /// along the CSR (lowering `π(v)` can only break constraints on arcs
    /// *out of* `v`). Budgeted: a change burst whose repair would cost more
    /// than a few sweeps resets to the all-zero potential instead — always
    /// feasible, merely cold.
    fn pi_repair(&mut self) {
        if self.pi_events.is_empty() {
            return;
        }
        if self.pot.pi.is_empty() {
            // Nothing adopted yet; zeros are feasible under any weights.
            self.pi_events.clear();
            return;
        }
        let n = self.graph.node_count();
        debug_assert_eq!(self.pot.pi.len(), n);
        for k in 0..self.pi_events.len() {
            let a = self.pi_events[k] as usize;
            if !self.enabled[a] {
                continue;
            }
            let (u, v) = (self.arc_src[a] as usize, self.arc_dst[a] as usize);
            let bound = self.pot.pi[u] + self.arc_key[a];
            if self.pot.pi[v] > bound {
                self.pot.pi[v] = bound;
                self.pi_work.push(v as u32);
            }
        }
        self.pi_events.clear();
        let mut budget = 4 * n as u64;
        while let Some(x) = self.pi_work.pop() {
            let x = x as usize;
            for slot in self.csr_off[x] as usize..self.csr_off[x + 1] as usize {
                if budget == 0 {
                    self.pi_work.clear();
                    self.pot.reset(n);
                    return;
                }
                budget -= 1;
                let a = self.csr_arc[slot] as usize;
                if !self.enabled[a] {
                    continue;
                }
                let v = self.csr_head[slot] as usize;
                let bound = self.pot.pi[x] + self.arc_key[a];
                if self.pot.pi[v] > bound {
                    self.pot.pi[v] = bound;
                    self.pi_work.push(v as u32);
                }
            }
        }
    }

    /// Re-derives the terminal potentials for the current `(s, t)` taps.
    /// The aux source has no in-arcs, so *raising* `π(source)` to the max
    /// enabled src-tap head keeps every constraint satisfiable without
    /// cascading; symmetrically the sink has no out-arcs, so *lowering*
    /// `π(sink)` to the min enabled dst-tap tail is safe. Call after
    /// [`AuxEngine::sync`] and before a warm search.
    pub fn warm_prepare(&mut self, net: &WdmNetwork) {
        if !self.warm || self.pot.pi.is_empty() {
            return;
        }
        let (Some(s), Some(t)) = (self.cur_s, self.cur_t) else {
            return;
        };
        let mut ps = 0u64;
        for &e in net.graph().out_edges(s) {
            let tap = self.src_tap[e.index()].index();
            if self.enabled[tap] {
                ps = ps.max(self.pot.pi[self.arc_dst[tap] as usize]);
            }
        }
        self.pot.pi[self.source.index()] = ps;
        let mut pt = u64::MAX;
        for &e in net.graph().in_edges(t) {
            let tap = self.dst_tap[e.index()].index();
            if self.enabled[tap] {
                pt = pt.min(self.pot.pi[self.arc_src[tap] as usize]);
            }
        }
        // No enabled dst tap ⇒ the sink has no in-arcs at all, so its
        // potential is unconstrained.
        self.pot.pi[self.sink.index()] = if pt == u64::MAX { 0 } else { pt };
    }

    /// Opts this engine in/out of carrying Johnson potentials across
    /// requests (off by default). Warm starts keep every total cost
    /// bit-identical under certified integer weights but may select a
    /// different equal-cost optimum, so differential oracles leave this off.
    pub fn set_warm_potentials(&mut self, on: bool) {
        if self.warm != on {
            self.warm = on;
            self.pot = Potentials::default();
            self.pi_events.clear();
            self.pi_work.clear();
        }
    }

    /// Whether warm potentials are enabled.
    #[inline]
    pub fn warm_potentials(&self) -> bool {
        self.warm
    }

    /// The carried potentials (test observability).
    pub fn potentials(&self) -> &Potentials {
        &self.pot
    }

    /// Whether every arc weight currently certifies as an exact multiple of
    /// `2^-SCALE_SHIFT` within the key cap — the precondition for the
    /// integer/bucket search path.
    #[inline]
    pub fn int_certified(&self) -> bool {
        self.inexact == 0
    }

    /// The flat CSR view of the skeleton (weights and enabled bits reflect
    /// the last [`AuxEngine::sync`]).
    pub fn flat_view(&self) -> FlatView<'_> {
        FlatView {
            offsets: &self.csr_off,
            heads: &self.csr_head,
            slot_arc: &self.csr_arc,
            arc_slot: &self.arc_slot,
            src: &self.arc_src,
            dst: &self.arc_dst,
            weight: &self.arc_weight,
            enabled: &self.enabled,
            slot_weight: &self.slot_weight,
            slot_enabled: &self.slot_enabled,
        }
    }

    /// Split-borrow accessor for the search call: the flat view and (when
    /// certified) the integer keys, alongside a mutable borrow of the
    /// potentials for warm adoption.
    pub fn flat_parts(&mut self) -> (FlatView<'_>, Option<IntWeights<'_>>, &mut Potentials) {
        let int = (self.inexact == 0).then_some(IntWeights {
            key: &self.slot_key,
            scale_shift: SCALE_SHIFT,
            max_key: self.max_key,
        });
        let view = FlatView {
            offsets: &self.csr_off,
            heads: &self.csr_head,
            slot_arc: &self.csr_arc,
            arc_slot: &self.arc_slot,
            src: &self.arc_src,
            dst: &self.arc_dst,
            weight: &self.arc_weight,
            enabled: &self.enabled,
            slot_weight: &self.slot_weight,
            slot_enabled: &self.slot_enabled,
        };
        (view, int, &mut self.pot)
    }

    /// The skeleton graph. Search it with the [`AuxEngine::enabled`] filter;
    /// disabled arcs carry stale weights.
    #[inline]
    pub fn graph(&self) -> &DiGraph<AuxNode, AuxEdgeData> {
        &self.graph
    }

    /// `s'`.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// `t''`.
    #[inline]
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Weight of skeleton arc `ae` (meaningful only while enabled).
    #[inline]
    pub fn weight(&self, ae: EdgeId) -> f64 {
        self.graph.edge(ae).weight
    }

    /// Whether skeleton arc `ae` is part of the current auxiliary graph.
    #[inline]
    pub fn enabled(&self, ae: EdgeId) -> bool {
        self.enabled[ae.index()]
    }

    /// Maps a path over the skeleton back to the physical links it
    /// traverses (in order).
    pub fn physical_edges(&self, path: &Path) -> Vec<EdgeId> {
        path.edges
            .iter()
            .filter_map(|&ae| match self.graph.edge(ae).kind {
                AuxArc::Traversal(pe) => Some(pe),
                _ => None,
            })
            .collect()
    }

    /// Number of links admitted at the last sync.
    pub fn admitted_links(&self) -> usize {
        self.admitted.iter().filter(|&&a| a).count()
    }
}

/// Per-request accumulator of what the engines and searches did, reset by
/// [`RouterCtx::begin_request`]. One request can issue many disjoint-pair
/// searches (threshold probes), so these are sums over the request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Auxiliary-graph skeletons built from scratch.
    pub skeleton_builds: u32,
    /// Engine syncs that refreshed every link's weights.
    pub full_refreshes: u32,
    /// Engine syncs that refreshed only dirty links.
    pub dirty_refreshes: u32,
    /// Total links refreshed across the dirty syncs.
    pub dirty_links: u32,
    /// Engine syncs with nothing to recompute (pure skeleton reuse).
    pub fast_syncs: u32,
    /// Suurballe searches executed.
    pub searches: u32,
    /// Wall-clock nanoseconds spent inside those searches (sync + Suurballe).
    pub search_ns: u64,
}

impl RequestStats {
    /// Collapses the request's engine activity into the trace taxonomy.
    pub fn cache_outcome(&self) -> CacheOutcome {
        if self.skeleton_builds > 0 || self.full_refreshes > 0 {
            CacheOutcome::FullRebuild
        } else if self.dirty_refreshes > 0 {
            CacheOutcome::DirtyRefresh {
                links: self.dirty_links,
            }
        } else {
            CacheOutcome::SkeletonReuse
        }
    }
}

/// Persistent routing context: one engine per auxiliary-graph family plus
/// the shared [`SearchArena`]. Hold one of these per network wherever
/// requests are routed repeatedly (the simulator owns one per run) and the
/// skeleton/refresh machinery amortises across every request; one-shot
/// entry points create a throwaway context internally.
///
/// The context is generic over a [`Recorder`] and a [`Tracer`]. The
/// defaults [`NoopRecorder`] / [`NoopTracer`] monomorphise all
/// instrumentation away (every recording site is gated on an
/// `#[inline(always)] false` `enabled()`), so the uninstrumented hot path
/// is unchanged; [`RouterCtx::with_recorder`] swaps in a live recorder
/// such as `&wdm_telemetry::TelemetrySink`, and
/// [`RouterCtx::with_recorder_and_tracer`] additionally attaches a span
/// buffer that times the pipeline phases (aux refresh, the two Suurballe
/// passes, physical map-back, refinement) per request.
#[derive(Debug, Clone, Default)]
pub struct RouterCtx<R: Recorder = NoopRecorder, T: Tracer = NoopTracer> {
    /// Reusable Dijkstra/Suurballe buffers.
    pub arena: SearchArena,
    recorder: R,
    tracer: T,
    stats: RequestStats,
    /// Arena alloc-event total at the last [`RouterCtx::begin_request`].
    arena_allocs_at_begin: u64,
    g_prime: Option<AuxEngine>,
    g_c: Option<AuxEngine>,
    g_c_prospective: Option<AuxEngine>,
    g_rc: Option<AuxEngine>,
    g_rc_printed: Option<AuxEngine>,
    /// Opt-in: engines carry Johnson potentials across requests.
    warm: bool,
    /// MinCog warm-start memory: `(residual epoch, accepted ladder index)`
    /// of the last §4.1 threshold search (see `mincog::find_two_paths_mincog_ctx`).
    pub(crate) mincog_warm: Option<(u64, u32)>,
}

impl RouterCtx {
    /// An uninstrumented context (the [`NoopRecorder`] / [`NoopTracer`]
    /// defaults).
    pub fn new() -> Self {
        Self::default()
    }
}

impl<R: Recorder> RouterCtx<R, NoopTracer> {
    /// A context whose searches report into `recorder` (no span tracing).
    pub fn with_recorder(recorder: R) -> Self {
        Self::with_recorder_and_tracer(recorder, NoopTracer)
    }
}

impl<R: Recorder, T: Tracer> RouterCtx<R, T> {
    /// A context whose searches report into `recorder` and whose pipeline
    /// phases are timed into `tracer`.
    pub fn with_recorder_and_tracer(recorder: R, tracer: T) -> Self {
        Self {
            arena: SearchArena::new(),
            recorder,
            tracer,
            stats: RequestStats::default(),
            arena_allocs_at_begin: 0,
            g_prime: None,
            g_c: None,
            g_c_prospective: None,
            g_rc: None,
            g_rc_printed: None,
            warm: false,
            mincog_warm: None,
        }
    }

    /// Opts every engine in this context into warm Johnson potentials
    /// (off by default). Warm starts never change a pair's total cost under
    /// the certified integer weights, but may pick a different equal-cost
    /// optimum — leave off when exact route reproducibility against a cold
    /// context matters.
    pub fn set_warm_potentials(&mut self, on: bool) {
        self.warm = on;
        for e in [
            &mut self.g_prime,
            &mut self.g_c,
            &mut self.g_c_prospective,
            &mut self.g_rc,
            &mut self.g_rc_printed,
        ]
        .into_iter()
        .flatten()
        {
            e.set_warm_potentials(on);
        }
    }

    /// A cheap clone for a speculative worker: engines and arena buffers are
    /// carried over (skeletons stay warm), but every engine is invalidated
    /// so the first sync against the worker's snapshot re-weights from that
    /// state instead of trusting the parent's change clocks, and warm-start
    /// memory tied to the parent's lineage is dropped. A live span buffer
    /// clones *empty* (sharing the clock domain), so the worker records its
    /// own spans from ordinal zero.
    pub fn fork(&self) -> Self
    where
        R: Clone,
        T: Clone,
    {
        let mut ctx = self.clone();
        ctx.invalidate();
        ctx
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// The attached tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Resets the per-request accumulator. Call once per request before
    /// routing; [`RouterCtx::request_stats`] then describes that request.
    pub fn begin_request(&mut self) {
        self.stats = RequestStats::default();
        self.arena_allocs_at_begin = self.arena.alloc_events();
    }

    /// Engine/search activity since the last [`RouterCtx::begin_request`].
    pub fn request_stats(&self) -> RequestStats {
        self.stats
    }

    /// Arena buffer-growth events since the last
    /// [`RouterCtx::begin_request`].
    pub fn request_arena_allocs(&self) -> u64 {
        self.arena.alloc_events() - self.arena_allocs_at_begin
    }

    /// Invalidates every held engine (see [`AuxEngine::invalidate`]). Call
    /// when reusing the context across independent [`ResidualState`]
    /// lineages.
    pub fn invalidate(&mut self) {
        for e in [
            &mut self.g_prime,
            &mut self.g_c,
            &mut self.g_c_prospective,
            &mut self.g_rc,
            &mut self.g_rc_printed,
        ]
        .into_iter()
        .flatten()
        {
            e.invalidate();
        }
        // Warm-start memory keys on a change clock that is only meaningful
        // within one lineage.
        self.mincog_warm = None;
    }

    /// The engine for `spec`'s family (building it on first use or after a
    /// network change) with its threshold set. Slot selection and (re)build
    /// run over the five engine slots borrowed
    /// individually so callers can keep disjoint borrows of the context's
    /// other fields (arena, tracer) alive alongside the returned engine.
    fn engine_slot<'a>(
        g_prime: &'a mut Option<AuxEngine>,
        g_c: &'a mut Option<AuxEngine>,
        g_c_prospective: &'a mut Option<AuxEngine>,
        g_rc: &'a mut Option<AuxEngine>,
        g_rc_printed: &'a mut Option<AuxEngine>,
        net: &WdmNetwork,
        spec: AuxSpec,
    ) -> (&'a mut AuxEngine, bool) {
        let slot = match (spec.weights, spec.basis) {
            (AuxWeights::AverageCost, _) if spec.threshold.is_none() => g_prime,
            (AuxWeights::AverageCost, _) => g_rc,
            (AuxWeights::AverageCostOverN, _) => g_rc_printed,
            (AuxWeights::CongestionExp { .. }, ThresholdBasis::CurrentLoad) => g_c,
            (AuxWeights::CongestionExp { .. }, ThresholdBasis::ProspectiveLoad) => g_c_prospective,
        };
        let reuse = slot.as_ref().is_some_and(|eng| {
            eng.matches(net) && eng.spec().weights == spec.weights && eng.spec().basis == spec.basis
        });
        if !reuse {
            *slot = Some(AuxEngine::new(net, spec));
        }
        let eng = slot.as_mut().expect("just ensured");
        eng.set_threshold(spec.threshold);
        (eng, !reuse)
    }

    /// Syncs the engine for `spec` and runs Suurballe over the enabled
    /// skeleton. Returns the auxiliary pair and both legs' physical edges.
    pub(crate) fn disjoint_pair(
        &mut self,
        net: &WdmNetwork,
        state: &ResidualState,
        s: NodeId,
        t: NodeId,
        spec: AuxSpec,
    ) -> Option<(DisjointPair, [Vec<EdgeId>; 2])> {
        let enabled = self.recorder.enabled();
        let start = enabled.then(std::time::Instant::now);
        let RouterCtx {
            arena,
            tracer,
            g_prime,
            g_c,
            g_c_prospective,
            g_rc,
            g_rc_printed,
            warm,
            ..
        } = &mut *self;
        // The refresh span opens before engine selection: a cold slot
        // builds its whole skeleton here, and that cost belongs to
        // `AuxRefresh`, not to an attribution gap.
        let tracing = tracer.enabled();
        let sync_t0 = tracer.now_ns();
        let (eng, built) =
            Self::engine_slot(g_prime, g_c, g_c_prospective, g_rc, g_rc_printed, net, spec);
        eng.set_warm_potentials(*warm);
        let sync = eng.sync(net, state, s, t);
        eng.warm_prepare(net);
        if tracing {
            tracer.record(Phase::AuxRefresh, sync_t0);
        }
        let source = eng.source();
        let sink = eng.sink();
        let p1_t0 = tracer.now_ns();
        // The staged callback fires between the two Suurballe passes; it
        // closes the pass-1 span and opens the pass-2 stamp. If pass 1
        // fails (t unreachable) it never fires and neither span records.
        let mut p2_t0 = None;
        // The searches run over the engine's CSR mirror: the bucket-queue
        // integer path when every weight certifies as dyadic (bit-identical
        // to the f64 path), the flat f64 d-ary path otherwise.
        let (view, int, pot) = eng.flat_parts();
        let warm_pot = if *warm { Some(pot) } else { None };
        let pair_opt = match int {
            Some(iw) => {
                arena.edge_disjoint_pair_flat_int(&view, &iw, warm_pot, source, sink, || {
                    if tracing {
                        tracer.record(Phase::SuurballeP1, p1_t0);
                        p2_t0 = Some(tracer.now_ns());
                    }
                })
            }
            None => arena.edge_disjoint_pair_flat(&view, source, sink, || {
                if tracing {
                    tracer.record(Phase::SuurballeP1, p1_t0);
                    p2_t0 = Some(tracer.now_ns());
                }
            }),
        };
        if tracing && p2_t0.is_none() {
            // The staged callback never fired: pass 1 ran to exhaustion
            // and found no path. The failed search is still pass-1 work.
            tracer.record(Phase::SuurballeP1, p1_t0);
        }
        let eng: &AuxEngine = eng;
        let result = pair_opt.map(|pair| {
            if let Some(t0) = p2_t0.take() {
                tracer.record(Phase::SuurballeP2, t0);
            }
            let mb_t0 = tracer.now_ns();
            let phys_a = eng.physical_edges(&pair.paths[0]);
            let phys_b = eng.physical_edges(&pair.paths[1]);
            if tracing {
                tracer.record(Phase::MapBack, mb_t0);
            }
            (pair, [phys_a, phys_b])
        });
        if let Some(t0) = p2_t0 {
            // Pass 2 ran but found no second path: still attribute it.
            tracer.record(Phase::SuurballeP2, t0);
        }
        if enabled {
            self.record_search(built, sync, start);
        }
        result
    }

    /// Cold path: folds one search's engine activity into the counters and
    /// the per-request accumulator. Only called when the recorder is live.
    fn record_search(&mut self, built: bool, sync: SyncStats, start: Option<std::time::Instant>) {
        let r = &self.recorder;
        let s = &mut self.stats;
        r.add(Counter::SuurballeSearches, 1);
        s.searches += 1;
        if built {
            r.add(Counter::EngineSkeletonBuilds, 1);
            s.skeleton_builds += 1;
        }
        if sync.full {
            r.add(Counter::EngineFullRefreshes, 1);
            s.full_refreshes += 1;
        } else if sync.links_refreshed > 0 {
            r.add(Counter::EngineDirtyRefreshes, 1);
            r.add(
                Counter::EngineDirtyLinksRefreshed,
                sync.links_refreshed as u64,
            );
            s.dirty_refreshes += 1;
            s.dirty_links += sync.links_refreshed;
        } else {
            r.add(Counter::EngineFastSyncs, 1);
            s.fast_syncs += 1;
        }
        if let Some(t0) = start {
            let ns = t0.elapsed().as_nanos() as u64;
            r.observe(Hist::SearchNanos, ns);
            s.search_ns += ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aux_graph::AuxGraph;
    use crate::conversion::ConversionTable;
    use crate::network::NetworkBuilder;
    use crate::wavelength::{Wavelength, WavelengthSet};

    fn fig1_like() -> WdmNetwork {
        let mut b = NetworkBuilder::new(3);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 1.0 }))
            .collect();
        b.add_link_with(n[0], n[1], 2.0, WavelengthSet::from_indices(&[0, 1]));
        b.add_link_with(n[1], n[3], 2.0, WavelengthSet::from_indices(&[1, 2]));
        b.add_link_with(n[0], n[2], 3.0, WavelengthSet::from_indices(&[0]));
        b.add_link_with(n[2], n[3], 3.0, WavelengthSet::from_indices(&[2]));
        b.add_link_with(n[1], n[2], 1.0, WavelengthSet::from_indices(&[0, 1, 2]));
        b.build()
    }

    /// Collects (kind, src-kind, dst-kind, weight-bits) of every enabled /
    /// existing arc — the canonical form both constructions must agree on.
    fn canon_engine(eng: &AuxEngine) -> Vec<(String, u64)> {
        eng.graph()
            .edge_ids()
            .filter(|&e| eng.enabled(e))
            .map(|e| {
                let d = eng.graph().edge(e);
                let s = eng.graph().node(eng.graph().src(e));
                let t = eng.graph().node(eng.graph().dst(e));
                (format!("{:?}->{:?} {:?}", s, t, d.kind), d.weight.to_bits())
            })
            .collect()
    }

    fn canon_scratch(aux: &AuxGraph) -> Vec<(String, u64)> {
        aux.graph
            .edge_ids()
            .map(|e| {
                let d = aux.graph.edge(e);
                let s = aux.graph.node(aux.graph.src(e));
                let t = aux.graph.node(aux.graph.dst(e));
                (format!("{:?}->{:?} {:?}", s, t, d.kind), d.weight.to_bits())
            })
            .collect()
    }

    fn assert_equiv(
        net: &WdmNetwork,
        state: &ResidualState,
        eng: &mut AuxEngine,
        s: NodeId,
        t: NodeId,
        spec: AuxSpec,
    ) {
        eng.sync(net, state, s, t);
        let scratch = AuxGraph::build(net, state, s, t, spec);
        assert_eq!(eng.admitted_links(), scratch.admitted_links());
        assert_eq!(canon_engine(eng), canon_scratch(&scratch));
    }

    #[test]
    fn engine_matches_scratch_across_mutations() {
        let net = fig1_like();
        let mut st = ResidualState::fresh(&net);
        let spec = AuxSpec::g_prime();
        let mut eng = AuxEngine::new(&net, spec);
        let (s, t) = (NodeId(0), NodeId(3));
        assert_equiv(&net, &st, &mut eng, s, t, spec);

        st.occupy(&net, EdgeId(0), Wavelength(1)).unwrap();
        assert_equiv(&net, &st, &mut eng, s, t, spec);

        st.occupy(&net, EdgeId(2), Wavelength(0)).unwrap(); // drops e2
        assert_equiv(&net, &st, &mut eng, s, t, spec);

        st.fail_link(EdgeId(4));
        assert_equiv(&net, &st, &mut eng, s, t, spec);

        st.repair_link(EdgeId(4));
        st.release(EdgeId(2), Wavelength(0)).unwrap();
        assert_equiv(&net, &st, &mut eng, s, t, spec);
    }

    #[test]
    fn retargeting_moves_taps() {
        let net = fig1_like();
        let st = ResidualState::fresh(&net);
        let spec = AuxSpec::g_prime();
        let mut eng = AuxEngine::new(&net, spec);
        assert_equiv(&net, &st, &mut eng, NodeId(0), NodeId(3), spec);
        assert_equiv(&net, &st, &mut eng, NodeId(1), NodeId(2), spec);
        assert_equiv(&net, &st, &mut eng, NodeId(0), NodeId(3), spec);
    }

    #[test]
    fn threshold_updates_re_mask_without_weight_churn() {
        let net = fig1_like();
        let mut st = ResidualState::fresh(&net);
        st.occupy(&net, EdgeId(4), Wavelength(0)).unwrap(); // load 1/3
        let mut eng = AuxEngine::new(&net, AuxSpec::g_c(2.0, 0.3));
        assert_equiv(
            &net,
            &st,
            &mut eng,
            NodeId(0),
            NodeId(3),
            AuxSpec::g_c(2.0, 0.3),
        );
        eng.set_threshold(Some(0.5));
        assert_equiv(
            &net,
            &st,
            &mut eng,
            NodeId(0),
            NodeId(3),
            AuxSpec::g_c(2.0, 0.5),
        );
        eng.set_threshold(Some(0.3));
        assert_equiv(
            &net,
            &st,
            &mut eng,
            NodeId(0),
            NodeId(3),
            AuxSpec::g_c(2.0, 0.3),
        );
    }

    #[test]
    fn clock_regression_triggers_full_refresh() {
        let net = fig1_like();
        let mut st = ResidualState::fresh(&net);
        st.occupy(&net, EdgeId(0), Wavelength(0)).unwrap();
        st.occupy(&net, EdgeId(0), Wavelength(1)).unwrap();
        let spec = AuxSpec::g_prime();
        let mut eng = AuxEngine::new(&net, spec);
        assert_equiv(&net, &st, &mut eng, NodeId(0), NodeId(3), spec);
        // A brand-new state has clock 0 < the engine's synced clock: the
        // engine must notice and fully refresh.
        let fresh = ResidualState::fresh(&net);
        assert_equiv(&net, &fresh, &mut eng, NodeId(0), NodeId(3), spec);
    }
}
