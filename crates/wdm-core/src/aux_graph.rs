//! Auxiliary-graph constructions: `G'` (§3.3.1), `G_c` (§4.1) and `G_rc`
//! (§4.2).
//!
//! All three share one structure — only weights and a load threshold differ:
//!
//! * **nodes**: for each physical link `e = ⟨u, v⟩` with `Λ_avail(e) ≠ ∅`
//!   (and, for the thresholded graphs, `ρ(e) < ϑ`), two *edge-nodes*
//!   `u_out^e` and `v_in^e`, plus the terminals `s'` and `t''`;
//! * **traversal links** `u_out^e → v_in^e`, one per admitted physical link;
//! * **conversion links** `v_in^e → v_out^{e'}` for every admitted pair
//!   `e ∈ E_in(v)`, `e' ∈ E_out(v)` with at least one allowed conversion
//!   `λ_a ∈ Λ_avail(e) → λ_b ∈ Λ_avail(e')`;
//! * **taps** `s' → s_out^{e₁}` and `t_in^{e₂} → t''`, weight 0.
//!
//! Weight schemes ([`AuxWeights`]):
//!
//! * `AverageCost` (`G'`): traversal = `Σ_{λ∈avail} w(e,λ) / |Λ_avail(e)|`,
//!   conversion = `Σ allowed pairs c_v(λ_a, λ_b) / K_v` with `K_v` the number
//!   of allowed pairs for this `(e, e')` — the "average cost of all possible
//!   conversions" of §3.3.1.
//! * `CongestionExp { a }` (`G_c`): traversal =
//!   `a^((U(e)+1)/N(e)) − a^(U(e)/N(e))`, conversion = 0. The exponential
//!   increment steers Suurballe away from heavily loaded links.
//! * `AverageCostOverN` (`G_rc` *as printed*): traversal =
//!   `Σ_{λ∈avail} w(e,λ) / N(e)`. The paper's §4.2 formula normalises by the
//!   full capacity `N(e)`, which under uniform costs equals `w·(1 − ρ(e))`
//!   and *discounts loaded links* — contradicting both the section's goal
//!   and its own prose ("the average of all possible weights"). The default
//!   [`AuxSpec::g_rc`] therefore uses the `AverageCost` scheme (divide by
//!   `|Λ_avail(e)|`); the literal formula is kept as
//!   [`AuxSpec::g_rc_as_printed`] for the ablation experiment.

use crate::network::{ResidualState, WdmNetwork};
use wdm_graph::{DiGraph, EdgeId, NodeId};

/// What an auxiliary-graph node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuxNode {
    /// `s'`.
    Source,
    /// `t''`.
    Sink,
    /// `u_out^e`: the tail-side edge-node of physical link `e`.
    OutNode(EdgeId),
    /// `v_in^e`: the head-side edge-node of physical link `e`.
    InNode(EdgeId),
}

/// What an auxiliary-graph link stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuxArc {
    /// `u_out^e → v_in^e`: traversing physical link `e`.
    Traversal(EdgeId),
    /// `v_in^e → v_out^{e'}`: wavelength conversion at node `v`.
    Conversion(NodeId),
    /// `s' → s_out^{e}` or `t_in^{e} → t''`.
    Tap,
}

/// Weighted auxiliary-arc payload.
#[derive(Debug, Clone, Copy)]
pub struct AuxEdgeData {
    /// Semantic role.
    pub kind: AuxArc,
    /// Weight `ω` per the active scheme.
    pub weight: f64,
}

/// Weight scheme selector (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuxWeights {
    /// `G'`: average traversal + average conversion cost.
    AverageCost,
    /// `G_c`: exponential congestion increment with base `a`, conversions 0.
    CongestionExp {
        /// Base of the exponential (`a > 1`).
        a: f64,
    },
    /// `G_rc`: average traversal over `N(e)` + average conversion cost.
    AverageCostOverN,
}

/// What quantity the admission threshold is compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThresholdBasis {
    /// Admit links with *current* load `U(e)/N(e) < ϑ` — the paper's §4.1
    /// rule.
    #[default]
    CurrentLoad,
    /// Admit links whose *prospective* load `(U(e)+1)/N(e) ≤ ϑ` — i.e. the
    /// load the link would reach if the route used it. Used by the exact
    /// minimum-bottleneck search, whose objective is the achieved load.
    ProspectiveLoad,
}

/// Full specification of an auxiliary graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuxSpec {
    /// Weight scheme.
    pub weights: AuxWeights,
    /// Load threshold `ϑ`: links beyond it are dropped
    /// (`None` = no thresholding, i.e. `G'`).
    pub threshold: Option<f64>,
    /// Which load the threshold filters on.
    pub basis: ThresholdBasis,
}

impl AuxSpec {
    /// The `G'` spec (§3.3.1).
    pub fn g_prime() -> Self {
        Self {
            weights: AuxWeights::AverageCost,
            threshold: None,
            basis: ThresholdBasis::CurrentLoad,
        }
    }

    /// The `G_c` spec (§4.1).
    pub fn g_c(a: f64, threshold: f64) -> Self {
        assert!(a > 1.0, "exponential base must exceed 1");
        Self {
            weights: AuxWeights::CongestionExp { a },
            threshold: Some(threshold),
            basis: ThresholdBasis::CurrentLoad,
        }
    }

    /// A `G_c` variant admitting links by *prospective* load
    /// `(U(e)+1)/N(e) ≤ ϑ` — the admission family whose minimal feasible
    /// threshold equals the optimal achievable bottleneck load. Used by
    /// [`crate::mincog::exact_min_load_threshold`].
    pub fn g_c_prospective(a: f64, threshold: f64) -> Self {
        assert!(a > 1.0, "exponential base must exceed 1");
        Self {
            weights: AuxWeights::CongestionExp { a },
            threshold: Some(threshold),
            basis: ThresholdBasis::ProspectiveLoad,
        }
    }

    /// The `G_rc` spec (§4.2), with the traversal weight taken as the true
    /// average over *available* wavelengths (`/ |Λ_avail(e)|`, as in `G'`).
    ///
    /// The paper's formula divides by `N(e)` instead, but its own prose
    /// ("the average of all possible weights on link e using different
    /// wavelengths") describes the `|Λ_avail|` average; dividing by `N(e)`
    /// makes a loaded link's weight `w·(1 − ρ(e))`, i.e. *discounts* hot
    /// links and attracts routes to them — measurably worse in the dynamic
    /// experiments (see the `exp_grc_ablation` binary). We treat `/N(e)` as
    /// a typo; [`AuxSpec::g_rc_as_printed`] keeps the literal version.
    pub fn g_rc(threshold: f64) -> Self {
        Self {
            weights: AuxWeights::AverageCost,
            threshold: Some(threshold),
            basis: ThresholdBasis::CurrentLoad,
        }
    }

    /// The `G_rc` spec exactly as printed in §4.2 (traversal weight
    /// `Σ_{λ∈Λ_avail} w(e,λ) / N(e)`). See [`AuxSpec::g_rc`] for why this is
    /// believed to be a typo; kept for the ablation experiment.
    pub fn g_rc_as_printed(threshold: f64) -> Self {
        Self {
            weights: AuxWeights::AverageCostOverN,
            threshold: Some(threshold),
            basis: ThresholdBasis::CurrentLoad,
        }
    }
}

/// An auxiliary graph together with the mappings back to the physical
/// network.
#[derive(Debug, Clone)]
pub struct AuxGraph {
    /// The weighted directed graph.
    pub graph: DiGraph<AuxNode, AuxEdgeData>,
    /// `s'`.
    pub source: NodeId,
    /// `t''`.
    pub sink: NodeId,
    /// Per physical edge: its `u_out^e` node, if admitted.
    out_node: Vec<Option<NodeId>>,
    /// Per physical edge: its `v_in^e` node, if admitted.
    in_node: Vec<Option<NodeId>>,
}

impl AuxGraph {
    /// Builds the auxiliary graph for request `(s, t)` over the residual
    /// network defined by `state`, per `spec`.
    pub fn build(
        net: &WdmNetwork,
        state: &ResidualState,
        s: NodeId,
        t: NodeId,
        spec: AuxSpec,
    ) -> Self {
        let m = net.link_count();
        let mut graph: DiGraph<AuxNode, AuxEdgeData> = DiGraph::with_capacity(2 * m + 2, 3 * m);
        let source = graph.add_node(AuxNode::Source);
        let sink = graph.add_node(AuxNode::Sink);
        let mut out_node: Vec<Option<NodeId>> = vec![None; m];
        let mut in_node: Vec<Option<NodeId>> = vec![None; m];

        // Admission: availability plus optional load threshold.
        let admitted = |e: EdgeId| -> bool {
            if state.avail(net, e).is_empty() {
                return false;
            }
            match (spec.threshold, spec.basis) {
                (None, _) => true,
                (Some(th), ThresholdBasis::CurrentLoad) => state.load(net, e) < th - 1e-12,
                (Some(th), ThresholdBasis::ProspectiveLoad) => {
                    state.prospective_load(net, e) <= th + 1e-12
                }
            }
        };

        // Edge-nodes and traversal links.
        for ei in 0..m {
            let e = EdgeId::from(ei);
            if !admitted(e) {
                continue;
            }
            let uo = graph.add_node(AuxNode::OutNode(e));
            let vi = graph.add_node(AuxNode::InNode(e));
            out_node[ei] = Some(uo);
            in_node[ei] = Some(vi);
            let avail = state.avail(net, e);
            let weight = match spec.weights {
                AuxWeights::AverageCost => {
                    avail.iter().map(|l| net.link_cost(e, l)).sum::<f64>() / avail.count() as f64
                }
                AuxWeights::AverageCostOverN => {
                    avail.iter().map(|l| net.link_cost(e, l)).sum::<f64>() / net.capacity(e) as f64
                }
                AuxWeights::CongestionExp { a } => {
                    let n = net.capacity(e) as f64;
                    let u = state.used_count(e) as f64;
                    a.powf((u + 1.0) / n) - a.powf(u / n)
                }
            };
            graph.add_edge(
                uo,
                vi,
                AuxEdgeData {
                    kind: AuxArc::Traversal(e),
                    weight,
                },
            );
        }

        // Conversion links per physical node.
        for v in net.graph().node_ids() {
            let conv = net.conversion(v);
            for &ein in net.graph().in_edges(v) {
                let Some(vi) = in_node[ein.index()] else {
                    continue;
                };
                let avail_in = state.avail(net, ein);
                for &eout in net.graph().out_edges(v) {
                    let Some(vo) = out_node[eout.index()] else {
                        continue;
                    };
                    let avail_out = state.avail(net, eout);
                    // Sum allowed conversion costs and count them (K_v).
                    let mut total = 0.0;
                    let mut k = 0usize;
                    for la in avail_in.iter() {
                        for lb in avail_out.iter() {
                            if let Some(c) = conv.cost(la, lb) {
                                total += c;
                                k += 1;
                            }
                        }
                    }
                    if k > 0 {
                        let weight = match spec.weights {
                            AuxWeights::CongestionExp { .. } => 0.0,
                            _ => total / k as f64,
                        };
                        graph.add_edge(
                            vi,
                            vo,
                            AuxEdgeData {
                                kind: AuxArc::Conversion(v),
                                weight,
                            },
                        );
                    }
                }
            }
        }

        // Terminal taps.
        for &e in net.graph().out_edges(s) {
            if let Some(uo) = out_node[e.index()] {
                graph.add_edge(
                    source,
                    uo,
                    AuxEdgeData {
                        kind: AuxArc::Tap,
                        weight: 0.0,
                    },
                );
            }
        }
        for &e in net.graph().in_edges(t) {
            if let Some(vi) = in_node[e.index()] {
                graph.add_edge(
                    vi,
                    sink,
                    AuxEdgeData {
                        kind: AuxArc::Tap,
                        weight: 0.0,
                    },
                );
            }
        }

        Self {
            graph,
            source,
            sink,
            out_node,
            in_node,
        }
    }

    /// Weight accessor for the shortest-path calls.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> f64 {
        self.graph.edge(e).weight
    }

    /// Maps a path in the auxiliary graph back to the physical links it
    /// traverses (in order).
    pub fn physical_edges(&self, path: &wdm_graph::Path) -> Vec<EdgeId> {
        path.edges
            .iter()
            .filter_map(|&ae| match self.graph.edge(ae).kind {
                AuxArc::Traversal(pe) => Some(pe),
                _ => None,
            })
            .collect()
    }

    /// The `u_out^e` node of physical edge `e`, if admitted.
    pub fn out_node_of(&self, e: EdgeId) -> Option<NodeId> {
        self.out_node[e.index()]
    }

    /// The `v_in^e` node of physical edge `e`, if admitted.
    pub fn in_node_of(&self, e: EdgeId) -> Option<NodeId> {
        self.in_node[e.index()]
    }

    /// Number of admitted physical links.
    pub fn admitted_links(&self) -> usize {
        self.out_node.iter().filter(|o| o.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::network::NetworkBuilder;
    use crate::wavelength::{Wavelength, WavelengthSet};

    /// Small residual network in the spirit of the paper's Figure 1: four
    /// nodes, five links, three wavelengths with partial availability.
    fn fig1_like() -> WdmNetwork {
        let mut b = NetworkBuilder::new(3);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 1.0 }))
            .collect();
        b.add_link_with(n[0], n[1], 2.0, WavelengthSet::from_indices(&[0, 1])); // e0
        b.add_link_with(n[1], n[3], 2.0, WavelengthSet::from_indices(&[1, 2])); // e1
        b.add_link_with(n[0], n[2], 3.0, WavelengthSet::from_indices(&[0])); // e2
        b.add_link_with(n[2], n[3], 3.0, WavelengthSet::from_indices(&[2])); // e3
        b.add_link_with(n[1], n[2], 1.0, WavelengthSet::from_indices(&[0, 1, 2])); // e4
        b.build()
    }

    #[test]
    fn g_prime_structure() {
        let net = fig1_like();
        let st = ResidualState::fresh(&net);
        let aux = AuxGraph::build(&net, &st, NodeId(0), NodeId(3), AuxSpec::g_prime());
        // 2 terminals + 2 edge-nodes per admitted link (all 5 admitted).
        assert_eq!(aux.graph.node_count(), 2 + 2 * 5);
        assert_eq!(aux.admitted_links(), 5);
        // Traversal links: 5. Taps: out(s=0) = e0, e2 -> 2; in(t=3) = e1, e3 -> 2.
        let traversals = aux
            .graph
            .edge_ids()
            .filter(|&e| matches!(aux.graph.edge(e).kind, AuxArc::Traversal(_)))
            .count();
        assert_eq!(traversals, 5);
        let taps = aux
            .graph
            .edge_ids()
            .filter(|&e| matches!(aux.graph.edge(e).kind, AuxArc::Tap))
            .count();
        assert_eq!(taps, 4);
        // Conversion links: node 1 has in {e0}, out {e1, e4} -> 2;
        // node 2 has in {e2, e4}, out {e3} -> 2. Total 4.
        let conversions = aux
            .graph
            .edge_ids()
            .filter(|&e| matches!(aux.graph.edge(e).kind, AuxArc::Conversion(_)))
            .count();
        assert_eq!(conversions, 4);
    }

    #[test]
    fn g_prime_weights_are_averages() {
        let net = fig1_like();
        let st = ResidualState::fresh(&net);
        let aux = AuxGraph::build(&net, &st, NodeId(0), NodeId(3), AuxSpec::g_prime());
        // Traversal weight of e0 (uniform cost 2.0, avail {λ0, λ1}) = 2.0.
        let e0_trav = aux
            .graph
            .edge_ids()
            .find(|&e| matches!(aux.graph.edge(e).kind, AuxArc::Traversal(pe) if pe == EdgeId(0)))
            .unwrap();
        assert_eq!(aux.weight(e0_trav), 2.0);
        // Conversion at node 1 between e0 (avail {0,1}) and e1 (avail {1,2}):
        // pairs: (0,1)=1,(0,2)=1,(1,1)=0,(1,2)=1 -> avg = 3/4.
        let conv = aux
            .graph
            .edge_ids()
            .find(|&e| {
                matches!(aux.graph.edge(e).kind, AuxArc::Conversion(v) if v == NodeId(1))
                    && matches!(aux.graph.node(aux.graph.src(e)), AuxNode::InNode(pe) if *pe == EdgeId(0))
                    && matches!(aux.graph.node(aux.graph.dst(e)), AuxNode::OutNode(pe) if *pe == EdgeId(1))
            })
            .unwrap();
        assert!((aux.weight(conv) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn occupancy_shrinks_availability_averages() {
        let net = fig1_like();
        let mut st = ResidualState::fresh(&net);
        // Occupy λ1 on e0: avail {0}; per-λ cost uniform so traversal stays 2.
        st.occupy(&net, EdgeId(0), Wavelength(1)).unwrap();
        let aux = AuxGraph::build(&net, &st, NodeId(0), NodeId(3), AuxSpec::g_prime());
        // Conversion at node 1 between e0 (avail {0}) and e1 (avail {1,2}):
        // pairs (0,1)=1,(0,2)=1 -> avg 1.0.
        let conv = aux
            .graph
            .edge_ids()
            .find(|&e| {
                matches!(aux.graph.edge(e).kind, AuxArc::Conversion(v) if v == NodeId(1))
                    && matches!(aux.graph.node(aux.graph.src(e)), AuxNode::InNode(pe) if *pe == EdgeId(0))
            })
            .unwrap();
        assert!((aux.weight(conv) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_used_link_is_dropped() {
        let net = fig1_like();
        let mut st = ResidualState::fresh(&net);
        st.occupy(&net, EdgeId(2), Wavelength(0)).unwrap(); // e2 has only λ0
        let aux = AuxGraph::build(&net, &st, NodeId(0), NodeId(3), AuxSpec::g_prime());
        assert_eq!(aux.admitted_links(), 4);
        assert!(aux.out_node_of(EdgeId(2)).is_none());
    }

    #[test]
    fn threshold_drops_loaded_links() {
        let net = fig1_like();
        let mut st = ResidualState::fresh(&net);
        // e4 has 3 channels; occupy one -> load 1/3.
        st.occupy(&net, EdgeId(4), Wavelength(0)).unwrap();
        let spec = AuxSpec::g_c(2.0, 0.3); // ϑ = 0.3 < 1/3
        let aux = AuxGraph::build(&net, &st, NodeId(0), NodeId(3), spec);
        assert!(aux.out_node_of(EdgeId(4)).is_none());
        // With ϑ = 0.5 it is admitted again.
        let aux2 = AuxGraph::build(&net, &st, NodeId(0), NodeId(3), AuxSpec::g_c(2.0, 0.5));
        assert!(aux2.out_node_of(EdgeId(4)).is_some());
    }

    #[test]
    fn congestion_weights_grow_with_load() {
        let net = fig1_like();
        let mut st = ResidualState::fresh(&net);
        let w_of = |st: &ResidualState| {
            let aux = AuxGraph::build(&net, st, NodeId(0), NodeId(3), AuxSpec::g_c(8.0, 1.1));
            let t = aux
                .graph
                .edge_ids()
                .find(
                    |&e| matches!(aux.graph.edge(e).kind, AuxArc::Traversal(pe) if pe == EdgeId(4)),
                )
                .unwrap();
            aux.weight(t)
        };
        let w0 = w_of(&st);
        st.occupy(&net, EdgeId(4), Wavelength(0)).unwrap();
        let w1 = w_of(&st);
        st.occupy(&net, EdgeId(4), Wavelength(1)).unwrap();
        let w2 = w_of(&st);
        assert!(
            w0 < w1 && w1 < w2,
            "exponential increments must grow: {w0} {w1} {w2}"
        );
        // Conversion links are free in G_c.
        let aux = AuxGraph::build(&net, &st, NodeId(0), NodeId(3), AuxSpec::g_c(8.0, 1.1));
        for e in aux.graph.edge_ids() {
            if matches!(aux.graph.edge(e).kind, AuxArc::Conversion(_)) {
                assert_eq!(aux.weight(e), 0.0);
            }
        }
    }

    #[test]
    fn g_rc_as_printed_normalises_by_capacity() {
        let net = fig1_like();
        let mut st = ResidualState::fresh(&net);
        st.occupy(&net, EdgeId(4), Wavelength(0)).unwrap(); // e4: avail 2 of 3
        let aux = AuxGraph::build(
            &net,
            &st,
            NodeId(0),
            NodeId(3),
            AuxSpec::g_rc_as_printed(1.1),
        );
        let t = aux
            .graph
            .edge_ids()
            .find(|&e| matches!(aux.graph.edge(e).kind, AuxArc::Traversal(pe) if pe == EdgeId(4)))
            .unwrap();
        // Σ_{λ∈avail} w / N = (1 + 1) / 3.
        assert!((aux.weight(t) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_conversion_nodes_limit_aux_connectivity() {
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..3).map(|_| b.add_node(ConversionTable::None)).collect();
        b.add_link_with(n[0], n[1], 1.0, WavelengthSet::from_indices(&[0]));
        b.add_link_with(n[1], n[2], 1.0, WavelengthSet::from_indices(&[1]));
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let aux = AuxGraph::build(&net, &st, NodeId(0), NodeId(2), AuxSpec::g_prime());
        // No conversion link at node 1 (disjoint availability, no converter),
        // so s' cannot reach t''.
        let conversions = aux
            .graph
            .edge_ids()
            .filter(|&e| matches!(aux.graph.edge(e).kind, AuxArc::Conversion(_)))
            .count();
        assert_eq!(conversions, 0);
    }

    #[test]
    fn physical_edge_mapping_roundtrip() {
        let net = fig1_like();
        let st = ResidualState::fresh(&net);
        let aux = AuxGraph::build(&net, &st, NodeId(0), NodeId(3), AuxSpec::g_prime());
        let tree = wdm_graph::dijkstra::dijkstra(&aux.graph, aux.source, |e| aux.weight(e));
        let p = tree.path_to(&aux.graph, aux.sink).unwrap();
        let phys = aux.physical_edges(&p);
        // Shortest by average weights: e0 (2.0) then e1 (2.0) + conv 0.75 = 4.75
        // vs e2+e3 = 6 + conv 1.0; so top route.
        assert_eq!(phys, vec![EdgeId(0), EdgeId(1)]);
    }
}
