//! Exact solvers for the optimal edge-disjoint semilightpath problem.
//!
//! Two independent implementations, used to cross-validate each other and to
//! measure the Theorem 2 approximation ratio:
//!
//! * [`exhaustive_best_pair`] — enumerate all simple `s → t` paths (DFS),
//!   check every unordered pair for edge-disjointness, and assign
//!   wavelengths optimally on each leg by the fixed-path DP (legs are
//!   edge-disjoint, so their wavelength choices are independent).
//!   Exponential in the path count — the Lemma 1 hardness experiment runs it
//!   on the ladder family to exhibit exactly that blow-up.
//! * [`ilp_best_pair`] — the paper's 0/1 integer program (Eqs. 3–21) built
//!   with `wdm-ilp` and solved by branch-and-bound.
//!
//! Formulation note: the paper writes the conversion cost coupling as an
//! *equality* `z_{ijk} = Σ (x + x − 1)·c` (Eqs. 17–18), which is not a valid
//! linearisation when several wavelength pairs are summed (terms can go
//! negative). We use the standard big-M-free product linearisation instead:
//! one variable `z ≥ x₁ + x₂ − 1, z ≥ 0` per *consecutive wavelength-pair*,
//! with objective coefficient `c_v(λ₁, λ₂)`; forbidden conversions become
//! the cut `x₁ + x₂ ≤ 1`. At the 0/1 points the objective agrees with
//! Eq. (3), which is what the equality intended.
//!
//! Both solvers restrict routes to *simple* paths, exactly as the paper's
//! degree constraints (Eqs. 5–6, 11–12) do.

use crate::error::RoutingError;
use crate::network::{ResidualState, WdmNetwork};
use crate::optimal_slp::assign_wavelengths_on_path;
use crate::semilightpath::{RobustRoute, Semilightpath};
use wdm_graph::{EdgeId, NodeId};
use wdm_ilp::{solve_ilp, Cmp, IlpOptions, IlpStatus, LinExpr, Model, VarId};

/// Search statistics from the exhaustive solver (hardness experiment data).
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveStats {
    /// Simple `s → t` paths enumerated.
    pub paths_enumerated: usize,
    /// Edge-disjoint pairs evaluated.
    pub pairs_checked: usize,
    /// Whether enumeration was truncated by `max_paths`.
    pub truncated: bool,
}

/// Exhaustively optimal edge-disjoint semilightpath pair (over simple
/// paths), or `None` if no feasible pair exists. `max_paths` caps the
/// enumeration (`truncated` is set if hit, making the result a lower-effort
/// heuristic rather than exact).
pub fn exhaustive_best_pair(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    max_paths: usize,
) -> (Option<RobustRoute>, ExhaustiveStats) {
    let mut stats = ExhaustiveStats::default();
    if s == t {
        return (None, stats);
    }
    // Enumerate simple paths as edge sequences.
    let mut paths: Vec<Vec<EdgeId>> = Vec::new();
    let mut seen = vec![false; net.node_count()];
    seen[s.index()] = true;
    let mut stack: Vec<EdgeId> = Vec::new();
    dfs_paths(
        net, state, s, t, &mut seen, &mut stack, &mut paths, max_paths, &mut stats,
    );

    // Optimal wavelength assignment per path (memoised by index).
    let assigned: Vec<Option<Semilightpath>> = paths
        .iter()
        .map(|p| assign_wavelengths_on_path(net, state, s, p))
        .collect();

    let mut best: Option<(f64, usize, usize)> = None;
    for i in 0..paths.len() {
        let Some(pi) = &assigned[i] else { continue };
        for j in (i + 1)..paths.len() {
            let Some(pj) = &assigned[j] else { continue };
            if paths[i].iter().any(|e| paths[j].contains(e)) {
                continue;
            }
            stats.pairs_checked += 1;
            let tot = pi.cost + pj.cost;
            if best.is_none_or(|(b, _, _)| tot < b) {
                best = Some((tot, i, j));
            }
        }
    }
    let route = best.map(|(_, i, j)| {
        RobustRoute::ordered(
            assigned[i].clone().expect("present"),
            assigned[j].clone().expect("present"),
        )
    });
    (route, stats)
}

#[allow(clippy::too_many_arguments)]
fn dfs_paths(
    net: &WdmNetwork,
    state: &ResidualState,
    at: NodeId,
    t: NodeId,
    seen: &mut Vec<bool>,
    stack: &mut Vec<EdgeId>,
    out: &mut Vec<Vec<EdgeId>>,
    max_paths: usize,
    stats: &mut ExhaustiveStats,
) {
    if out.len() >= max_paths {
        stats.truncated = true;
        return;
    }
    if at == t {
        out.push(stack.clone());
        stats.paths_enumerated += 1;
        return;
    }
    for &e in net.graph().out_edges(at) {
        if state.avail(net, e).is_empty() {
            continue;
        }
        let v = net.endpoints(e).1;
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        stack.push(e);
        dfs_paths(net, state, v, t, seen, stack, out, max_paths, stats);
        stack.pop();
        seen[v.index()] = false;
    }
}

/// Statistics from the ILP solver.
#[derive(Debug, Clone)]
pub struct IlpStats {
    /// Number of model variables.
    pub variables: usize,
    /// Number of model constraints.
    pub constraints: usize,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

/// Solves the paper's integer program (Eqs. 3–21, with the linearisation
/// described in the module docs) for request `(s, t)`.
#[allow(clippy::needless_range_loop)] // edge-indexed scans mirror the formulation
pub fn ilp_best_pair(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    opts: &IlpOptions,
) -> Result<(Option<RobustRoute>, IlpStats), RoutingError> {
    if s == t {
        return Err(RoutingError::DegenerateRequest);
    }
    let mut model = Model::minimize();
    let m = net.link_count();

    // x[e][λ] / y[e][λ] for available wavelengths only.
    let mut x: Vec<Vec<Option<VarId>>> = Vec::with_capacity(m);
    let mut y: Vec<Vec<Option<VarId>>> = Vec::with_capacity(m);
    let mut objective = LinExpr::new();
    for ei in 0..m {
        let e = EdgeId::from(ei);
        let avail = state.avail(net, e);
        let w = net.num_wavelengths();
        let mut xe = vec![None; w];
        let mut ye = vec![None; w];
        for l in avail.iter() {
            let vx = model.binary(format!("x_{ei}_{}", l.0));
            let vy = model.binary(format!("y_{ei}_{}", l.0));
            objective.add_term(vx, net.link_cost(e, l));
            objective.add_term(vy, net.link_cost(e, l));
            xe[l.index()] = Some(vx);
            ye[l.index()] = Some(vy);
        }
        x.push(xe);
        y.push(ye);
    }

    // Helper summing one flow family over an edge set.
    let edge_sum = |vars: &[Vec<Option<VarId>>], edges: &[EdgeId]| -> LinExpr {
        let mut e2 = LinExpr::new();
        for &e in edges {
            for v in vars[e.index()].iter().flatten() {
                e2.add_term(*v, 1.0);
            }
        }
        e2
    };

    for (vars, src, dst) in [(&x, s, t), (&y, s, t)] {
        // Eq (4)/(10): one wavelength per used link.
        for ei in 0..m {
            let mut one = LinExpr::new();
            for v in vars[ei].iter().flatten() {
                one.add_term(*v, 1.0);
            }
            if !one.terms.is_empty() {
                model.constrain(one, Cmp::Le, 1.0);
            }
        }
        // Eqs (5)-(9) / (11)-(15): degree and conservation.
        for v in net.graph().node_ids() {
            let out = edge_sum(vars, net.graph().out_edges(v));
            let inn = edge_sum(vars, net.graph().in_edges(v));
            if v == src {
                model.constrain(out, Cmp::Eq, 1.0);
                model.constrain(inn, Cmp::Eq, 0.0);
            } else if v == dst {
                model.constrain(inn, Cmp::Eq, 1.0);
                model.constrain(out, Cmp::Eq, 0.0);
            } else {
                model.constrain(out.clone(), Cmp::Le, 1.0);
                model.constrain(inn.clone(), Cmp::Le, 1.0);
                let mut conserve = out;
                conserve.add_scaled(&inn, -1.0);
                model.constrain(conserve, Cmp::Eq, 0.0);
            }
        }
    }

    // Eq (16): a physical link serves at most one of the two paths.
    for ei in 0..m {
        let mut both = LinExpr::new();
        for v in x[ei].iter().flatten() {
            both.add_term(*v, 1.0);
        }
        for v in y[ei].iter().flatten() {
            both.add_term(*v, 1.0);
        }
        if !both.terms.is_empty() {
            model.constrain(both, Cmp::Le, 1.0);
        }
    }

    // Eqs (17)-(21): conversion costs, via per-pair linearisation.
    for (vars, tag) in [(&x, "z"), (&y, "t")] {
        for v in net.graph().node_ids() {
            if v == s || v == t {
                continue;
            }
            let conv = net.conversion(v);
            for &e1 in net.graph().in_edges(v) {
                for &e2 in net.graph().out_edges(v) {
                    for l1 in state.avail(net, e1).iter() {
                        let Some(v1) = vars[e1.index()][l1.index()] else {
                            continue;
                        };
                        for l2 in state.avail(net, e2).iter() {
                            let Some(v2) = vars[e2.index()][l2.index()] else {
                                continue;
                            };
                            match conv.cost(l1, l2) {
                                None => {
                                    // Forbidden conversion: cut.
                                    model.constrain(
                                        LinExpr::term(v1, 1.0).plus(v2, 1.0),
                                        Cmp::Le,
                                        1.0,
                                    );
                                }
                                Some(c) if c > 0.0 => {
                                    let z = model.continuous(
                                        format!(
                                            "{tag}_{}_{}_{}_{}",
                                            e1.index(),
                                            l1.0,
                                            e2.index(),
                                            l2.0
                                        ),
                                        0.0,
                                        1.0,
                                    );
                                    // z >= x1 + x2 - 1.
                                    model.constrain(
                                        LinExpr::term(z, 1.0).plus(v1, -1.0).plus(v2, -1.0),
                                        Cmp::Ge,
                                        -1.0,
                                    );
                                    objective.add_term(z, c);
                                }
                                _ => {} // free conversion: no cost term
                            }
                        }
                    }
                }
            }
        }
    }

    model.set_objective(objective);
    let stats0 = (model.num_vars(), model.constraints.len());
    let res = solve_ilp(&model, opts);
    let stats = IlpStats {
        variables: stats0.0,
        constraints: stats0.1,
        nodes: res.nodes,
    };
    match res.status {
        IlpStatus::Infeasible => Ok((None, stats)),
        IlpStatus::Unbounded => unreachable!("objective is a sum of non-negative terms"),
        IlpStatus::NodeLimit | IlpStatus::Optimal => {
            let Some(sol) = res.x else {
                return Ok((None, stats));
            };
            let primary = extract_leg(net, state, s, t, &x, &sol)?;
            let backup = extract_leg(net, state, s, t, &y, &sol)?;
            Ok((Some(RobustRoute::ordered(primary, backup)), stats))
        }
    }
}

/// Walks the chosen `x`/`y` variables from `s` to `t` into a semilightpath.
#[allow(clippy::needless_range_loop)]
fn extract_leg(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    vars: &[Vec<Option<VarId>>],
    sol: &[f64],
) -> Result<Semilightpath, RoutingError> {
    let mut hops = Vec::new();
    let mut at = s;
    let mut guard = 0usize;
    while at != t {
        guard += 1;
        if guard > net.link_count() + 1 {
            return Err(RoutingError::RefinementInfeasible);
        }
        let mut found = None;
        'scan: for &e in net.graph().out_edges(at) {
            for (li, v) in vars[e.index()].iter().enumerate() {
                if let Some(v) = v {
                    if sol[v.0] > 0.5 {
                        found = Some(crate::semilightpath::Hop {
                            edge: e,
                            wavelength: crate::wavelength::Wavelength(li as u8),
                        });
                        break 'scan;
                    }
                }
            }
        }
        let hop = found.ok_or(RoutingError::RefinementInfeasible)?;
        at = net.endpoints(hop.edge).1;
        hops.push(hop);
    }
    let slp = Semilightpath::new(net, s, hops).map_err(|_| RoutingError::RefinementInfeasible)?;
    debug_assert!(slp.validate(net, state).is_ok());
    Ok(slp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::disjoint::RobustRouteFinder;
    use crate::network::NetworkBuilder;
    use crate::wavelength::WavelengthSet;

    fn diamond() -> WdmNetwork {
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.25 }))
            .collect();
        b.add_link(n[0], n[1], 1.0);
        b.add_link(n[1], n[3], 1.0);
        b.add_link(n[0], n[2], 2.0);
        b.add_link(n[2], n[3], 2.0);
        b.build()
    }

    #[test]
    fn exhaustive_finds_diamond_optimum() {
        let net = diamond();
        let st = ResidualState::fresh(&net);
        let (route, stats) = exhaustive_best_pair(&net, &st, NodeId(0), NodeId(3), 1000);
        let route = route.unwrap();
        assert_eq!(route.total_cost(), 6.0);
        assert!(route.is_edge_disjoint());
        assert_eq!(stats.paths_enumerated, 2);
        assert_eq!(stats.pairs_checked, 1);
        assert!(!stats.truncated);
    }

    #[test]
    fn ilp_agrees_with_exhaustive_on_diamond() {
        let net = diamond();
        let st = ResidualState::fresh(&net);
        let (route, stats) =
            ilp_best_pair(&net, &st, NodeId(0), NodeId(3), &IlpOptions::default()).unwrap();
        let route = route.unwrap();
        assert!((route.total_cost() - 6.0).abs() < 1e-6);
        assert!(route.is_edge_disjoint());
        assert!(stats.variables > 0);
        route.primary.validate(&net, &st).unwrap();
        route.backup.validate(&net, &st).unwrap();
    }

    #[test]
    fn infeasible_pair_detected_by_both() {
        // Single corridor: no two edge-disjoint paths.
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..3)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        b.add_link(n[0], n[1], 1.0);
        b.add_link(n[1], n[2], 1.0);
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let (r1, _) = exhaustive_best_pair(&net, &st, NodeId(0), NodeId(2), 100);
        assert!(r1.is_none());
        let (r2, _) =
            ilp_best_pair(&net, &st, NodeId(0), NodeId(2), &IlpOptions::default()).unwrap();
        assert!(r2.is_none());
    }

    #[test]
    fn hardness_gadget_shape_no_conversion() {
        // Lemma 1's regime: 2 wavelengths, no conversion. Wavelength
        // availability forces the two legs onto complementary channels.
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..4).map(|_| b.add_node(ConversionTable::None)).collect();
        // Two corridors; top has only λ0, bottom only λ1.
        b.add_link_with(n[0], n[1], 1.0, WavelengthSet::from_indices(&[0]));
        b.add_link_with(n[1], n[3], 1.0, WavelengthSet::from_indices(&[0]));
        b.add_link_with(n[0], n[2], 1.0, WavelengthSet::from_indices(&[1]));
        b.add_link_with(n[2], n[3], 1.0, WavelengthSet::from_indices(&[1]));
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let (route, _) = exhaustive_best_pair(&net, &st, NodeId(0), NodeId(3), 100);
        let route = route.unwrap();
        assert_eq!(route.total_cost(), 4.0);
        // One leg on λ0, the other on λ1.
        let l0 = route.primary.hops[0].wavelength;
        let l1 = route.backup.hops[0].wavelength;
        assert_ne!(l0, l1);
    }

    #[test]
    fn ilp_matches_exhaustive_with_conversion_costs() {
        // Asymmetric availability forces a conversion on one leg; the two
        // exact solvers must agree on the total.
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.5 }))
            .collect();
        b.add_link_with(n[0], n[1], 1.0, WavelengthSet::from_indices(&[0]));
        b.add_link_with(n[1], n[3], 1.0, WavelengthSet::from_indices(&[1]));
        b.add_link_with(n[0], n[2], 2.0, WavelengthSet::from_indices(&[0]));
        b.add_link_with(n[2], n[3], 2.0, WavelengthSet::from_indices(&[0]));
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let (ex, _) = exhaustive_best_pair(&net, &st, NodeId(0), NodeId(3), 100);
        let ex = ex.unwrap();
        let (ilp, _) =
            ilp_best_pair(&net, &st, NodeId(0), NodeId(3), &IlpOptions::default()).unwrap();
        let ilp = ilp.unwrap();
        // 2.5 (with conversion) + 4.0 = 6.5.
        assert!((ex.total_cost() - 6.5).abs() < 1e-9);
        assert!((ilp.total_cost() - ex.total_cost()).abs() < 1e-6);
    }

    #[test]
    fn approximation_never_beats_exact() {
        let net = diamond();
        let st = ResidualState::fresh(&net);
        let approx = RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(3))
            .unwrap();
        let (exact, _) = exhaustive_best_pair(&net, &st, NodeId(0), NodeId(3), 1000);
        let exact = exact.unwrap();
        assert!(approx.total_cost() >= exact.total_cost() - 1e-9);
        // Theorem 2 bound (premise holds: conversion 0.25 <= min link 1.0).
        assert!(net.satisfies_ratio_premise());
        assert!(approx.total_cost() <= 2.0 * exact.total_cost() + 1e-9);
    }

    #[test]
    fn truncation_is_reported() {
        let net = diamond();
        let st = ResidualState::fresh(&net);
        let (_, stats) = exhaustive_best_pair(&net, &st, NodeId(0), NodeId(3), 1);
        assert!(stats.truncated);
    }
}
