//! Semilightpaths: paths with a wavelength per link and conversions at
//! intermediate nodes (paper §2, Eq. 1).

use crate::network::{ResidualState, WdmNetwork};
use crate::wavelength::Wavelength;
use wdm_graph::{EdgeId, NodeId, Path};

/// One hop of a semilightpath: a physical link and the wavelength assigned
/// to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Hop {
    /// The physical link traversed.
    pub edge: EdgeId,
    /// The wavelength `λ(e) ∈ Λ(e)` assigned to it.
    pub wavelength: Wavelength,
}

/// Why a semilightpath fails validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SlpError {
    /// The edge sequence is not a connected `src -> dst` walk.
    Disconnected,
    /// A hop's wavelength is not available in the residual network.
    WavelengthUnavailable(Hop),
    /// An intermediate node cannot perform the required conversion.
    ConversionForbidden {
        /// Node where the conversion would happen.
        node: NodeId,
        /// Incoming wavelength.
        from: Wavelength,
        /// Outgoing wavelength.
        to: Wavelength,
    },
    /// The path is empty (`src == dst` requests are rejected upstream).
    Empty,
}

impl std::fmt::Display for SlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlpError::Disconnected => write!(f, "edge sequence is not a connected walk"),
            SlpError::WavelengthUnavailable(h) => {
                write!(f, "{} unavailable on {:?}", h.wavelength, h.edge)
            }
            SlpError::ConversionForbidden { node, from, to } => {
                write!(f, "conversion {from} -> {to} forbidden at {node:?}")
            }
            SlpError::Empty => write!(f, "empty semilightpath"),
        }
    }
}

impl std::error::Error for SlpError {}

/// A semilightpath `P`: hops `(e_i, λ_{j_i})` with conversions at
/// intermediate nodes, plus its cost per Eq. (1).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Semilightpath {
    /// Origin node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Hops in order.
    pub hops: Vec<Hop>,
    /// Total cost per Eq. (1) (traversal + conversion), cached at
    /// construction.
    pub cost: f64,
}

impl Semilightpath {
    /// Builds a semilightpath and computes its Eq. (1) cost.
    ///
    /// Returns an error if the hops do not form a walk, or a required
    /// conversion is forbidden. (Availability is *not* checked here — use
    /// [`Semilightpath::validate`] with a state for that — so that routes
    /// can outlive churn in the residual state.)
    pub fn new(net: &WdmNetwork, src: NodeId, hops: Vec<Hop>) -> Result<Self, SlpError> {
        if hops.is_empty() {
            return Err(SlpError::Empty);
        }
        let mut at = src;
        let mut cost = 0.0;
        let mut prev: Option<Hop> = None;
        for &hop in &hops {
            let (u, v) = net.endpoints(hop.edge);
            if u != at {
                return Err(SlpError::Disconnected);
            }
            if let Some(p) = prev {
                let conv = net.conversion_cost(u, p.wavelength, hop.wavelength).ok_or(
                    SlpError::ConversionForbidden {
                        node: u,
                        from: p.wavelength,
                        to: hop.wavelength,
                    },
                )?;
                cost += conv;
            }
            cost += net.link_cost(hop.edge, hop.wavelength);
            at = v;
            prev = Some(hop);
        }
        Ok(Self {
            src,
            dst: at,
            hops,
            cost,
        })
    }

    /// Number of hops.
    #[inline]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the path has no hops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The physical edge sequence.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.hops.iter().map(|h| h.edge)
    }

    /// The underlying physical [`Path`].
    pub fn physical_path(&self) -> Path {
        Path {
            src: self.src,
            dst: self.dst,
            edges: self.hops.iter().map(|h| h.edge).collect(),
        }
    }

    /// Recomputes the Eq. (1) cost from scratch (for audits).
    pub fn recompute_cost(&self, net: &WdmNetwork) -> f64 {
        let mut cost = 0.0;
        for (i, h) in self.hops.iter().enumerate() {
            cost += net.link_cost(h.edge, h.wavelength);
            if i + 1 < self.hops.len() {
                let next = self.hops[i + 1];
                let node = net.endpoints(h.edge).1;
                cost += net
                    .conversion_cost(node, h.wavelength, next.wavelength)
                    .expect("constructed semilightpath has legal conversions");
            }
        }
        cost
    }

    /// Number of actual wavelength conversions (`λ` changes) along the path.
    pub fn conversion_count(&self) -> usize {
        self.hops
            .windows(2)
            .filter(|w| w[0].wavelength != w[1].wavelength)
            .count()
    }

    /// Full validation against a residual state: connectivity, per-hop
    /// availability, conversion legality.
    pub fn validate(&self, net: &WdmNetwork, state: &ResidualState) -> Result<(), SlpError> {
        if self.hops.is_empty() {
            return Err(SlpError::Empty);
        }
        let mut at = self.src;
        let mut prev: Option<Hop> = None;
        for &hop in &self.hops {
            let (u, v) = net.endpoints(hop.edge);
            if u != at {
                return Err(SlpError::Disconnected);
            }
            if !state.is_avail(net, hop.edge, hop.wavelength) {
                return Err(SlpError::WavelengthUnavailable(hop));
            }
            if let Some(p) = prev {
                if net
                    .conversion_cost(u, p.wavelength, hop.wavelength)
                    .is_none()
                {
                    return Err(SlpError::ConversionForbidden {
                        node: u,
                        from: p.wavelength,
                        to: hop.wavelength,
                    });
                }
            }
            at = v;
            prev = Some(hop);
        }
        if at != self.dst {
            return Err(SlpError::Disconnected);
        }
        Ok(())
    }

    /// Whether the two semilightpaths share a physical link (the
    /// edge-disjointness predicate of §2: "they do not share any physical
    /// optic links").
    pub fn shares_edge_with(&self, other: &Semilightpath) -> bool {
        self.hops
            .iter()
            .any(|h| other.hops.iter().any(|o| o.edge == h.edge))
    }

    /// Occupies every hop's wavelength in `state`. On failure, rolls back
    /// the hops occupied so far and returns the error.
    pub fn occupy(
        &self,
        net: &WdmNetwork,
        state: &mut ResidualState,
    ) -> Result<(), crate::network::StateError> {
        for (i, h) in self.hops.iter().enumerate() {
            if let Err(e) = state.occupy(net, h.edge, h.wavelength) {
                for rb in &self.hops[..i] {
                    let _ = state.release(rb.edge, rb.wavelength);
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Releases every hop's wavelength in `state` (ignores hops already
    /// free, e.g. after a failure-triggered teardown).
    pub fn release(&self, state: &mut ResidualState) {
        for h in &self.hops {
            let _ = state.release(h.edge, h.wavelength);
        }
    }
}

/// A robust route: primary semilightpath plus edge-disjoint backup (the
/// paper's deliverable for one connection request).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RobustRoute {
    /// The working path.
    pub primary: Semilightpath,
    /// The protection path (edge-disjoint from `primary`).
    pub backup: Semilightpath,
}

impl RobustRoute {
    /// Orders the two legs so `primary.cost <= backup.cost`.
    pub fn ordered(a: Semilightpath, b: Semilightpath) -> Self {
        if a.cost <= b.cost {
            Self {
                primary: a,
                backup: b,
            }
        } else {
            Self {
                primary: b,
                backup: a,
            }
        }
    }

    /// Cost sum of the two legs — the §3 objective.
    pub fn total_cost(&self) -> f64 {
        self.primary.cost + self.backup.cost
    }

    /// Edge-disjointness check.
    pub fn is_edge_disjoint(&self) -> bool {
        !self.primary.shares_edge_with(&self.backup)
    }

    /// Occupies both legs (rolling back on failure).
    pub fn occupy(
        &self,
        net: &WdmNetwork,
        state: &mut ResidualState,
    ) -> Result<(), crate::network::StateError> {
        self.primary.occupy(net, state)?;
        if let Err(e) = self.backup.occupy(net, state) {
            self.primary.release(state);
            return Err(e);
        }
        Ok(())
    }

    /// Releases both legs.
    pub fn release(&self, state: &mut ResidualState) {
        self.primary.release(state);
        self.backup.release(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::network::NetworkBuilder;
    use crate::wavelength::WavelengthSet;

    /// 0 --e0--> 1 --e1--> 2, W = 2, full conversion cost 0.5 at node 1.
    fn line() -> WdmNetwork {
        let mut b = NetworkBuilder::new(2);
        let n0 = b.add_node(ConversionTable::Full { cost: 0.5 });
        let n1 = b.add_node(ConversionTable::Full { cost: 0.5 });
        let n2 = b.add_node(ConversionTable::Full { cost: 0.5 });
        b.add_link(n0, n1, 1.0);
        b.add_link(n1, n2, 2.0);
        b.build()
    }

    fn hop(e: u32, l: u8) -> Hop {
        Hop {
            edge: EdgeId(e),
            wavelength: Wavelength(l),
        }
    }

    #[test]
    fn eq1_cost_with_and_without_conversion() {
        let net = line();
        // Same wavelength: no conversion cost.
        let p = Semilightpath::new(&net, NodeId(0), vec![hop(0, 0), hop(1, 0)]).unwrap();
        assert_eq!(p.cost, 3.0);
        assert_eq!(p.conversion_count(), 0);
        // Switch at node 1: + 0.5.
        let q = Semilightpath::new(&net, NodeId(0), vec![hop(0, 0), hop(1, 1)]).unwrap();
        assert_eq!(q.cost, 3.5);
        assert_eq!(q.conversion_count(), 1);
        assert_eq!(q.recompute_cost(&net), q.cost);
        assert_eq!(q.dst, NodeId(2));
    }

    #[test]
    fn disconnected_hops_rejected() {
        let net = line();
        let err = Semilightpath::new(&net, NodeId(0), vec![hop(1, 0)]).unwrap_err();
        assert_eq!(err, SlpError::Disconnected);
        let err = Semilightpath::new(&net, NodeId(0), vec![]).unwrap_err();
        assert_eq!(err, SlpError::Empty);
    }

    #[test]
    fn forbidden_conversion_rejected() {
        let mut b = NetworkBuilder::new(2);
        let n0 = b.add_node(ConversionTable::None);
        let n1 = b.add_node(ConversionTable::None);
        let n2 = b.add_node(ConversionTable::None);
        b.add_link(n0, n1, 1.0);
        b.add_link(n1, n2, 1.0);
        let net = b.build();
        let err = Semilightpath::new(&net, NodeId(0), vec![hop(0, 0), hop(1, 1)]).unwrap_err();
        assert!(matches!(err, SlpError::ConversionForbidden { .. }));
        // Continuity is fine.
        assert!(Semilightpath::new(&net, NodeId(0), vec![hop(0, 1), hop(1, 1)]).is_ok());
    }

    #[test]
    fn validate_checks_availability() {
        let net = line();
        let mut st = ResidualState::fresh(&net);
        let p = Semilightpath::new(&net, NodeId(0), vec![hop(0, 0), hop(1, 0)]).unwrap();
        assert!(p.validate(&net, &st).is_ok());
        st.occupy(&net, EdgeId(1), Wavelength(0)).unwrap();
        assert!(matches!(
            p.validate(&net, &st),
            Err(SlpError::WavelengthUnavailable(_))
        ));
    }

    #[test]
    fn occupy_rolls_back_on_conflict() {
        let net = line();
        let mut st = ResidualState::fresh(&net);
        st.occupy(&net, EdgeId(1), Wavelength(0)).unwrap();
        let p = Semilightpath::new(&net, NodeId(0), vec![hop(0, 0), hop(1, 0)]).unwrap();
        assert!(p.occupy(&net, &mut st).is_err());
        // e0/λ0 must have been rolled back.
        assert!(st.is_avail(&net, EdgeId(0), Wavelength(0)));
    }

    #[test]
    fn robust_route_ordering_and_disjointness() {
        let mut b = NetworkBuilder::new(2);
        let n0 = b.add_node(ConversionTable::Full { cost: 0.1 });
        let n1 = b.add_node(ConversionTable::Full { cost: 0.1 });
        b.add_link_with(n0, n1, 5.0, WavelengthSet::full(2)); // e0
        b.add_link_with(n0, n1, 1.0, WavelengthSet::full(2)); // e1
        let net = b.build();
        let expensive = Semilightpath::new(&net, NodeId(0), vec![hop(0, 0)]).unwrap();
        let cheap = Semilightpath::new(&net, NodeId(0), vec![hop(1, 0)]).unwrap();
        let route = RobustRoute::ordered(expensive.clone(), cheap.clone());
        assert_eq!(route.primary, cheap);
        assert_eq!(route.total_cost(), 6.0);
        assert!(route.is_edge_disjoint());
        let clash = RobustRoute::ordered(expensive.clone(), expensive);
        assert!(!clash.is_edge_disjoint());
    }

    #[test]
    fn robust_route_occupy_release() {
        let net = line();
        // Parallel route on the other wavelength.
        let p = Semilightpath::new(&net, NodeId(0), vec![hop(0, 0), hop(1, 0)]).unwrap();
        let q = Semilightpath::new(&net, NodeId(0), vec![hop(0, 1), hop(1, 1)]).unwrap();
        // Not edge-disjoint (same fibres) but occupation still works on
        // different wavelengths.
        let mut st = ResidualState::fresh(&net);
        let route = RobustRoute::ordered(p, q);
        route.occupy(&net, &mut st).unwrap();
        assert!(st.avail(&net, EdgeId(0)).is_empty());
        route.release(&mut st);
        assert_eq!(st.avail(&net, EdgeId(0)).count(), 2);
    }
}
