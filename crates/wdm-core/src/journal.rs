//! Event-sourced transactional state: the append-only [`StateJournal`] and
//! the O(Δ) undo-log [`Txn`] over [`ResidualState`].
//!
//! The paper's dynamic model (§4) is a stream of lifecycle events —
//! connection setup with primary+backup semilightpaths, teardown, link
//! failure and repair. This module captures that stream explicitly:
//!
//! * [`NetEvent`] — one typed record per state mutation the simulator,
//!   batch provisioners or shared-backup pool perform;
//! * [`StateJournal`] — a checkpoint plus the ordered event log, with
//!   [`StateJournal::replay`] reconstructing the live state by driving the
//!   *same* [`ResidualState`] mutators in the same order. Replay from the
//!   in-memory checkpoint is therefore bit-identical to the live state,
//!   change clocks included;
//! * [`EventSink`] — the `Recorder`-style zero-cost hook: call sites guard
//!   payload construction on [`EventSink::enabled`], so the disabled
//!   [`NoopSink`] compiles to nothing;
//! * [`Txn`] — a speculative fork of a `ResidualState` that records an undo
//!   entry per successful mutation and rolls back in O(links touched)
//!   instead of cloning the whole state, restoring the change clocks
//!   exactly (each mutator ticks the clock once, so the reverse walk
//!   retracts one tick per entry).
//!
//! # Journal invariants
//!
//! Events are appended only at *successful* mutation sites. The mutators
//! tick the change clock once per success and not at all on failure, so a
//! journal replayed over its own checkpoint reproduces the clock lineage
//! tick-for-tick. Teardown and the release half of a reconfiguration use
//! the same ignore-errors semantics as [`Semilightpath::release`]
//! (releasing an unused channel is a no-op without a tick on both sides).
//!
//! [`Semilightpath::release`]: crate::semilightpath::Semilightpath::release

use crate::network::{ResidualState, StateError, WdmNetwork};
use crate::semilightpath::Hop;
use wdm_graph::EdgeId;

/// One lifecycle event in the network's mutation stream.
///
/// Channel lists are in *mutation order* (for a protected route: primary
/// hops then backup hops), so replay touches links in exactly the order the
/// live run did.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum NetEvent {
    /// A connection was provisioned: every listed channel was occupied.
    Provision {
        /// Caller-assigned connection id (sim connection id, batch demand
        /// index, or shared-provisioner id).
        id: u64,
        /// Occupied channels in occupation order.
        channels: Vec<Hop>,
    },
    /// A connection was torn down: every listed channel was released.
    Teardown {
        /// The id the matching [`NetEvent::Provision`] carried.
        id: u64,
        /// Released channels in release order.
        channels: Vec<Hop>,
    },
    /// A physical link failed.
    FailLink {
        /// The failed link.
        link: EdgeId,
    },
    /// A failed link was repaired.
    RepairLink {
        /// The repaired link.
        link: EdgeId,
    },
    /// A connection's channels moved: `released` were freed, then
    /// `occupied` were taken. Covers both load-driven reconfiguration and
    /// every failure-recovery branch (backup switchover, backup
    /// reprovisioning, passive re-route; `occupied` is empty when the
    /// connection was dropped).
    Reconfigure {
        /// The affected connection id.
        id: u64,
        /// Channels released, in release order.
        released: Vec<Hop>,
        /// Channels occupied afterwards, in occupation order.
        occupied: Vec<Hop>,
    },
}

impl NetEvent {
    /// Stable per-variant label (the replay telemetry keys on this).
    pub fn kind(&self) -> &'static str {
        match self {
            NetEvent::Provision { .. } => "provision",
            NetEvent::Teardown { .. } => "teardown",
            NetEvent::FailLink { .. } => "fail_link",
            NetEvent::RepairLink { .. } => "repair_link",
            NetEvent::Reconfigure { .. } => "reconfigure",
        }
    }
}

/// Where lifecycle events go. Mirrors the telemetry `Recorder` pattern:
/// generic call sites take `J: EventSink`, the default [`NoopSink`] is a
/// zero-sized no-op the optimizer erases, and payload construction is
/// guarded on [`enabled`](Self::enabled) so disabled journalling costs
/// nothing in the hot paths.
pub trait EventSink {
    /// Whether events are actually kept. Call sites skip building channel
    /// lists when this is `false`.
    fn enabled(&self) -> bool;

    /// Appends one event.
    fn record(&mut self, event: NetEvent);
}

/// The disabled sink: [`EventSink::enabled`] is `false`, records vanish.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _event: NetEvent) {}
}

impl<S: EventSink> EventSink for &mut S {
    #[inline]
    fn enabled(&self) -> bool {
        S::enabled(self)
    }

    #[inline]
    fn record(&mut self, event: NetEvent) {
        S::record(self, event);
    }
}

/// Replay failed: an event's mutation was rejected by the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the offending event in the journal.
    pub index: usize,
    /// The offending event's [`NetEvent::kind`].
    pub kind: &'static str,
    /// The mutation error.
    pub source: StateError,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replay diverged at event {} ({}): {}",
            self.index, self.kind, self.source
        )
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// An append-only event log over a checkpoint state.
///
/// `replay(checkpoint, events) ≡ live state`: replay drives the same
/// mutators in the same order, so from the in-memory checkpoint the result
/// is bit-identical, change clocks included. From a checkpoint that went
/// through the serialized form (which drops clocks) the payload is still
/// identical — [`ResidualState::semantic_hash`] is the cross-lineage check.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StateJournal {
    checkpoint: ResidualState,
    events: Vec<NetEvent>,
}

impl StateJournal {
    /// Starts an empty journal over `checkpoint`.
    pub fn new(checkpoint: ResidualState) -> Self {
        Self {
            checkpoint,
            events: Vec::new(),
        }
    }

    /// Reassembles a journal from a checkpoint and a recorded event log
    /// (the CLI uses this after reading a journal file).
    pub fn from_parts(checkpoint: ResidualState, events: Vec<NetEvent>) -> Self {
        Self { checkpoint, events }
    }

    /// The checkpoint state replay starts from.
    pub fn checkpoint(&self) -> &ResidualState {
        &self.checkpoint
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[NetEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Reconstructs the state by applying every event to a copy of the
    /// checkpoint through the ordinary mutators.
    pub fn replay(&self, net: &WdmNetwork) -> Result<ResidualState, ReplayError> {
        let mut st = self.checkpoint.clone();
        for (index, event) in self.events.iter().enumerate() {
            apply_event(&mut st, net, event).map_err(|source| ReplayError {
                index,
                kind: event.kind(),
                source,
            })?;
        }
        Ok(st)
    }
}

impl EventSink for StateJournal {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, event: NetEvent) {
        self.events.push(event);
    }
}

/// Applies one event. Occupations are strict (the live run's succeeded, so
/// a rejection means the journal and state diverged); releases ignore
/// errors exactly like the live teardown path does.
///
/// Public so streaming replays (the daemon's write-ahead log, which
/// interleaves events with checkpoint records) apply events one at a time
/// with exactly [`StateJournal::replay`]'s semantics.
pub fn apply_event(
    st: &mut ResidualState,
    net: &WdmNetwork,
    event: &NetEvent,
) -> Result<(), StateError> {
    match event {
        NetEvent::Provision { channels, .. } => {
            for h in channels {
                st.occupy(net, h.edge, h.wavelength)?;
            }
        }
        NetEvent::Teardown { channels, .. } => {
            for h in channels {
                let _ = st.release(h.edge, h.wavelength);
            }
        }
        NetEvent::FailLink { link } => st.fail_link(*link),
        NetEvent::RepairLink { link } => st.repair_link(*link),
        NetEvent::Reconfigure {
            released, occupied, ..
        } => {
            for h in released {
                let _ = st.release(h.edge, h.wavelength);
            }
            for h in occupied {
                st.occupy(net, h.edge, h.wavelength)?;
            }
        }
    }
    Ok(())
}

/// Undo-log entry: enough to revert one successful mutation, clock stamp
/// included.
#[derive(Debug, Clone, Copy)]
enum Undo {
    Occupied {
        e: EdgeId,
        l: crate::wavelength::Wavelength,
        prev_link_clock: u64,
    },
    Released {
        e: EdgeId,
        l: crate::wavelength::Wavelength,
        prev_link_clock: u64,
    },
    SetFailed {
        e: EdgeId,
        was_failed: bool,
        prev_link_clock: u64,
    },
}

/// A transactional fork of a [`ResidualState`].
///
/// Mutations go through the ordinary mutators and push an undo entry per
/// success; [`rollback`](Self::rollback) walks the log in reverse and
/// restores the state **bit-identically** — payload, per-link clock stamps
/// and the global clock (each mutator ticks it exactly once, so the walk
/// retracts one tick per entry). Cost is O(links touched), which is what
/// lets speculative windows and threshold probes fork without cloning the
/// O(m) `used`/`link_clock` vectors.
///
/// Note for warm [`RouterCtx`] holders: a rollback moves the clock
/// *backwards*, and interleaved later mutations can re-advance it past a
/// consumer's sync point, masking the regression detector — invalidate any
/// context that observed the transactional state before routing again.
///
/// [`RouterCtx`]: crate::aux_engine::RouterCtx
#[derive(Debug)]
pub struct Txn<'a> {
    state: &'a mut ResidualState,
    undo: Vec<Undo>,
}

impl<'a> Txn<'a> {
    /// Opens a transaction over `state`.
    pub fn begin(state: &'a mut ResidualState) -> Self {
        Self {
            state,
            undo: Vec::new(),
        }
    }

    /// Read access to the in-progress state (routing probes borrow this).
    #[inline]
    pub fn state(&self) -> &ResidualState {
        self.state
    }

    /// Number of successful mutations so far (the Δ a rollback walks).
    #[inline]
    pub fn touched(&self) -> usize {
        self.undo.len()
    }

    /// Transactional [`ResidualState::occupy`].
    pub fn occupy(
        &mut self,
        net: &WdmNetwork,
        e: EdgeId,
        l: crate::wavelength::Wavelength,
    ) -> Result<(), StateError> {
        let prev_link_clock = self.state.link_change_clock(e);
        self.state.occupy(net, e, l)?;
        self.undo.push(Undo::Occupied {
            e,
            l,
            prev_link_clock,
        });
        Ok(())
    }

    /// Transactional [`ResidualState::release`].
    pub fn release(
        &mut self,
        e: EdgeId,
        l: crate::wavelength::Wavelength,
    ) -> Result<(), StateError> {
        let prev_link_clock = self.state.link_change_clock(e);
        self.state.release(e, l)?;
        self.undo.push(Undo::Released {
            e,
            l,
            prev_link_clock,
        });
        Ok(())
    }

    /// Transactional [`ResidualState::fail_link`].
    pub fn fail_link(&mut self, e: EdgeId) {
        let prev_link_clock = self.state.link_change_clock(e);
        let was_failed = self.state.is_failed(e);
        self.state.fail_link(e);
        self.undo.push(Undo::SetFailed {
            e,
            was_failed,
            prev_link_clock,
        });
    }

    /// Transactional [`ResidualState::repair_link`].
    pub fn repair_link(&mut self, e: EdgeId) {
        let prev_link_clock = self.state.link_change_clock(e);
        let was_failed = self.state.is_failed(e);
        self.state.repair_link(e);
        self.undo.push(Undo::SetFailed {
            e,
            was_failed,
            prev_link_clock,
        });
    }

    /// Occupies `hops` in order, rolling back the hops occupied so far on
    /// the first failure (mirrors [`Semilightpath::occupy`], but the
    /// partial rollback stays inside this transaction's log, so the clocks
    /// rewind exactly).
    ///
    /// [`Semilightpath::occupy`]: crate::semilightpath::Semilightpath::occupy
    pub fn occupy_hops(&mut self, net: &WdmNetwork, hops: &[Hop]) -> Result<(), StateError> {
        let mark = self.undo.len();
        for h in hops {
            if let Err(err) = self.occupy(net, h.edge, h.wavelength) {
                self.unwind_to(mark);
                return Err(err);
            }
        }
        Ok(())
    }

    /// Releases `hops` in order, ignoring unused channels (the
    /// [`Semilightpath::release`] semantics).
    ///
    /// [`Semilightpath::release`]: crate::semilightpath::Semilightpath::release
    pub fn release_hops(&mut self, hops: &[Hop]) {
        for h in hops {
            let _ = self.release(h.edge, h.wavelength);
        }
    }

    /// Keeps every mutation.
    pub fn commit(self) {
        // Dropping the undo log is the commit.
    }

    /// Reverts every mutation, restoring the pre-transaction state
    /// bit-identically (clocks included).
    pub fn rollback(mut self) {
        self.unwind_to(0);
    }

    fn unwind_to(&mut self, mark: usize) {
        while self.undo.len() > mark {
            match self.undo.pop().expect("len > mark") {
                Undo::Occupied {
                    e,
                    l,
                    prev_link_clock,
                } => self.state.undo_occupy(e, l, prev_link_clock),
                Undo::Released {
                    e,
                    l,
                    prev_link_clock,
                } => self.state.undo_release(e, l, prev_link_clock),
                Undo::SetFailed {
                    e,
                    was_failed,
                    prev_link_clock,
                } => self.state.undo_set_failed(e, was_failed, prev_link_clock),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::network::NetworkBuilder;
    use crate::wavelength::Wavelength;

    fn square() -> WdmNetwork {
        let mut b = NetworkBuilder::new(4);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.5 }))
            .collect();
        for i in 0..4 {
            b.add_link(n[i], n[(i + 1) % 4], 1.0 + i as f64);
            b.add_link(n[(i + 1) % 4], n[i], 5.0 + i as f64);
        }
        b.build()
    }

    fn assert_bit_identical(a: &ResidualState, b: &ResidualState, net: &WdmNetwork) {
        assert_eq!(a, b, "payload");
        assert_eq!(a.change_clock(), b.change_clock(), "global clock");
        for i in 0..net.link_count() {
            let e = EdgeId::from(i);
            assert_eq!(
                a.link_change_clock(e),
                b.link_change_clock(e),
                "link clock {i}"
            );
        }
    }

    #[test]
    fn txn_rollback_restores_state_and_clocks_exactly() {
        let net = square();
        let mut st = ResidualState::fresh(&net);
        st.occupy(&net, EdgeId(0), Wavelength(0)).unwrap();
        st.fail_link(EdgeId(3));
        let before = st.clone();

        let mut txn = Txn::begin(&mut st);
        txn.occupy(&net, EdgeId(1), Wavelength(2)).unwrap();
        txn.release(EdgeId(0), Wavelength(0)).unwrap();
        txn.repair_link(EdgeId(3));
        txn.fail_link(EdgeId(2));
        // A failed mutation must not leave an undo entry.
        assert_eq!(
            txn.occupy(&net, EdgeId(2), Wavelength(0)),
            Err(StateError::LinkFailed)
        );
        assert_eq!(txn.touched(), 4);
        txn.rollback();

        assert_bit_identical(&st, &before, &net);
    }

    #[test]
    fn txn_commit_matches_direct_mutation() {
        let net = square();
        let mut direct = ResidualState::fresh(&net);
        let mut txd = ResidualState::fresh(&net);

        direct.occupy(&net, EdgeId(0), Wavelength(1)).unwrap();
        direct.fail_link(EdgeId(5));

        let mut txn = Txn::begin(&mut txd);
        txn.occupy(&net, EdgeId(0), Wavelength(1)).unwrap();
        txn.fail_link(EdgeId(5));
        txn.commit();

        assert_bit_identical(&direct, &txd, &net);
    }

    #[test]
    fn txn_occupy_hops_unwinds_partial_failure() {
        let net = square();
        let mut st = ResidualState::fresh(&net);
        st.occupy(&net, EdgeId(2), Wavelength(0)).unwrap();
        let before = st.clone();

        let hops = vec![
            Hop {
                edge: EdgeId(0),
                wavelength: Wavelength(0),
            },
            Hop {
                edge: EdgeId(2),
                wavelength: Wavelength(0), // already used -> fails
            },
        ];
        let mut txn = Txn::begin(&mut st);
        assert_eq!(txn.occupy_hops(&net, &hops), Err(StateError::AlreadyUsed));
        assert_eq!(txn.touched(), 0, "partial occupation unwound");
        txn.rollback();
        assert_bit_identical(&st, &before, &net);
    }

    #[test]
    fn journal_replay_is_bit_identical_to_live() {
        let net = square();
        let mut live = ResidualState::fresh(&net);
        let mut journal = StateJournal::new(live.clone());

        let hops = |pairs: &[(u32, u8)]| -> Vec<Hop> {
            pairs
                .iter()
                .map(|&(e, l)| Hop {
                    edge: EdgeId(e),
                    wavelength: Wavelength(l),
                })
                .collect()
        };

        let p = hops(&[(0, 0), (2, 1)]);
        for h in &p {
            live.occupy(&net, h.edge, h.wavelength).unwrap();
        }
        journal.record(NetEvent::Provision {
            id: 1,
            channels: p.clone(),
        });

        live.fail_link(EdgeId(2));
        journal.record(NetEvent::FailLink { link: EdgeId(2) });

        // Move connection 1 off the failed link.
        let moved = hops(&[(4, 0)]);
        for h in &p {
            let _ = live.release(h.edge, h.wavelength);
        }
        for h in &moved {
            live.occupy(&net, h.edge, h.wavelength).unwrap();
        }
        journal.record(NetEvent::Reconfigure {
            id: 1,
            released: p,
            occupied: moved.clone(),
        });

        live.repair_link(EdgeId(2));
        journal.record(NetEvent::RepairLink { link: EdgeId(2) });

        for h in &moved {
            let _ = live.release(h.edge, h.wavelength);
        }
        journal.record(NetEvent::Teardown {
            id: 1,
            channels: moved,
        });

        let replayed = journal.replay(&net).expect("replay succeeds");
        assert_bit_identical(&replayed, &live, &net);
        assert_eq!(replayed.semantic_hash(), live.semantic_hash());
    }

    #[test]
    fn journal_replay_rejects_divergence() {
        let net = square();
        let st = ResidualState::fresh(&net);
        let mut journal = StateJournal::new(st);
        let ch = vec![Hop {
            edge: EdgeId(0),
            wavelength: Wavelength(0),
        }];
        journal.record(NetEvent::Provision {
            id: 0,
            channels: ch.clone(),
        });
        journal.record(NetEvent::Provision {
            id: 1,
            channels: ch,
        });
        let err = journal.replay(&net).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.kind, "provision");
        assert_eq!(err.source, StateError::AlreadyUsed);
    }

    #[test]
    fn journal_survives_serde_round_trip() {
        let net = square();
        let mut journal = StateJournal::new(ResidualState::fresh(&net));
        journal.record(NetEvent::Provision {
            id: 7,
            channels: vec![Hop {
                edge: EdgeId(1),
                wavelength: Wavelength(3),
            }],
        });
        journal.record(NetEvent::FailLink { link: EdgeId(0) });
        let v = serde::Serialize::to_value(&journal);
        let back: StateJournal = serde::Deserialize::from_value(&v).expect("round trip");
        assert_eq!(back.events(), journal.events());
        let a = journal.replay(&net).unwrap();
        let b = back.replay(&net).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.semantic_hash(), b.semantic_hash());
    }

    #[test]
    fn noop_sink_is_disabled() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.record(NetEvent::FailLink { link: EdgeId(0) });
        let mut j = StateJournal::new(ResidualState::fresh(&square()));
        // The `&mut S` blanket impl is what lets call sites thread a journal
        // down by reference; probe it through a generic consumer.
        fn probe<J: EventSink>(j: J) -> bool {
            j.enabled()
        }
        assert!(probe(&mut j));
        assert!(j.is_empty());
        assert_eq!(j.len(), 0);
    }
}
