//! The §3.3 approximation algorithm for the optimal edge-disjoint
//! semilightpath problem.
//!
//! Pipeline:
//! 1. build the auxiliary graph `G'` over the residual network;
//! 2. run Suurballe's algorithm (`Find_Two_Paths`) on `G'` from `s'` to
//!    `t''`, minimising the summed average-cost weights;
//! 3. map each auxiliary path `P_i` back to its induced physical subgraph
//!    `G_i` and run the Liang–Shen optimal-semilightpath algorithm inside it
//!    (the Lemma 2 refinement, which can only improve on the naive mapping
//!    and preserves edge-disjointness);
//! 4. the cheaper leg becomes the primary, the other the backup.
//!
//! Guarantees (under the paper's assumptions): Lemma 2 dominance over the
//! unrefined mapping, Theorem 1 running time, Theorem 2 cost within 2× of
//! the exact optimum when conversion at a node costs no more than any
//! incident link.

use crate::aux_engine::RouterCtx;
use crate::aux_graph::AuxSpec;
use crate::error::RoutingError;
use crate::network::{ResidualState, WdmNetwork};
use crate::optimal_slp::{assign_wavelengths_on_path, optimal_semilightpath_filtered};
use crate::semilightpath::{RobustRoute, Semilightpath};
use wdm_graph::{EdgeId, NodeId};
use wdm_telemetry::{NoopRecorder, NoopTracer, Phase, Recorder, Tracer};

/// Diagnostics from one §3.3 run, used by the Lemma 2 / Theorem 2
/// experiments.
#[derive(Debug, Clone)]
pub struct DisjointDiagnostics {
    /// `ω(P_1) + ω(P_2)`: the Suurballe objective on `G'` — by Lemma 2 this
    /// equals the cost of the *unrefined* corresponding semilightpaths.
    pub aux_cost: f64,
    /// Cost after the Liang–Shen refinement (`C(P'_1) + C(P'_2)`).
    pub refined_cost: f64,
    /// Physical edges of the two auxiliary paths.
    pub aux_paths: [Vec<EdgeId>; 2],
}

/// The residual-state *dependency footprint* of one routing decision: what
/// the computation read, reported so an optimistic scheduler
/// (`wdm-sim`'s speculative batch engine) can decide whether a result
/// speculated against a snapshot is still valid after later commits.
///
/// Link granularity is deliberate. The auxiliary-graph weight and the
/// enablement of a link, and the Lemma 2 wavelength DP along a leg, all read
/// the link's whole availability set — so *any* channel change on a route's
/// link can flip the decision, and channel-disjointness alone is not enough
/// for bit-equality with a serial run.
#[derive(Debug, Clone, Default)]
pub struct RouteFootprint {
    /// Physical links whose availability the decision read (sorted,
    /// deduplicated).
    pub links: Vec<EdgeId>,
    /// The accepted §4.1 threshold, for decisions that came out of a
    /// MinCog/joint load search. `Some` marks the decision as *globally*
    /// load-dependent — the threshold ladder's bounds read every link's
    /// load, so no link-disjointness argument can revalidate it.
    pub threshold: Option<f64>,
}

impl RouteFootprint {
    /// Footprint of a cost-only §3.3 route: the links it traverses.
    pub fn of_route(route: &RobustRoute) -> Self {
        Self::of_links(route.primary.edges().chain(route.backup.edges()))
    }

    /// Footprint of an unprotected semilightpath.
    pub fn of_semilightpath(slp: &Semilightpath) -> Self {
        Self::of_links(slp.edges())
    }

    /// Footprint over an explicit link set.
    pub fn of_links(links: impl IntoIterator<Item = EdgeId>) -> Self {
        let mut links: Vec<EdgeId> = links.into_iter().collect();
        links.sort_unstable_by_key(|e| e.index());
        links.dedup();
        Self {
            links,
            threshold: None,
        }
    }

    /// Whether the decision depends on link `e`.
    pub fn depends_on(&self, e: EdgeId) -> bool {
        self.links
            .binary_search_by_key(&e.index(), |x| x.index())
            .is_ok()
    }

    /// Whether the decision can be revalidated by link-disjointness at all
    /// (`false` for load-search results, whose threshold read every link).
    pub fn is_link_local(&self) -> bool {
        self.threshold.is_none()
    }
}

/// The §3.3 route finder.
///
/// Internally it owns a [`RouterCtx`]: the `G'` skeleton is built on the
/// first [`RobustRouteFinder::find`] and subsequent requests only refresh
/// the links the residual state actually changed (and re-run the searches
/// in preallocated buffers), so a long-lived finder routes in near-zero
/// allocations per request. `find` therefore takes `&mut self`; create one
/// finder and reuse it.
///
/// ```
/// use wdm_core::prelude::*;
/// use wdm_graph::NodeId;
///
/// let net = NetworkBuilder::nsfnet(8).build();
/// let mut state = ResidualState::fresh(&net);
/// let route = RobustRouteFinder::new(&net)
///     .find(&state, NodeId(0), NodeId(13))
///     .expect("NSFNET is 2-edge-connected");
/// assert!(route.is_edge_disjoint());
/// route.occupy(&net, &mut state).unwrap();   // reserve the channels
/// assert!(state.network_load(&net) > 0.0);
/// route.release(&mut state);                 // tear down
/// assert_eq!(state.network_load(&net), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RobustRouteFinder<'a, R: Recorder = NoopRecorder, T: Tracer = NoopTracer> {
    net: &'a WdmNetwork,
    ctx: RouterCtx<R, T>,
}

impl<'a> RobustRouteFinder<'a> {
    /// Creates an uninstrumented finder over `net`.
    pub fn new(net: &'a WdmNetwork) -> Self {
        Self {
            net,
            ctx: RouterCtx::new(),
        }
    }
}

impl<'a, R: Recorder> RobustRouteFinder<'a, R> {
    /// Creates a finder over `net` whose searches report into `recorder`.
    pub fn with_recorder(net: &'a WdmNetwork, recorder: R) -> Self {
        Self {
            net,
            ctx: RouterCtx::with_recorder(recorder),
        }
    }
}

impl<'a, R: Recorder, T: Tracer> RobustRouteFinder<'a, R, T> {
    /// Creates a finder over `net` reporting into `recorder` with pipeline
    /// phases timed into `tracer`.
    pub fn with_recorder_and_tracer(net: &'a WdmNetwork, recorder: R, tracer: T) -> Self {
        Self {
            net,
            ctx: RouterCtx::with_recorder_and_tracer(recorder, tracer),
        }
    }

    /// Finds a primary + edge-disjoint backup semilightpath pair for the
    /// request `(s, t)` under the residual `state`.
    pub fn find(
        &mut self,
        state: &ResidualState,
        s: NodeId,
        t: NodeId,
    ) -> Result<RobustRoute, RoutingError> {
        self.find_with_diagnostics(state, s, t).map(|(r, _)| r)
    }

    /// [`RobustRouteFinder::find`] plus the Lemma 2 diagnostics.
    pub fn find_with_diagnostics(
        &mut self,
        state: &ResidualState,
        s: NodeId,
        t: NodeId,
    ) -> Result<(RobustRoute, DisjointDiagnostics), RoutingError> {
        robust_route_ctx(&mut self.ctx, self.net, state, s, t)
    }
}

/// The §3.3 pipeline over a caller-owned [`RouterCtx`] — the hot-path entry
/// point shared by [`RobustRouteFinder`], the simulator's cost-only policy
/// and the benchmarks.
pub fn robust_route_ctx<R: Recorder, T: Tracer>(
    ctx: &mut RouterCtx<R, T>,
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
) -> Result<(RobustRoute, DisjointDiagnostics), RoutingError> {
    if s == t {
        return Err(RoutingError::DegenerateRequest);
    }
    let (pair, [phys_a, phys_b]) = ctx
        .disjoint_pair(net, state, s, t, AuxSpec::g_prime())
        .ok_or(RoutingError::NoDisjointPair)?;

    // The refine span covers the Lemma 2 refinement of both legs *and*
    // the route assembly below, so the serve-path trace tiles without a
    // gap between refinement and the commit handoff.
    let tracing = ctx.tracer().enabled();
    let refine_t0 = ctx.tracer().now_ns();
    let leg_a = refine_leg(net, state, s, t, &phys_a);
    let leg_b = refine_leg(net, state, s, t, &phys_b);
    let (leg_a, leg_b) = match (leg_a, leg_b) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            if tracing {
                ctx.tracer().record(Phase::Refine, refine_t0);
            }
            return Err(e);
        }
    };
    debug_assert!(
        !leg_a.shares_edge_with(&leg_b),
        "Lemma 2: refinement must preserve edge-disjointness"
    );
    let refined_cost = leg_a.cost + leg_b.cost;
    let route = RobustRoute::ordered(leg_a, leg_b);
    let result = (
        route,
        DisjointDiagnostics {
            aux_cost: pair.total_cost,
            refined_cost,
            aux_paths: [phys_a, phys_b],
        },
    );
    if tracing {
        ctx.tracer().record(Phase::Refine, refine_t0);
    }
    Ok(result)
}

/// Runs the Liang–Shen search restricted to the induced subgraph `G_i` of
/// one auxiliary path (its physical edge set).
pub(crate) fn refine_leg(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    phys_edges: &[EdgeId],
) -> Result<Semilightpath, RoutingError> {
    // The induced subgraph of an auxiliary s'-t'' path is a single physical
    // path, so the O(L·W²) DP suffices; fall back to the general filtered
    // search defensively (e.g. if the mapping ever produced a non-path set).
    if let Some(slp) = assign_wavelengths_on_path(net, state, s, phys_edges) {
        return Ok(slp);
    }
    let mut allowed = vec![false; net.link_count()];
    for &e in phys_edges {
        allowed[e.index()] = true;
    }
    optimal_semilightpath_filtered(net, state, s, t, |e| allowed[e.index()])
        .ok_or(RoutingError::RefinementInfeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::network::NetworkBuilder;
    use crate::wavelength::{Wavelength, WavelengthSet};

    /// Diamond with enough wavelengths for easy disjoint routing.
    fn diamond(w: usize, conv_cost: f64) -> WdmNetwork {
        let mut b = NetworkBuilder::new(w);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: conv_cost }))
            .collect();
        b.add_link(n[0], n[1], 1.0); // e0
        b.add_link(n[1], n[3], 1.0); // e1
        b.add_link(n[0], n[2], 2.0); // e2
        b.add_link(n[2], n[3], 2.0); // e3
        b.build()
    }

    #[test]
    fn finds_disjoint_pair_on_diamond() {
        let net = diamond(2, 0.5);
        let st = ResidualState::fresh(&net);
        let (route, diag) = RobustRouteFinder::new(&net)
            .find_with_diagnostics(&st, NodeId(0), NodeId(3))
            .unwrap();
        assert!(route.is_edge_disjoint());
        assert_eq!(route.primary.cost, 2.0);
        assert_eq!(route.backup.cost, 4.0);
        assert_eq!(route.total_cost(), 6.0);
        // G' charges each intermediate node the average conversion cost
        // (pairs (0,0)=0, (0,1)=.5, (1,0)=.5, (1,1)=0 -> 0.25), one per leg;
        // the refinement stays on one wavelength and drops both charges.
        assert!((diag.aux_cost - 6.5).abs() < 1e-9);
        assert!((diag.refined_cost - 6.0).abs() < 1e-9);
        assert!(diag.refined_cost <= diag.aux_cost, "Lemma 2");
        route.primary.validate(&net, &st).unwrap();
        route.backup.validate(&net, &st).unwrap();
    }

    #[test]
    fn rejects_degenerate_and_disconnected() {
        let net = diamond(2, 0.5);
        let st = ResidualState::fresh(&net);
        let mut f = RobustRouteFinder::new(&net);
        assert_eq!(
            f.find(&st, NodeId(0), NodeId(0)).unwrap_err(),
            RoutingError::DegenerateRequest
        );
        // Node 3 has no edges back to 0: no pair from 3 to 0.
        assert_eq!(
            f.find(&st, NodeId(3), NodeId(0)).unwrap_err(),
            RoutingError::NoDisjointPair
        );
    }

    #[test]
    fn trap_topology_resolved_through_aux_graph() {
        // Same trap as the plain-graph Suurballe test, now as a WDM net.
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        b.add_link(n[0], n[1], 1.0);
        b.add_link(n[1], n[2], 1.0);
        b.add_link(n[2], n[3], 1.0);
        b.add_link(n[0], n[2], 10.0);
        b.add_link(n[1], n[3], 10.0);
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let route = RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(3))
            .unwrap();
        assert!(route.is_edge_disjoint());
        assert_eq!(route.total_cost(), 22.0);
    }

    #[test]
    fn refinement_beats_average_with_nonuniform_costs() {
        // Two parallel 1-hop corridors; each link has per-λ costs {1, 9}.
        // Average weight in G' is 5 per link, but refinement picks λ0 = 1.
        let mut b = NetworkBuilder::new(2);
        let n0 = b.add_node(ConversionTable::Full { cost: 0.0 });
        let n1 = b.add_node(ConversionTable::Full { cost: 0.0 });
        b.add_link_per_lambda(n0, n1, WavelengthSet::full(2), vec![1.0, 9.0]);
        b.add_link_per_lambda(n0, n1, WavelengthSet::full(2), vec![1.0, 9.0]);
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let (route, diag) = RobustRouteFinder::new(&net)
            .find_with_diagnostics(&st, NodeId(0), NodeId(1))
            .unwrap();
        assert!((diag.aux_cost - 10.0).abs() < 1e-9);
        assert_eq!(diag.refined_cost, 2.0);
        assert!(diag.refined_cost <= diag.aux_cost, "Lemma 2");
        assert_eq!(route.total_cost(), 2.0);
        assert_eq!(route.primary.hops[0].wavelength, Wavelength(0));
    }

    #[test]
    fn wavelength_exhaustion_blocks_the_pair() {
        let net = diamond(1, 0.0); // single wavelength
        let mut st = ResidualState::fresh(&net);
        st.occupy(&net, EdgeId(1), Wavelength(0)).unwrap(); // kill top route
        let err = RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(3))
            .unwrap_err();
        assert_eq!(err, RoutingError::NoDisjointPair);
    }

    #[test]
    fn respects_failed_links() {
        let net = diamond(2, 0.5);
        let mut st = ResidualState::fresh(&net);
        st.fail_link(EdgeId(0));
        let err = RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(3))
            .unwrap_err();
        assert_eq!(err, RoutingError::NoDisjointPair);
        st.repair_link(EdgeId(0));
        assert!(RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(3))
            .is_ok());
    }

    #[test]
    fn parallel_fibres_form_a_pair() {
        let mut b = NetworkBuilder::new(2);
        let n0 = b.add_node(ConversionTable::Full { cost: 0.0 });
        let n1 = b.add_node(ConversionTable::Full { cost: 0.0 });
        b.add_link(n0, n1, 1.0);
        b.add_link(n0, n1, 4.0);
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let route = RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(1))
            .unwrap();
        assert!(route.is_edge_disjoint());
        assert_eq!(route.total_cost(), 5.0);
    }
}
