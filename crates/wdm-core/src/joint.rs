//! §4.2: optimising the network load *and* the routing cost together.
//!
//! Two phases:
//! 1. run [`find_two_paths_mincog`](crate::mincog::find_two_paths_mincog)
//!    to obtain the smallest feasible load threshold `ϑ`;
//! 2. rebuild the thresholded auxiliary graph as `G_rc(ϑ)` — same admitted
//!    links, but **cost** weights (average traversal over `N(e)`, average
//!    conversion) — run Suurballe on it, and refine each path with the
//!    Liang–Shen algorithm.
//!
//! The result honours the load budget discovered in phase 1 while choosing
//! the cheapest pair among routes that fit it — the paper's headline
//! "network load and RWA considered simultaneously".

use crate::aux_engine::RouterCtx;
use crate::aux_graph::AuxSpec;
use crate::disjoint::refine_leg;
use crate::error::RoutingError;
use crate::mincog::{find_two_paths_mincog_ctx, route_bottleneck_load};
use crate::network::{ResidualState, WdmNetwork};
use crate::semilightpath::RobustRoute;
use wdm_graph::NodeId;
use wdm_telemetry::{Recorder, Tracer};

/// Result of the §4.2 joint optimisation.
#[derive(Debug, Clone)]
pub struct JointOutcome {
    /// The load threshold accepted in phase 1.
    pub threshold: f64,
    /// The final (refined) route from phase 2.
    pub route: RobustRoute,
    /// Bottleneck prospective load over the final route's links.
    pub bottleneck_load: f64,
    /// Phase-1 probes (G_c constructions).
    pub phase1_probes: usize,
}

/// Runs the two-phase §4.2 algorithm with exponential base `a` for phase 1.
pub fn find_two_paths_joint(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    a: f64,
) -> Result<JointOutcome, RoutingError> {
    find_two_paths_joint_with(&mut RouterCtx::new(), net, state, s, t, a, false)
}

/// [`find_two_paths_joint`] over a caller-owned [`RouterCtx`]: both phases
/// run on incrementally maintained auxiliary-graph engines (`G_c` for the
/// threshold search, `G_rc` for the cost pass) that persist across requests.
pub fn find_two_paths_joint_ctx<R: Recorder, T: Tracer>(
    ctx: &mut RouterCtx<R, T>,
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    a: f64,
) -> Result<JointOutcome, RoutingError> {
    find_two_paths_joint_with(ctx, net, state, s, t, a, false)
}

/// [`find_two_paths_joint`] with the §4.2 `G_rc` traversal weights exactly
/// as printed (`/N(e)` instead of `/|Λ_avail(e)|`). See
/// [`AuxSpec::g_rc_as_printed`]; used by the ablation experiment.
pub fn find_two_paths_joint_as_printed(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    a: f64,
) -> Result<JointOutcome, RoutingError> {
    find_two_paths_joint_with(&mut RouterCtx::new(), net, state, s, t, a, true)
}

/// [`find_two_paths_joint_as_printed`] over a caller-owned [`RouterCtx`].
pub fn find_two_paths_joint_as_printed_ctx<R: Recorder, T: Tracer>(
    ctx: &mut RouterCtx<R, T>,
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    a: f64,
) -> Result<JointOutcome, RoutingError> {
    find_two_paths_joint_with(ctx, net, state, s, t, a, true)
}

fn find_two_paths_joint_with<R: Recorder, T: Tracer>(
    ctx: &mut RouterCtx<R, T>,
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    a: f64,
    as_printed: bool,
) -> Result<JointOutcome, RoutingError> {
    // Phase 1: minimal feasible threshold.
    let phase1 = find_two_paths_mincog_ctx(ctx, net, state, s, t, a)?;

    // Phase 2: cheapest pair within the threshold (G_rc weights).
    let spec = if as_printed {
        AuxSpec::g_rc_as_printed(phase1.threshold)
    } else {
        AuxSpec::g_rc(phase1.threshold)
    };
    // Phase 1 proved feasibility at this threshold, so the pair search
    // cannot fail; defensive fallback keeps the phase-1 route.
    let route = match ctx.disjoint_pair(net, state, s, t, spec) {
        Some((_, [phys_a, phys_b])) => {
            let leg_a = refine_leg(net, state, s, t, &phys_a)?;
            let leg_b = refine_leg(net, state, s, t, &phys_b)?;
            RobustRoute::ordered(leg_a, leg_b)
        }
        None => phase1.route,
    };
    let bottleneck_load = route_bottleneck_load(net, state, &route);
    Ok(JointOutcome {
        threshold: phase1.threshold,
        route,
        bottleneck_load,
        phase1_probes: phase1.probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::disjoint::RobustRouteFinder;
    use crate::network::NetworkBuilder;
    use crate::wavelength::Wavelength;
    use wdm_graph::EdgeId;

    /// Two cheap corridors plus one expensive corridor, W = 4.
    ///   0 -> 1 -> 4 (cost 1 + 1)
    ///   0 -> 2 -> 4 (cost 1.5 + 1.5)
    ///   0 -> 3 -> 4 (cost 10 + 10)
    fn corridors() -> WdmNetwork {
        let mut b = NetworkBuilder::new(4);
        let n: Vec<_> = (0..5)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        b.add_link(n[0], n[1], 1.0); // e0
        b.add_link(n[1], n[4], 1.0); // e1
        b.add_link(n[0], n[2], 1.5); // e2
        b.add_link(n[2], n[4], 1.5); // e3
        b.add_link(n[0], n[3], 10.0); // e4
        b.add_link(n[3], n[4], 10.0); // e5
        b.build()
    }

    #[test]
    fn picks_cheapest_within_load_budget() {
        let net = corridors();
        let st = ResidualState::fresh(&net);
        let out = find_two_paths_joint(&net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        // Fresh network: the two cheap corridors fit the minimal threshold.
        assert!(out.route.is_edge_disjoint());
        assert_eq!(out.route.total_cost(), 5.0);
        assert!((out.bottleneck_load - 0.25).abs() < 1e-9);
    }

    #[test]
    fn load_budget_overrides_cost_preference() {
        let net = corridors();
        let mut st = ResidualState::fresh(&net);
        // Load the cheapest corridor to 3/4: cost-only routing would still
        // take it, but the joint algorithm's phase 1 excludes it (a lighter
        // threshold admits corridors 2 and 3).
        for l in 0..3 {
            st.occupy(&net, EdgeId(0), Wavelength(l)).unwrap();
            st.occupy(&net, EdgeId(1), Wavelength(l)).unwrap();
        }
        let cost_only = RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(4))
            .unwrap();
        let joint = find_two_paths_joint(&net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        // Cost-only uses the loaded cheap corridor.
        assert!(cost_only
            .primary
            .edges()
            .chain(cost_only.backup.edges())
            .any(|e| e == EdgeId(0)));
        // Joint avoids it at the cost of a dearer route.
        let joint_edges: Vec<EdgeId> = joint
            .route
            .primary
            .edges()
            .chain(joint.route.backup.edges())
            .collect();
        assert!(!joint_edges.contains(&EdgeId(0)));
        assert!(joint.route.total_cost() > cost_only.total_cost());
        assert!(joint.bottleneck_load < 1.0);
    }

    #[test]
    fn phase2_prefers_cheap_among_equally_loaded() {
        let net = corridors();
        let mut st = ResidualState::fresh(&net);
        // Equal light load everywhere: phase 2 should pick the two cheapest
        // corridors, not the expensive one.
        for e in 0..6u32 {
            st.occupy(&net, EdgeId(e), Wavelength(0)).unwrap();
        }
        let out = find_two_paths_joint(&net, &st, NodeId(0), NodeId(4), 2.0).unwrap();
        let edges: Vec<EdgeId> = out
            .route
            .primary
            .edges()
            .chain(out.route.backup.edges())
            .collect();
        assert!(!edges.contains(&EdgeId(4)) && !edges.contains(&EdgeId(5)));
        assert_eq!(out.route.total_cost(), 5.0);
    }

    #[test]
    fn infeasible_requests_drop() {
        let net = corridors();
        let st = ResidualState::fresh(&net);
        // 4 -> 0 has no links at all.
        assert!(find_two_paths_joint(&net, &st, NodeId(4), NodeId(0), 2.0).is_err());
    }
}
