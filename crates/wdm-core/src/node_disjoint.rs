//! Node-disjoint robust routing (extension).
//!
//! The paper's introduction distinguishes edge-disjoint backups (surviving a
//! single *link* failure) from node-disjoint backups (surviving single node
//! *and* link failures) and then develops the edge-disjoint case. This
//! module supplies the node-disjoint variant through the standard
//! node-splitting reduction, applied at the WDM-network level so the whole
//! §3.3 machinery (auxiliary graph, Suurballe, Liang–Shen refinement) is
//! reused unchanged:
//!
//! * every node `v` becomes `v_a → v_b` joined by an *internal* link with
//!   zero cost, the full wavelength complement, and identity-only conversion
//!   at `v_a` (so the internal hop is transparent);
//! * original link `⟨u, v⟩` becomes `⟨u_b, v_a⟩` with unchanged wavelengths
//!   and costs; `v`'s conversion table moves to `v_b`;
//! * a request `(s, t)` is routed `s_b → t_a`, so the terminals' internal
//!   links are not consumed; edge-disjointness of the internal link of `v`
//!   in the split network is exactly node-disjointness at `v` in the
//!   original.

use crate::conversion::ConversionTable;
use crate::disjoint::RobustRouteFinder;
use crate::error::RoutingError;
use crate::network::{NetworkBuilder, ResidualState, WdmNetwork};
use crate::semilightpath::{Hop, RobustRoute, Semilightpath};
use crate::wavelength::WavelengthSet;
use wdm_graph::{EdgeId, NodeId};

/// The split network plus the mappings needed to translate state and
/// routes between the original and split spaces.
#[derive(Debug, Clone)]
pub struct SplitNetwork {
    /// The node-split WDM network.
    pub net: WdmNetwork,
    /// For each original link id, the id of its image in the split network.
    pub link_image: Vec<EdgeId>,
    /// For each split-network link id, the original link it images
    /// (`None` for internal splitter links).
    pub link_preimage: Vec<Option<EdgeId>>,
}

/// `v_a` (entry half) of original node `v`.
#[inline]
fn half_in(v: NodeId) -> NodeId {
    NodeId(2 * v.0)
}

/// `v_b` (exit half) of original node `v`.
#[inline]
fn half_out(v: NodeId) -> NodeId {
    NodeId(2 * v.0 + 1)
}

impl SplitNetwork {
    /// Builds the node-split image of `net`.
    pub fn build(net: &WdmNetwork) -> Self {
        let w = net.num_wavelengths();
        let mut b = NetworkBuilder::new(w);
        // Nodes: v_a gets identity-only conversion (the internal link is a
        // transparent continuation), v_b inherits v's table.
        for v in net.graph().node_ids() {
            let a = b.add_node(ConversionTable::None);
            let bb = b.add_node(net.conversion(v).clone());
            debug_assert_eq!(a, half_in(v));
            debug_assert_eq!(bb, half_out(v));
        }
        // Internal splitter links first (ids 0..n), then link images
        // (ids n..n+m) — order chosen so preimage lookups are trivial.
        let n = net.node_count();
        for v in net.graph().node_ids() {
            b.add_link_with(half_in(v), half_out(v), 0.0, WavelengthSet::full(w));
        }
        let mut link_image = Vec::with_capacity(net.link_count());
        let mut link_preimage: Vec<Option<EdgeId>> = vec![None; n];
        for e in net.graph().edge_ids() {
            let (u, v) = net.endpoints(e);
            let data = net.graph().edge(e);
            let img = match &data.per_lambda {
                Some(costs) => {
                    b.add_link_per_lambda(half_out(u), half_in(v), data.lambda, costs.clone())
                }
                None => b.add_link_with(half_out(u), half_in(v), data.base_cost, data.lambda),
            };
            link_image.push(img);
            link_preimage.push(Some(e));
        }
        Self {
            net: b.build(),
            link_image,
            link_preimage,
        }
    }

    /// Mirrors an original residual state onto the split network
    /// (occupancy and failures copy to link images; internal links stay
    /// fresh).
    pub fn mirror_state(&self, net: &WdmNetwork, state: &ResidualState) -> ResidualState {
        let mut out = ResidualState::fresh(&self.net);
        for e in net.graph().edge_ids() {
            let img = self.link_image[e.index()];
            for l in state.used(e).iter() {
                out.occupy(&self.net, img, l)
                    .expect("image has same lambda set");
            }
            if state.is_failed(e) {
                out.fail_link(img);
            }
        }
        out
    }

    /// Maps a split-network semilightpath back to the original network,
    /// dropping internal hops.
    fn map_back(
        &self,
        net: &WdmNetwork,
        s: NodeId,
        slp: &Semilightpath,
    ) -> Result<Semilightpath, RoutingError> {
        let hops: Vec<Hop> = slp
            .hops
            .iter()
            .filter_map(|h| {
                self.link_preimage[h.edge.index()].map(|orig| Hop {
                    edge: orig,
                    wavelength: h.wavelength,
                })
            })
            .collect();
        Semilightpath::new(net, s, hops).map_err(|_| RoutingError::RefinementInfeasible)
    }
}

/// Finds a primary + backup pair that is **internally node-disjoint** (the
/// two legs share no intermediate node, hence survive any single node or
/// link failure off the endpoints), minimising the §3 cost objective via
/// the §3.3 approximation on the split network.
pub fn find_node_disjoint(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
) -> Result<RobustRoute, RoutingError> {
    if s == t {
        return Err(RoutingError::DegenerateRequest);
    }
    let split = SplitNetwork::build(net);
    let split_state = split.mirror_state(net, state);
    let route = RobustRouteFinder::new(&split.net).find(&split_state, half_out(s), half_in(t))?;
    let primary = split.map_back(net, s, &route.primary)?;
    let backup = split.map_back(net, s, &route.backup)?;
    debug_assert!(!primary.shares_edge_with(&backup));
    Ok(RobustRoute::ordered(primary, backup))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w_full(n: usize) -> NetworkBuilder {
        let mut b = NetworkBuilder::new(2);
        for _ in 0..n {
            b.add_node(ConversionTable::Full { cost: 0.1 });
        }
        b
    }

    /// Hourglass: two edge-disjoint routes exist but share the waist node 2.
    fn hourglass() -> WdmNetwork {
        let mut b = w_full(5);
        let n: Vec<NodeId> = (0..5).map(|i| NodeId(i as u32)).collect();
        b.add_link(n[0], n[1], 1.0);
        b.add_link(n[1], n[2], 1.0);
        b.add_link(n[2], n[3], 1.0);
        b.add_link(n[3], n[4], 1.0);
        b.add_link(n[0], n[2], 5.0);
        b.add_link(n[2], n[4], 5.0);
        b.build()
    }

    #[test]
    fn hourglass_has_edge_but_not_node_disjoint_pair() {
        let net = hourglass();
        let st = ResidualState::fresh(&net);
        assert!(RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(4))
            .is_ok());
        assert!(matches!(
            find_node_disjoint(&net, &st, NodeId(0), NodeId(4)),
            Err(RoutingError::NoDisjointPair)
        ));
    }

    #[test]
    fn diamond_yields_node_disjoint_pair() {
        let mut b = w_full(4);
        b.add_link(NodeId(0), NodeId(1), 1.0);
        b.add_link(NodeId(1), NodeId(3), 1.0);
        b.add_link(NodeId(0), NodeId(2), 2.0);
        b.add_link(NodeId(2), NodeId(3), 2.0);
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let route = find_node_disjoint(&net, &st, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(route.total_cost(), 6.0);
        assert!(route.is_edge_disjoint());
        assert!(!route
            .primary
            .physical_path()
            .shares_interior_node_with(&route.backup.physical_path(), net.graph()));
        route.primary.validate(&net, &st).unwrap();
        route.backup.validate(&net, &st).unwrap();
    }

    #[test]
    fn occupancy_mirrors_into_split_network() {
        let net = hourglass();
        let mut st = ResidualState::fresh(&net);
        // Exhaust e0 entirely (W = 2).
        st.occupy(&net, EdgeId(0), crate::wavelength::Wavelength(0))
            .unwrap();
        st.occupy(&net, EdgeId(0), crate::wavelength::Wavelength(1))
            .unwrap();
        let split = SplitNetwork::build(&net);
        let mirrored = split.mirror_state(&net, &st);
        let img = split.link_image[0];
        assert!(mirrored.avail(&split.net, img).is_empty());
        // Failure mirrors too.
        st.fail_link(EdgeId(1));
        let mirrored = split.mirror_state(&net, &st);
        assert!(mirrored.is_failed(split.link_image[1]));
    }

    #[test]
    fn node_disjoint_cost_never_below_edge_disjoint() {
        // Node-disjointness is a stricter constraint, so its optimal cost is
        // at least the edge-disjoint optimum.
        let net = {
            let mut b = w_full(6);
            for (u, v, c) in [
                (0, 1, 1.0),
                (1, 5, 1.0),
                (0, 2, 2.0),
                (2, 5, 2.0),
                (0, 3, 3.0),
                (3, 5, 3.0),
                (1, 2, 0.5),
            ] {
                b.add_link(NodeId(u), NodeId(v), c);
            }
            b.build()
        };
        let st = ResidualState::fresh(&net);
        let edge = RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(5))
            .unwrap();
        let node = find_node_disjoint(&net, &st, NodeId(0), NodeId(5)).unwrap();
        assert!(node.total_cost() + 1e-9 >= edge.total_cost());
    }

    #[test]
    fn nsfnet_supports_node_disjoint_everywhere() {
        let net = NetworkBuilder::nsfnet(4).build();
        let st = ResidualState::fresh(&net);
        for t in 1..14u32 {
            let r = find_node_disjoint(&net, &st, NodeId(0), NodeId(t));
            assert!(r.is_ok(), "0 -> {t}: {r:?}");
            let r = r.unwrap();
            assert!(!r
                .primary
                .physical_path()
                .shares_interior_node_with(&r.backup.physical_path(), net.graph()));
        }
    }
}
