//! Human-editable network file format (`.wdm`).
//!
//! A line-oriented format for describing WDM networks, so topologies can be
//! version-controlled and fed to the CLI without writing Rust:
//!
//! ```text
//! # comments and blank lines are ignored
//! wavelengths 8
//! node 0 conv=full:3.0
//! node 1 conv=none
//! node 2 conv=range:2:1.5
//! link 0 1 cost=11.0 lambda=0-7        # full range
//! link 1 2 cost=6.5 lambda=0,2,4-6     # list + ranges
//! link 2 0 cost=6.5                    # lambda defaults to all W channels
//! ```
//!
//! * `wavelengths W` must appear before any `node`/`link` line;
//! * nodes must be declared in id order (0, 1, 2, …);
//! * `conv=` takes `none`, `full:<cost>` or `range:<k>:<cost>`
//!   (matrix tables are JSON-only — use serde for those);
//! * links are directed; declare both directions for a fibre pair.
//!
//! JSON (de)serialisation of the full model — including matrix conversion
//! tables and per-wavelength costs — is available through the `serde`
//! derives on [`WdmNetwork`]; this module adds the text format plus
//! round-trip helpers.

use crate::conversion::ConversionTable;
use crate::network::{NetworkBuilder, WdmNetwork};
use crate::wavelength::{Wavelength, WavelengthSet};
use wdm_graph::NodeId;

/// Parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error occurred on (0 = whole-file problem).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses the `.wdm` text format into a network.
pub fn parse_network(text: &str) -> Result<WdmNetwork, ParseError> {
    let mut builder: Option<NetworkBuilder> = None;
    let mut w = 0usize;
    let mut next_node = 0u32;

    for (i, raw) in text.lines().enumerate() {
        let lno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("wavelengths") => {
                if builder.is_some() {
                    return Err(err(lno, "duplicate 'wavelengths' line"));
                }
                w = tokens
                    .next()
                    .ok_or_else(|| err(lno, "missing wavelength count"))?
                    .parse::<usize>()
                    .map_err(|e| err(lno, format!("bad wavelength count: {e}")))?;
                if !(1..=crate::wavelength::MAX_WAVELENGTHS).contains(&w) {
                    return Err(err(lno, "wavelength count out of range 1..=64"));
                }
                builder = Some(NetworkBuilder::new(w));
            }
            Some("node") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lno, "'wavelengths' must come first"))?;
                let id: u32 = tokens
                    .next()
                    .ok_or_else(|| err(lno, "missing node id"))?
                    .parse()
                    .map_err(|e| err(lno, format!("bad node id: {e}")))?;
                if id != next_node {
                    return Err(err(
                        lno,
                        format!("nodes must be declared in order; expected {next_node}, got {id}"),
                    ));
                }
                next_node += 1;
                let mut conv = ConversionTable::Full { cost: 0.0 };
                for tok in tokens {
                    if let Some(spec) = tok.strip_prefix("conv=") {
                        conv = parse_conversion(spec, lno)?;
                    } else {
                        return Err(err(lno, format!("unknown node attribute '{tok}'")));
                    }
                }
                b.add_node(conv);
            }
            Some("link") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lno, "'wavelengths' must come first"))?;
                let u: u32 = tokens
                    .next()
                    .ok_or_else(|| err(lno, "missing link source"))?
                    .parse()
                    .map_err(|e| err(lno, format!("bad source id: {e}")))?;
                let v: u32 = tokens
                    .next()
                    .ok_or_else(|| err(lno, "missing link target"))?
                    .parse()
                    .map_err(|e| err(lno, format!("bad target id: {e}")))?;
                if u >= next_node || v >= next_node {
                    return Err(err(lno, "link endpoint not declared"));
                }
                let mut cost: Option<f64> = None;
                let mut lambda = WavelengthSet::full(w);
                for tok in tokens {
                    if let Some(c) = tok.strip_prefix("cost=") {
                        cost = Some(c.parse().map_err(|e| err(lno, format!("bad cost: {e}")))?);
                    } else if let Some(spec) = tok.strip_prefix("lambda=") {
                        lambda = parse_lambda(spec, w, lno)?;
                    } else {
                        return Err(err(lno, format!("unknown link attribute '{tok}'")));
                    }
                }
                let cost = cost.ok_or_else(|| err(lno, "link needs cost=<value>"))?;
                if !cost.is_finite() || cost < 0.0 {
                    return Err(err(lno, "cost must be finite and non-negative"));
                }
                b.add_link_with(NodeId(u), NodeId(v), cost, lambda);
            }
            Some(other) => return Err(err(lno, format!("unknown directive '{other}'"))),
            None => unreachable!("empty lines are skipped"),
        }
    }
    builder
        .map(|b| b.build())
        .ok_or_else(|| err(0, "empty file: missing 'wavelengths' line"))
}

fn parse_conversion(spec: &str, lno: usize) -> Result<ConversionTable, ParseError> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["none"] => Ok(ConversionTable::None),
        ["full", cost] => {
            let cost: f64 = cost
                .parse()
                .map_err(|e| err(lno, format!("bad conversion cost: {e}")))?;
            if !cost.is_finite() || cost < 0.0 {
                return Err(err(lno, "conversion cost must be finite and non-negative"));
            }
            Ok(ConversionTable::Full { cost })
        }
        ["range", k, cost] => {
            let range: u8 = k
                .parse()
                .map_err(|e| err(lno, format!("bad conversion range: {e}")))?;
            let cost: f64 = cost
                .parse()
                .map_err(|e| err(lno, format!("bad conversion cost: {e}")))?;
            Ok(ConversionTable::Range { range, cost })
        }
        _ => Err(err(lno, format!("unknown conversion spec '{spec}'"))),
    }
}

/// Parses `0-7`, `0,2,4-6` style wavelength lists.
fn parse_lambda(spec: &str, w: usize, lno: usize) -> Result<WavelengthSet, ParseError> {
    let mut set = WavelengthSet::empty();
    for part in spec.split(',') {
        if let Some((a, b)) = part.split_once('-') {
            let a: u8 = a
                .parse()
                .map_err(|e| err(lno, format!("bad wavelength '{part}': {e}")))?;
            let b: u8 = b
                .parse()
                .map_err(|e| err(lno, format!("bad wavelength '{part}': {e}")))?;
            if a > b {
                return Err(err(lno, format!("reversed range '{part}'")));
            }
            for l in a..=b {
                if l as usize >= w {
                    return Err(err(lno, format!("wavelength {l} >= W")));
                }
                set.insert(Wavelength(l));
            }
        } else {
            let l: u8 = part
                .parse()
                .map_err(|e| err(lno, format!("bad wavelength '{part}': {e}")))?;
            if l as usize >= w {
                return Err(err(lno, format!("wavelength {l} >= W")));
            }
            set.insert(Wavelength(l));
        }
    }
    if set.is_empty() {
        return Err(err(lno, "empty wavelength set"));
    }
    Ok(set)
}

/// Renders a network back into the `.wdm` text format.
///
/// Matrix conversion tables and per-wavelength link costs are not
/// representable in the text format and cause an error (use JSON for
/// those).
pub fn write_network(net: &WdmNetwork) -> Result<String, ParseError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "wavelengths {}", net.num_wavelengths()).expect("string write");
    for v in net.graph().node_ids() {
        let conv = match net.conversion(v) {
            ConversionTable::None => "none".to_string(),
            ConversionTable::Full { cost } => format!("full:{cost}"),
            ConversionTable::Range { range, cost } => format!("range:{range}:{cost}"),
            ConversionTable::Matrix { .. } => {
                return Err(err(0, "matrix conversion tables are JSON-only"))
            }
        };
        writeln!(out, "node {} conv={}", v.0, conv).expect("string write");
    }
    for e in net.graph().edge_ids() {
        let (u, v) = net.endpoints(e);
        let data = net.graph().edge(e);
        if data.per_lambda.is_some() {
            return Err(err(0, "per-wavelength link costs are JSON-only"));
        }
        writeln!(
            out,
            "link {} {} cost={} lambda={}",
            u.0,
            v.0,
            data.base_cost,
            render_lambda(data.lambda)
        )
        .expect("string write");
    }
    Ok(out)
}

/// Renders a wavelength set as compact ranges (`0-3,5,7-9`).
fn render_lambda(set: WavelengthSet) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut iter = set.iter().map(|l| l.0).peekable();
    while let Some(start) = iter.next() {
        let mut end = start;
        while iter.peek() == Some(&(end + 1)) {
            end = iter.next().expect("peeked");
        }
        if start == end {
            parts.push(start.to_string());
        } else {
            parts.push(format!("{start}-{end}"));
        }
    }
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_graph::EdgeId;

    const SAMPLE: &str = r"
# tiny triangle
wavelengths 4
node 0 conv=full:1.5
node 1 conv=none
node 2 conv=range:2:0.5
link 0 1 cost=10 lambda=0-3
link 1 2 cost=5.5 lambda=0,2
link 2 0 cost=7   # defaults to all channels
";

    #[test]
    fn parses_the_sample() {
        let net = parse_network(SAMPLE).unwrap();
        assert_eq!(net.num_wavelengths(), 4);
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.link_count(), 3);
        assert_eq!(
            net.conversion(NodeId(0)),
            &ConversionTable::Full { cost: 1.5 }
        );
        assert_eq!(net.conversion(NodeId(1)), &ConversionTable::None);
        assert_eq!(
            net.conversion(NodeId(2)),
            &ConversionTable::Range {
                range: 2,
                cost: 0.5
            }
        );
        assert_eq!(net.lambda(EdgeId(0)).count(), 4);
        assert_eq!(net.lambda(EdgeId(1)), WavelengthSet::from_indices(&[0, 2]));
        assert_eq!(net.lambda(EdgeId(2)).count(), 4);
        assert_eq!(net.link_cost(EdgeId(1), Wavelength(0)), 5.5);
    }

    #[test]
    fn round_trips_through_text() {
        let net = parse_network(SAMPLE).unwrap();
        let text = write_network(&net).unwrap();
        let net2 = parse_network(&text).unwrap();
        assert_eq!(net.node_count(), net2.node_count());
        assert_eq!(net.link_count(), net2.link_count());
        for e in net.graph().edge_ids() {
            assert_eq!(net.lambda(e), net2.lambda(e));
            assert_eq!(net.min_link_cost(e), net2.min_link_cost(e));
        }
        for v in net.graph().node_ids() {
            assert_eq!(net.conversion(v), net2.conversion(v));
        }
    }

    #[test]
    fn nsfnet_round_trips() {
        let net = NetworkBuilder::nsfnet(8).build();
        let text = write_network(&net).unwrap();
        let net2 = parse_network(&text).unwrap();
        assert_eq!(net2.node_count(), 14);
        assert_eq!(net2.link_count(), 42);
        assert!(net2.satisfies_ratio_premise());
    }

    #[test]
    fn lambda_range_rendering_is_compact() {
        assert_eq!(
            render_lambda(WavelengthSet::from_indices(&[0, 1, 2, 3, 5, 7, 8, 9])),
            "0-3,5,7-9"
        );
        assert_eq!(render_lambda(WavelengthSet::from_indices(&[4])), "4");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_network("wavelengths 4\nnode 1 conv=none\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected 0"));

        let e = parse_network("node 0\n").unwrap_err();
        assert!(e.message.contains("wavelengths"));

        let e = parse_network("wavelengths 4\nnode 0\nlink 0 1 cost=1\n").unwrap_err();
        assert!(e.message.contains("endpoint not declared"));

        let e = parse_network("wavelengths 4\nnode 0\nnode 1\nlink 0 1\n").unwrap_err();
        assert!(e.message.contains("needs cost"));

        let e = parse_network("wavelengths 99\n").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e =
            parse_network("wavelengths 4\nnode 0\nnode 1\nlink 0 1 cost=1 lambda=9\n").unwrap_err();
        assert!(e.message.contains(">= W"));

        let e = parse_network("").unwrap_err();
        assert!(e.message.contains("empty file"));
    }

    #[test]
    fn json_round_trip_via_serde() {
        // Matrix tables and per-λ costs go through JSON.
        let mut b = NetworkBuilder::new(2);
        let n0 = b.add_node(ConversionTable::from_fn(2, |_, _| Some(0.25)));
        let n1 = b.add_node(ConversionTable::None);
        b.add_link_per_lambda(n0, n1, WavelengthSet::full(2), vec![1.0, 9.0]);
        let net = b.build();
        assert!(write_network(&net).is_err(), "text format must refuse");
        let json = serde_json::to_string(&net).unwrap();
        let net2: WdmNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(net2.link_cost(EdgeId(0), Wavelength(1)), 9.0);
        assert_eq!(
            net2.conversion_cost(NodeId(0), Wavelength(0), Wavelength(1)),
            Some(0.25)
        );
    }
}
