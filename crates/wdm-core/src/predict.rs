//! Cheap per-demand [`RouteFootprint`] prediction for conflict-aware
//! batch scheduling.
//!
//! The speculative batch engine (`wdm-sim`) wants to know, *before*
//! routing anything, which demands of a window are likely to touch the
//! same links. Computing the real footprint means routing the demand —
//! exactly the work the scheduler is trying to organise — so prediction
//! has to be much cheaper than one routing call and is allowed to be
//! wrong in either direction:
//!
//! * a **missed conflict** (two demands predicted disjoint whose routes
//!   collide) costs the scheduler one bounded retry at commit time;
//! * a **false conflict** (predicted overlap that never materialises)
//!   costs some parallelism — the demands are serialised needlessly.
//!
//! Correctness never depends on the prediction: the engine revalidates
//! every speculated result against the *actual* links occupied since its
//! snapshot.
//!
//! [`LocalityPredictor`] implements the s/t-region locality heuristic:
//! every route from `s` to `t` must leave through `s`'s out-links and
//! arrive through `t`'s in-links (a disjoint *pair* uses at least two of
//! each), and on sparse wide-area topologies the first/last few hops
//! dominate contention. The predictor therefore computes, per node, the
//! set of directed links within `radius` undirected hops — the node's
//! *ball* — and predicts `ball(s) ∪ ball(t)`. When a real footprint for
//! the same `(s, t)` pair has been observed (fed back by the scheduler
//! from `wdm-core::disjoint`'s [`RouteFootprint`] after a commit), it is
//! unioned in as well: repeated pairs predict with the precision of the
//! last actual route, fresh pairs fall back to pure locality.
//!
//! Balls are computed **lazily**, on the first prediction touching a
//! node, from a compact adjacency copy taken at construction; the BFS
//! scratch (visit stamps, frontier queues) lives in the oracle and is
//! reused across every computation. Constructing a predictor is O(m) and
//! the steady-state predict path allocates nothing — both matter now
//! that partition classification (`wdm-core::partition::ShardMap`) runs
//! a predictor over every batch demand up front.

use crate::disjoint::RouteFootprint;
use crate::network::WdmNetwork;
use std::collections::HashMap;
use wdm_graph::{EdgeId, NodeId};

/// A source of footprint predictions for batch demands, plus the feedback
/// channel the scheduler uses to report footprints that became known.
///
/// Implementations must be deterministic (prediction shapes scheduling,
/// and batch runs are required to be reproducible) but are free to be
/// arbitrarily wrong — see the module docs for what mispredictions cost.
pub trait FootprintOracle {
    /// Appends the predicted directed-link footprint of a route request
    /// `(s, t)` to `out` (duplicates allowed; the caller deduplicates or
    /// stamps).
    fn predict(&mut self, s: NodeId, t: NodeId, out: &mut Vec<EdgeId>);

    /// Feeds back the actual footprint of a route committed for `(s, t)`.
    /// Default: ignore.
    fn observe(&mut self, s: NodeId, t: NodeId, footprint: &RouteFootprint) {
        let _ = (s, t, footprint);
    }
}

/// The s/t-region locality heuristic with learned per-pair refinement.
#[derive(Debug, Clone)]
pub struct LocalityPredictor {
    radius: usize,
    /// Compact undirected adjacency in CSR form: node `v`'s incident
    /// `(link, far endpoint)` pairs live at `adj[adj_off[v]..adj_off[v+1]]`
    /// (out-links first, then in-links). Owned so lazy ball computation
    /// needs no `&WdmNetwork` on the predict path.
    adj_off: Vec<u32>,
    adj: Vec<(EdgeId, NodeId)>,
    /// Per-node: every directed link with an endpoint within `radius`
    /// undirected hops of the node (sorted, deduplicated). Computed
    /// lazily; `ball_ready` marks the filled entries.
    balls: Vec<Vec<EdgeId>>,
    ball_ready: Vec<bool>,
    /// Reusable BFS scratch: `seen[x] == center` ⇔ `x` was visited by the
    /// BFS rooted at `center` (stamps never collide — each center runs at
    /// most once).
    seen: Vec<u32>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    /// Last observed real footprint per `(s, t)` pair. Bounded by the
    /// number of distinct pairs the batch actually carries.
    learned: HashMap<(u32, u32), Vec<EdgeId>>,
}

/// Default ball radius: two undirected hops. On sparse wide-area
/// topologies (average degree ~4) this covers the first and last third of
/// a typical route while keeping the ball around `degree²` links — small
/// enough that scheduling stays far cheaper than routing.
pub const DEFAULT_PREDICT_RADIUS: usize = 2;

impl LocalityPredictor {
    /// Captures `net`'s adjacency (O(m)); balls are grown on demand.
    pub fn new(net: &WdmNetwork, radius: usize) -> Self {
        let g = net.graph();
        let n = g.node_count();
        let mut adj_off = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(2 * net.link_count());
        adj_off.push(0u32);
        for v in 0..n {
            let v = NodeId(v as u32);
            for &e in g.out_edges(v).iter().chain(g.in_edges(v)) {
                let (a, b) = g.endpoints(e);
                let far = if a == v { b } else { a };
                adj.push((e, far));
            }
            adj_off.push(adj.len() as u32);
        }
        Self {
            radius,
            adj_off,
            adj,
            balls: vec![Vec::new(); n],
            ball_ready: vec![false; n],
            seen: vec![u32::MAX; n],
            frontier: Vec::new(),
            next: Vec::new(),
            learned: HashMap::new(),
        }
    }

    /// Creates a predictor with [`DEFAULT_PREDICT_RADIUS`].
    pub fn with_default_radius(net: &WdmNetwork) -> Self {
        Self::new(net, DEFAULT_PREDICT_RADIUS)
    }

    /// The ball of `v` (sorted directed links), computing it on first
    /// access.
    pub fn ball(&mut self, v: NodeId) -> &[EdgeId] {
        self.ensure_ball(v);
        &self.balls[v.index()]
    }

    fn ensure_ball(&mut self, v: NodeId) {
        if self.ball_ready[v.index()] {
            return;
        }
        let mut ball = std::mem::take(&mut self.balls[v.index()]);
        self.seen[v.index()] = v.0;
        self.frontier.clear();
        self.frontier.push(v);
        for _ in 0..self.radius {
            self.next.clear();
            for &u in &self.frontier {
                let (lo, hi) = (
                    self.adj_off[u.index()] as usize,
                    self.adj_off[u.index() + 1] as usize,
                );
                for &(e, far) in &self.adj[lo..hi] {
                    ball.push(e);
                    if self.seen[far.index()] != v.0 {
                        self.seen[far.index()] = v.0;
                        self.next.push(far);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
        }
        ball.sort_unstable_by_key(|e| e.index());
        ball.dedup();
        self.balls[v.index()] = ball;
        self.ball_ready[v.index()] = true;
    }
}

impl FootprintOracle for LocalityPredictor {
    fn predict(&mut self, s: NodeId, t: NodeId, out: &mut Vec<EdgeId>) {
        self.ensure_ball(s);
        self.ensure_ball(t);
        out.extend_from_slice(&self.balls[s.index()]);
        out.extend_from_slice(&self.balls[t.index()]);
        if let Some(fp) = self.learned.get(&(s.0, t.0)) {
            out.extend_from_slice(fp);
        }
    }

    fn observe(&mut self, s: NodeId, t: NodeId, footprint: &RouteFootprint) {
        self.learned.insert((s.0, t.0), footprint.links.clone());
    }
}

/// An oracle that predicts the empty footprint for every pair — maximal
/// optimism, so every true conflict is a miss. Useful as the adversarial
/// baseline in tests: the engine must stay serial-equivalent and pay only
/// retries.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoConflictOracle;

impl FootprintOracle for NoConflictOracle {
    fn predict(&mut self, _s: NodeId, _t: NodeId, _out: &mut Vec<EdgeId>) {}
}

/// An oracle that predicts every link for every pair — maximal pessimism:
/// all demands conflict, groups degenerate to singletons and the batch
/// runs serially (but still correctly).
#[derive(Debug, Clone, Copy)]
pub struct AllConflictOracle {
    /// Number of directed links in the network.
    pub links: usize,
}

impl FootprintOracle for AllConflictOracle {
    fn predict(&mut self, _s: NodeId, _t: NodeId, out: &mut Vec<EdgeId>) {
        out.extend((0..self.links).map(EdgeId::from));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::network::NetworkBuilder;

    /// Directed 6-cycle: ball radii are easy to count by hand.
    fn ring(n: u32) -> WdmNetwork {
        let mut b = NetworkBuilder::new(2);
        let nodes: Vec<_> = (0..n)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        for i in 0..n as usize {
            b.add_link(nodes[i], nodes[(i + 1) % n as usize], 1.0);
        }
        b.build()
    }

    #[test]
    fn ball_radius_one_is_incident_links() {
        let net = ring(6);
        let mut p = LocalityPredictor::new(&net, 1);
        // Node 2 of a directed ring touches link 1 (in) and link 2 (out).
        assert_eq!(p.ball(NodeId(2)), &[EdgeId(1), EdgeId(2)]);
    }

    #[test]
    fn ball_radius_two_reaches_neighbours_links() {
        let net = ring(6);
        let mut p = LocalityPredictor::new(&net, 2);
        // Radius 2 from node 2: links of nodes 1, 2, 3 -> {0, 1, 2, 3}.
        assert_eq!(
            p.ball(NodeId(2)),
            &[EdgeId(0), EdgeId(1), EdgeId(2), EdgeId(3)]
        );
    }

    #[test]
    fn lazy_balls_match_across_access_orders() {
        // Interleaved lazy computation must reuse the scratch without one
        // ball's BFS contaminating another's.
        let net = ring(6);
        let mut forward = LocalityPredictor::new(&net, 2);
        let mut backward = LocalityPredictor::new(&net, 2);
        let a: Vec<Vec<EdgeId>> = (0..6u32)
            .map(|v| forward.ball(NodeId(v)).to_vec())
            .collect();
        let b: Vec<Vec<EdgeId>> = (0..6u32)
            .rev()
            .map(|v| backward.ball(NodeId(v)).to_vec())
            .collect();
        let b: Vec<_> = b.into_iter().rev().collect();
        assert_eq!(a, b);
        // Recomputing an already-ready ball is a no-op.
        assert_eq!(forward.ball(NodeId(3)).to_vec(), a[3]);
    }

    #[test]
    fn prediction_unions_both_endpoint_balls_and_learned_footprint() {
        let net = ring(6);
        let mut p = LocalityPredictor::new(&net, 1);
        let mut out = Vec::new();
        p.predict(NodeId(0), NodeId(3), &mut out);
        out.sort_unstable_by_key(|e| e.index());
        out.dedup();
        assert_eq!(out, vec![EdgeId(0), EdgeId(2), EdgeId(3), EdgeId(5)]);

        // Observing a real footprint folds it into later predictions.
        let fp = RouteFootprint::of_links([EdgeId(1)]);
        p.observe(NodeId(0), NodeId(3), &fp);
        let mut out2 = Vec::new();
        p.predict(NodeId(0), NodeId(3), &mut out2);
        assert!(out2.contains(&EdgeId(1)));
        // Other pairs are unaffected.
        let mut out3 = Vec::new();
        p.predict(NodeId(3), NodeId(0), &mut out3);
        assert!(!out3.contains(&EdgeId(1)));
    }

    #[test]
    fn degenerate_oracles_cover_the_extremes() {
        let net = ring(4);
        let mut none = NoConflictOracle;
        let mut all = AllConflictOracle {
            links: net.link_count(),
        };
        let mut out = Vec::new();
        none.predict(NodeId(0), NodeId(1), &mut out);
        assert!(out.is_empty());
        all.predict(NodeId(0), NodeId(1), &mut out);
        assert_eq!(out.len(), net.link_count());
    }
}
