//! Routing errors.

use wdm_graph::NodeId;

/// Why a robust-routing request could not be satisfied.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingError {
    /// `s == t` — degenerate request.
    DegenerateRequest,
    /// No pair of edge-disjoint routes exists in the auxiliary graph — by
    /// §3.3.2 this implies none exists in the residual network either.
    NoDisjointPair,
    /// A Suurballe path mapped back to a physical subgraph in which no
    /// feasible semilightpath exists. Cannot occur under the paper's
    /// assumption (i) (full conversion); possible under restricted
    /// conversion tables.
    RefinementInfeasible,
    /// The MinCog threshold search exhausted its range without finding a
    /// feasible pair (the request is dropped, §4.1).
    LoadSearchExhausted,
    /// No single route exists (used by the primary-only baseline).
    Unreachable {
        /// Request source.
        src: NodeId,
        /// Request destination.
        dst: NodeId,
    },
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::DegenerateRequest => write!(f, "source equals destination"),
            RoutingError::NoDisjointPair => {
                write!(f, "no two edge-disjoint semilightpaths exist")
            }
            RoutingError::RefinementInfeasible => write!(
                f,
                "auxiliary path has no feasible wavelength assignment (restricted conversion)"
            ),
            RoutingError::LoadSearchExhausted => {
                write!(f, "no feasible pair within any load threshold")
            }
            RoutingError::Unreachable { src, dst } => {
                write!(f, "no semilightpath from {src:?} to {dst:?}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}
