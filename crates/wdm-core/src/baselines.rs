//! Baseline routing policies the evaluation compares the paper's algorithms
//! against.
//!
//! * [`two_step_pair`] — greedy: optimal semilightpath, delete its links,
//!   optimal semilightpath again. Fails on trap topologies and is
//!   suboptimal in general, but is what naive implementations do.
//! * [`suurballe_unrefined`] — the §3.3 pipeline *without* the Lemma 2
//!   refinement: auxiliary paths get a greedy first-fit wavelength
//!   assignment instead of the Liang–Shen optimum. Quantifies how much the
//!   refinement buys.
//! * [`ksp_pair`] — scan Yen's k cheapest physical paths (by minimum
//!   per-link wavelength cost) for the best edge-disjoint combination, then
//!   assign wavelengths per leg.
//! * [`primary_only`] — a single unprotected semilightpath (the *passive*
//!   recovery approach of the introduction: re-route only after a failure).

use crate::aux_graph::{AuxGraph, AuxSpec};
use crate::error::RoutingError;
use crate::network::{ResidualState, WdmNetwork};
use crate::optimal_slp::{
    assign_wavelengths_on_path, optimal_semilightpath, optimal_semilightpath_filtered,
};
use crate::semilightpath::{Hop, RobustRoute, Semilightpath};
use wdm_graph::suurballe::edge_disjoint_pair;
use wdm_graph::{EdgeId, NodeId};

/// Greedy two-step baseline: best semilightpath, remove its physical links,
/// best semilightpath again.
pub fn two_step_pair(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
) -> Result<RobustRoute, RoutingError> {
    if s == t {
        return Err(RoutingError::DegenerateRequest);
    }
    let first = optimal_semilightpath(net, state, s, t)
        .ok_or(RoutingError::Unreachable { src: s, dst: t })?;
    let mut banned = vec![false; net.link_count()];
    for e in first.edges() {
        banned[e.index()] = true;
    }
    let second = optimal_semilightpath_filtered(net, state, s, t, |e| !banned[e.index()])
        .ok_or(RoutingError::NoDisjointPair)?;
    Ok(RobustRoute::ordered(first, second))
}

/// §3.3 without refinement: Suurballe on `G'`, then greedy first-fit
/// wavelengths along each auxiliary path (minimising each hop's immediate
/// cost given the previous hop's wavelength).
pub fn suurballe_unrefined(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
) -> Result<RobustRoute, RoutingError> {
    if s == t {
        return Err(RoutingError::DegenerateRequest);
    }
    let aux = AuxGraph::build(net, state, s, t, AuxSpec::g_prime());
    let pair = edge_disjoint_pair(&aux.graph, aux.source, aux.sink, |e| aux.weight(e))
        .ok_or(RoutingError::NoDisjointPair)?;
    let a = greedy_assign(net, state, s, &aux.physical_edges(&pair.paths[0]))?;
    let b = greedy_assign(net, state, s, &aux.physical_edges(&pair.paths[1]))?;
    Ok(RobustRoute::ordered(a, b))
}

/// Greedy per-hop wavelength choice: minimise `conversion + traversal` at
/// each hop given the previous wavelength (no lookahead).
fn greedy_assign(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    edges: &[EdgeId],
) -> Result<Semilightpath, RoutingError> {
    if edges.is_empty() {
        return Err(RoutingError::RefinementInfeasible);
    }
    let mut hops: Vec<Hop> = Vec::with_capacity(edges.len());
    let mut prev: Option<Hop> = None;
    for &e in edges {
        let (u, _) = net.endpoints(e);
        let avail = state.avail(net, e);
        let mut best: Option<(f64, Hop)> = None;
        for l in avail.iter() {
            let step = match prev {
                None => Some(net.link_cost(e, l)),
                Some(p) => net
                    .conversion_cost(u, p.wavelength, l)
                    .map(|cc| cc + net.link_cost(e, l)),
            };
            if let Some(c) = step {
                if best.is_none() || c < best.as_ref().expect("set").0 {
                    best = Some((
                        c,
                        Hop {
                            edge: e,
                            wavelength: l,
                        },
                    ));
                }
            }
        }
        let (_, hop) = best.ok_or(RoutingError::RefinementInfeasible)?;
        hops.push(hop);
        prev = Some(hop);
    }
    Semilightpath::new(net, s, hops).map_err(|_| RoutingError::RefinementInfeasible)
}

/// k-shortest-paths baseline: Yen over the physical graph weighted by each
/// link's *minimum available* wavelength cost, then the best edge-disjoint
/// pair among the k list with per-leg optimal wavelength assignment.
pub fn ksp_pair(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    k: usize,
) -> Result<RobustRoute, RoutingError> {
    if s == t {
        return Err(RoutingError::DegenerateRequest);
    }
    let cost = |e: EdgeId| -> f64 {
        state
            .avail(net, e)
            .iter()
            .map(|l| net.link_cost(e, l))
            .fold(f64::INFINITY, f64::min)
    };
    // Drop unavailable links entirely by giving Yen a filtered view: since
    // yen lacks a filter parameter, embed the ban as infinite cost and prune
    // any path containing one.
    let paths = wdm_graph::ksp::yen_k_shortest(net.graph(), s, t, k, |e| {
        let c = cost(e);
        if c.is_finite() {
            c
        } else {
            1e18
        }
    });
    let mut best: Option<(f64, RobustRoute)> = None;
    for i in 0..paths.len() {
        for j in (i + 1)..paths.len() {
            if paths[i].shares_edge_with(&paths[j]) {
                continue;
            }
            let Some(a) = assign_wavelengths_on_path(net, state, s, &paths[i].edges) else {
                continue;
            };
            let Some(b) = assign_wavelengths_on_path(net, state, s, &paths[j].edges) else {
                continue;
            };
            let tot = a.cost + b.cost;
            if best.as_ref().is_none_or(|(bc, _)| tot < *bc) {
                best = Some((tot, RobustRoute::ordered(a, b)));
            }
        }
    }
    best.map(|(_, r)| r).ok_or(RoutingError::NoDisjointPair)
}

/// Unprotected single route (the passive approach's provisioning step).
pub fn primary_only(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
) -> Result<Semilightpath, RoutingError> {
    if s == t {
        return Err(RoutingError::DegenerateRequest);
    }
    optimal_semilightpath(net, state, s, t).ok_or(RoutingError::Unreachable { src: s, dst: t })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::disjoint::RobustRouteFinder;
    use crate::network::NetworkBuilder;
    use crate::wavelength::WavelengthSet;

    fn trap() -> WdmNetwork {
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        b.add_link(n[0], n[1], 1.0);
        b.add_link(n[1], n[2], 1.0);
        b.add_link(n[2], n[3], 1.0);
        b.add_link(n[0], n[2], 10.0);
        b.add_link(n[1], n[3], 10.0);
        b.build()
    }

    #[test]
    fn two_step_fails_on_trap_but_paper_algorithm_succeeds() {
        let net = trap();
        let st = ResidualState::fresh(&net);
        assert_eq!(
            two_step_pair(&net, &st, NodeId(0), NodeId(3)).unwrap_err(),
            RoutingError::NoDisjointPair
        );
        assert!(RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(3))
            .is_ok());
    }

    #[test]
    fn two_step_succeeds_on_diamond() {
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..4)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        b.add_link(n[0], n[1], 1.0);
        b.add_link(n[1], n[3], 1.0);
        b.add_link(n[0], n[2], 2.0);
        b.add_link(n[2], n[3], 2.0);
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let r = two_step_pair(&net, &st, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(r.total_cost(), 6.0);
        assert!(r.is_edge_disjoint());
    }

    #[test]
    fn unrefined_never_beats_refined() {
        // Per-wavelength costs where greedy first-fit is led astray: hop 1
        // cheap on λ0, but hop 2 only reachable cheaply from λ1.
        let mut b = NetworkBuilder::new(2);
        let n: Vec<_> = (0..3)
            .map(|_| b.add_node(ConversionTable::Full { cost: 5.0 }))
            .collect();
        b.add_link_per_lambda(n[0], n[1], WavelengthSet::full(2), vec![1.0, 1.2]);
        b.add_link_per_lambda(n[1], n[2], WavelengthSet::full(2), vec![9.0, 1.2]);
        // Second corridor for disjointness.
        b.add_link(n[0], n[2], 30.0);
        let net = b.build();
        let st = ResidualState::fresh(&net);
        let refined = RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(2))
            .unwrap();
        let unrefined = suurballe_unrefined(&net, &st, NodeId(0), NodeId(2)).unwrap();
        assert!(refined.total_cost() <= unrefined.total_cost() + 1e-9);
        // Greedy takes λ0 (1.0) then pays min(conv 5 + 1.2, stay 9) = 6.2;
        // the DP takes λ1 throughout: 1.2 + 1.2 = 2.4.
        assert!((unrefined.total_cost() - (1.0 + 6.2 + 30.0)).abs() < 1e-9);
        assert!((refined.total_cost() - (2.4 + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn ksp_pair_finds_trap_solution_with_enough_k() {
        let net = trap();
        let st = ResidualState::fresh(&net);
        assert!(ksp_pair(&net, &st, NodeId(0), NodeId(3), 2).is_err());
        let r = ksp_pair(&net, &st, NodeId(0), NodeId(3), 6).unwrap();
        assert!(r.is_edge_disjoint());
        // Both legs are 2-hop (11 each), wavelength-continuous: total 22.
        assert!((r.total_cost() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn primary_only_routes_or_reports() {
        let net = trap();
        let st = ResidualState::fresh(&net);
        let p = primary_only(&net, &st, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.cost, 3.0);
        assert!(matches!(
            primary_only(&net, &st, NodeId(3), NodeId(0)),
            Err(RoutingError::Unreachable { .. })
        ));
    }
}
