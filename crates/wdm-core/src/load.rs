//! Network-load metrics (§2, Eq. 2) and distribution summaries used by the
//! congestion experiments (C3).

use crate::network::{ResidualState, WdmNetwork};
use wdm_graph::EdgeId;

/// Summary of the link-load distribution at one instant.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoadSnapshot {
    /// Network load `ρ = max_e ρ(e)`.
    pub max: f64,
    /// Mean link load.
    pub mean: f64,
    /// Median link load.
    pub p50: f64,
    /// 90th percentile link load.
    pub p90: f64,
    /// 99th percentile link load.
    pub p99: f64,
    /// Number of links at or above 90% utilisation.
    pub hot_links: usize,
    /// Total channels in use across the network.
    pub channels_in_use: usize,
}

/// Computes the load distribution of `state` over `net`.
pub fn load_snapshot(net: &WdmNetwork, state: &ResidualState) -> LoadSnapshot {
    let m = net.link_count();
    let mut loads: Vec<f64> = (0..m).map(|i| state.load(net, EdgeId::from(i))).collect();
    let channels_in_use = (0..m)
        .map(|i| state.used_count(EdgeId::from(i)))
        .sum::<usize>();
    if loads.is_empty() {
        return LoadSnapshot {
            max: 0.0,
            mean: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            hot_links: 0,
            channels_in_use: 0,
        };
    }
    loads.sort_by(|a, b| a.partial_cmp(b).expect("loads are finite"));
    // Nearest-rank percentile: the smallest value with at least p·n values
    // at or below it.
    let pct = |p: f64| -> f64 {
        let rank = (p * loads.len() as f64).ceil() as usize;
        loads[rank.max(1) - 1]
    };
    LoadSnapshot {
        max: *loads.last().expect("non-empty"),
        mean: loads.iter().sum::<f64>() / loads.len() as f64,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        hot_links: loads.iter().filter(|&&l| l >= 0.9).count(),
        channels_in_use,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::network::NetworkBuilder;
    use crate::wavelength::Wavelength;

    fn pair_net() -> WdmNetwork {
        let mut b = NetworkBuilder::new(4);
        let a = b.add_node(ConversionTable::None);
        let c = b.add_node(ConversionTable::None);
        b.add_link(a, c, 1.0);
        b.add_link(c, a, 1.0);
        b.build()
    }

    #[test]
    fn fresh_network_has_zero_loads() {
        let net = pair_net();
        let st = ResidualState::fresh(&net);
        let snap = load_snapshot(&net, &st);
        assert_eq!(snap.max, 0.0);
        assert_eq!(snap.mean, 0.0);
        assert_eq!(snap.channels_in_use, 0);
        assert_eq!(snap.hot_links, 0);
    }

    #[test]
    fn snapshot_tracks_occupancy() {
        let net = pair_net();
        let mut st = ResidualState::fresh(&net);
        for l in 0..4 {
            st.occupy(&net, EdgeId(0), Wavelength(l)).unwrap();
        }
        st.occupy(&net, EdgeId(1), Wavelength(0)).unwrap();
        let snap = load_snapshot(&net, &st);
        assert_eq!(snap.max, 1.0);
        assert_eq!(snap.mean, (1.0 + 0.25) / 2.0);
        assert_eq!(snap.hot_links, 1);
        assert_eq!(snap.channels_in_use, 5);
        assert_eq!(snap.p50, 0.25);
        assert_eq!(snap.p99, 1.0);
    }
}
