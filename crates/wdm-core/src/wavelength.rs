//! Wavelengths and wavelength sets.
//!
//! The paper's `Λ = {λ_1, …, λ_W}` is a small global set (wide-area WDM
//! systems of the paper's era carried 8–40 channels; modern DWDM up to ~96).
//! Per-link availability `Λ(e)` / `Λ_avail(e)` is therefore a bitset: one
//! `u64` covers every realistic deployment, keeps set algebra branch-free,
//! and makes the residual-network updates of the simulator O(1).

use std::fmt;

/// Maximum number of wavelengths supported by [`WavelengthSet`].
pub const MAX_WAVELENGTHS: usize = 64;

/// A single wavelength channel `λ_i` (0-based index into `Λ`).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Wavelength(pub u8);

impl Wavelength {
    /// The channel index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Wavelength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

impl fmt::Display for Wavelength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λ{}", self.0)
    }
}

/// A set of wavelength channels, backed by a `u64` bitmask
/// (capacity [`MAX_WAVELENGTHS`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct WavelengthSet(u64);

impl WavelengthSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        Self(0)
    }

    /// The full set `{λ_0, …, λ_{w-1}}`.
    ///
    /// # Panics
    /// Panics if `w > MAX_WAVELENGTHS`.
    #[inline]
    pub fn full(w: usize) -> Self {
        assert!(
            w <= MAX_WAVELENGTHS,
            "at most {MAX_WAVELENGTHS} wavelengths"
        );
        if w == 64 {
            Self(u64::MAX)
        } else {
            Self((1u64 << w) - 1)
        }
    }

    /// Builds a set from explicit channel indices.
    pub fn from_indices(indices: &[u8]) -> Self {
        let mut s = Self::empty();
        for &i in indices {
            s.insert(Wavelength(i));
        }
        s
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of wavelengths in the set (`|Λ|`).
    #[inline]
    pub const fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `λ` is in the set.
    #[inline]
    pub fn contains(self, l: Wavelength) -> bool {
        debug_assert!(l.index() < MAX_WAVELENGTHS);
        self.0 & (1u64 << l.0) != 0
    }

    /// Inserts `λ`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, l: Wavelength) -> bool {
        debug_assert!(l.index() < MAX_WAVELENGTHS);
        let bit = 1u64 << l.0;
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes `λ`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, l: Wavelength) -> bool {
        let bit = 1u64 << l.0;
        let had = self.0 & bit != 0;
        self.0 &= !bit;
        had
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Set intersection (`Λ_avail(e) ∩ Λ_avail(e')` in Theorem 2's proof).
    #[inline]
    pub const fn intersect(self, other: Self) -> Self {
        Self(self.0 & other.0)
    }

    /// Set difference `self \ other` (e.g. `Λ(e) \ U(e)` = available).
    #[inline]
    pub const fn minus(self, other: Self) -> Self {
        Self(self.0 & !other.0)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub const fn is_subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// The raw backing bitmask (bit `i` set ⇔ `λ_i` present). Stable across
    /// serde round trips; the state hashes feed on this.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// The lowest-index wavelength, if any (first-fit assignment order).
    #[inline]
    pub fn first(self) -> Option<Wavelength> {
        if self.0 == 0 {
            None
        } else {
            Some(Wavelength(self.0.trailing_zeros() as u8))
        }
    }

    /// Iterates the wavelengths in ascending channel order.
    pub fn iter(self) -> impl Iterator<Item = Wavelength> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                Some(Wavelength(i))
            }
        })
    }
}

impl fmt::Debug for WavelengthSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Wavelength> for WavelengthSet {
    fn from_iter<T: IntoIterator<Item = Wavelength>>(iter: T) -> Self {
        let mut s = Self::empty();
        for l in iter {
            s.insert(l);
        }
        s
    }
}

/// Maximum number of wavelengths supported by [`WideWavelengthSet`].
pub const MAX_WIDE_WAVELENGTHS: usize = 256;

/// A wavelength set for dense-DWDM systems with up to
/// [`MAX_WIDE_WAVELENGTHS`] channels, backed by four `u64` words.
///
/// The routing algorithms use the single-word [`WavelengthSet`] (64 channels
/// cover the paper's era and typical C-band DWDM); this type exists for
/// planning tools that model wider systems and mirrors the same API.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct WideWavelengthSet([u64; 4]);

impl WideWavelengthSet {
    /// The empty set.
    pub const fn empty() -> Self {
        Self([0; 4])
    }

    /// The full set `{λ_0, …, λ_{w-1}}`.
    pub fn full(w: usize) -> Self {
        assert!(w <= MAX_WIDE_WAVELENGTHS);
        let mut words = [0u64; 4];
        for (i, word) in words.iter_mut().enumerate() {
            let lo = i * 64;
            if w >= lo + 64 {
                *word = u64::MAX;
            } else if w > lo {
                *word = (1u64 << (w - lo)) - 1;
            }
        }
        Self(words)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Number of channels in the set.
    pub fn count(self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether channel `i` is present.
    pub fn contains(self, i: usize) -> bool {
        debug_assert!(i < MAX_WIDE_WAVELENGTHS);
        self.0[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Inserts channel `i`; returns whether it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < MAX_WIDE_WAVELENGTHS);
        let bit = 1u64 << (i % 64);
        let fresh = self.0[i / 64] & bit == 0;
        self.0[i / 64] |= bit;
        fresh
    }

    /// Removes channel `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let bit = 1u64 << (i % 64);
        let had = self.0[i / 64] & bit != 0;
        self.0[i / 64] &= !bit;
        had
    }

    /// Set union.
    pub fn union(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] | o.0[i]))
    }

    /// Set intersection.
    pub fn intersect(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] & o.0[i]))
    }

    /// Set difference `self \ o`.
    pub fn minus(self, o: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] & !o.0[i]))
    }

    /// Iterates channel indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..4).flat_map(move |wi| {
            let mut bits = self.0[wi];
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl std::fmt::Debug for WideWavelengthSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "λ{l}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_count() {
        assert_eq!(WavelengthSet::full(0).count(), 0);
        assert_eq!(WavelengthSet::full(8).count(), 8);
        assert_eq!(WavelengthSet::full(64).count(), 64);
        assert!(WavelengthSet::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn full_rejects_oversize() {
        WavelengthSet::full(65);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = WavelengthSet::empty();
        assert!(s.insert(Wavelength(3)));
        assert!(!s.insert(Wavelength(3)));
        assert!(s.contains(Wavelength(3)));
        assert!(!s.contains(Wavelength(4)));
        assert!(s.remove(Wavelength(3)));
        assert!(!s.remove(Wavelength(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = WavelengthSet::from_indices(&[0, 1, 2]);
        let b = WavelengthSet::from_indices(&[2, 3]);
        assert_eq!(a.union(b), WavelengthSet::from_indices(&[0, 1, 2, 3]));
        assert_eq!(a.intersect(b), WavelengthSet::from_indices(&[2]));
        assert_eq!(a.minus(b), WavelengthSet::from_indices(&[0, 1]));
        assert!(WavelengthSet::from_indices(&[1]).is_subset_of(a));
        assert!(!b.is_subset_of(a));
    }

    #[test]
    fn iteration_order_and_first() {
        let s = WavelengthSet::from_indices(&[5, 1, 63]);
        let v: Vec<u8> = s.iter().map(|l| l.0).collect();
        assert_eq!(v, vec![1, 5, 63]);
        assert_eq!(s.first(), Some(Wavelength(1)));
        assert_eq!(WavelengthSet::empty().first(), None);
    }

    #[test]
    fn from_iterator() {
        let s: WavelengthSet = [Wavelength(2), Wavelength(4)].into_iter().collect();
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn debug_format() {
        let s = WavelengthSet::from_indices(&[0, 2]);
        assert_eq!(format!("{s:?}"), "{λ0,λ2}");
    }

    #[test]
    fn wide_full_and_count() {
        assert_eq!(WideWavelengthSet::full(0).count(), 0);
        assert_eq!(WideWavelengthSet::full(64).count(), 64);
        assert_eq!(WideWavelengthSet::full(100).count(), 100);
        assert_eq!(WideWavelengthSet::full(256).count(), 256);
        assert!(WideWavelengthSet::empty().is_empty());
    }

    #[test]
    fn wide_cross_word_operations() {
        let mut s = WideWavelengthSet::empty();
        assert!(s.insert(3));
        assert!(s.insert(70));
        assert!(s.insert(255));
        assert!(!s.insert(70));
        assert!(s.contains(70));
        assert!(!s.contains(71));
        assert_eq!(s.count(), 3);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![3, 70, 255]);
        assert!(s.remove(70));
        assert!(!s.remove(70));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn wide_set_algebra() {
        let mut a = WideWavelengthSet::empty();
        a.insert(1);
        a.insert(100);
        let mut b = WideWavelengthSet::empty();
        b.insert(100);
        b.insert(200);
        assert_eq!(a.union(b).count(), 3);
        assert_eq!(a.intersect(b).iter().collect::<Vec<_>>(), vec![100]);
        assert_eq!(a.minus(b).iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn wide_debug_format() {
        let mut s = WideWavelengthSet::empty();
        s.insert(0);
        s.insert(128);
        assert_eq!(format!("{s:?}"), "{λ0,λ128}");
    }
}
