//! Wavelength-conversion capability and cost tables.
//!
//! The paper models conversion via "cost factors of the form `c_v(λ_p, λ_q)`"
//! with `c_v(λ, λ) = 0`, covering "the general case where the conversion cost
//! depends on nodes and the wavelengths involved" (§2). Its approximation
//! analysis (§3.3) then assumes *full* switching with identical cost —
//! assumption (i) of Theorem 2. This module supports both, plus the two
//! intermediate regimes common in the WDM literature (no conversion and
//! range-limited conversion), so the experiments can probe what happens when
//! the theorem's premise is violated.

use crate::wavelength::Wavelength;

/// Per-node wavelength conversion table: which conversions are allowed and
/// what they cost. `λ → λ` is always allowed and always free (paper §2).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ConversionTable {
    /// No conversion capability: the wavelength-continuity constraint holds
    /// through this node (the Lemma 1 hardness regime).
    None,
    /// Full conversion: any `λ_p → λ_q` at uniform `cost` (Theorem 2's
    /// assumption (i)).
    Full {
        /// Cost of any `λ_p → λ_q`, `p ≠ q`.
        cost: f64,
    },
    /// Range-limited conversion: `λ_p → λ_q` allowed iff `|p − q| ≤ range`,
    /// at uniform `cost` (models sparse/limited converter hardware).
    Range {
        /// Maximum channel distance convertible.
        range: u8,
        /// Cost of an allowed conversion, `p ≠ q`.
        cost: f64,
    },
    /// Fully general `W × W` cost matrix; `f64::INFINITY` marks a forbidden
    /// conversion. Row = from, column = to, row-major, `w * w` entries.
    Matrix {
        /// Number of wavelengths `W` (matrix is `w × w`).
        w: u8,
        /// Row-major costs; `INFINITY` = forbidden.
        costs: Vec<f64>,
    },
}

impl ConversionTable {
    /// Builds a matrix table from a closure (`None` = forbidden).
    pub fn from_fn(w: u8, f: impl Fn(Wavelength, Wavelength) -> Option<f64>) -> Self {
        let mut costs = vec![f64::INFINITY; w as usize * w as usize];
        for p in 0..w {
            for q in 0..w {
                let c = if p == q {
                    Some(0.0)
                } else {
                    f(Wavelength(p), Wavelength(q))
                };
                if let Some(c) = c {
                    assert!(c >= 0.0, "conversion costs must be non-negative");
                    costs[p as usize * w as usize + q as usize] = c;
                }
            }
        }
        ConversionTable::Matrix { w, costs }
    }

    /// Cost of converting `from → to`, or `None` if the conversion is not
    /// allowed at this node. `from == to` is always `Some(0.0)`.
    #[inline]
    pub fn cost(&self, from: Wavelength, to: Wavelength) -> Option<f64> {
        if from == to {
            return Some(0.0);
        }
        match *self {
            ConversionTable::None => None,
            ConversionTable::Full { cost } => Some(cost),
            ConversionTable::Range { range, cost } => {
                (from.0.abs_diff(to.0) <= range).then_some(cost)
            }
            ConversionTable::Matrix { w, ref costs } => {
                let c = costs[from.index() * w as usize + to.index()];
                c.is_finite().then_some(c)
            }
        }
    }

    /// Whether the conversion `from → to` is allowed.
    #[inline]
    pub fn allows(&self, from: Wavelength, to: Wavelength) -> bool {
        self.cost(from, to).is_some()
    }

    /// The largest finite conversion cost in the table for wavelengths
    /// `0..w` (0 if only identity conversions are allowed). Used by the
    /// Theorem 2 premise check.
    pub fn max_cost(&self, w: usize) -> f64 {
        match *self {
            ConversionTable::None => 0.0,
            ConversionTable::Full { cost } => {
                if w > 1 {
                    cost
                } else {
                    0.0
                }
            }
            ConversionTable::Range { range, cost } => {
                if w > 1 && range >= 1 {
                    cost
                } else {
                    0.0
                }
            }
            ConversionTable::Matrix { w: mw, ref costs } => {
                let w = w.min(mw as usize);
                let mut max = 0.0f64;
                for p in 0..w {
                    for q in 0..w {
                        if p != q {
                            let c = costs[p * mw as usize + q];
                            if c.is_finite() {
                                max = max.max(c);
                            }
                        }
                    }
                }
                max
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L0: Wavelength = Wavelength(0);
    const L1: Wavelength = Wavelength(1);
    const L3: Wavelength = Wavelength(3);

    #[test]
    fn identity_is_always_free() {
        for t in [
            ConversionTable::None,
            ConversionTable::Full { cost: 5.0 },
            ConversionTable::Range {
                range: 1,
                cost: 2.0,
            },
        ] {
            assert_eq!(t.cost(L1, L1), Some(0.0));
        }
    }

    #[test]
    fn none_forbids_everything_else() {
        let t = ConversionTable::None;
        assert_eq!(t.cost(L0, L1), None);
        assert!(!t.allows(L0, L1));
        assert_eq!(t.max_cost(8), 0.0);
    }

    #[test]
    fn full_uniform_cost() {
        let t = ConversionTable::Full { cost: 3.0 };
        assert_eq!(t.cost(L0, L3), Some(3.0));
        assert_eq!(t.max_cost(8), 3.0);
        assert_eq!(t.max_cost(1), 0.0, "single wavelength has no conversions");
    }

    #[test]
    fn range_limits_distance() {
        let t = ConversionTable::Range {
            range: 2,
            cost: 1.5,
        };
        assert_eq!(t.cost(L0, L1), Some(1.5));
        assert_eq!(t.cost(L1, L3), Some(1.5));
        assert_eq!(t.cost(L0, L3), None);
    }

    #[test]
    fn matrix_table_from_fn() {
        // Only upward conversions allowed, cost = distance.
        let t = ConversionTable::from_fn(4, |p, q| (q.0 > p.0).then(|| (q.0 - p.0) as f64));
        assert_eq!(t.cost(L0, L3), Some(3.0));
        assert_eq!(t.cost(L3, L0), None);
        assert_eq!(t.cost(L1, L1), Some(0.0));
        assert_eq!(t.max_cost(4), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_fn_rejects_negative() {
        ConversionTable::from_fn(2, |_, _| Some(-1.0));
    }
}
