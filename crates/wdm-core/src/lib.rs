//! Robust routing in wide-area WDM networks — the core algorithms of
//! **Weifa Liang, IPPS 2001**.
//!
//! Given a directed WDM network `G = (V, E, Λ)` with per-link wavelength
//! availability, per-(link, wavelength) traversal costs and per-node
//! conversion tables, this crate establishes, for each connection request
//! `(s, t)`, a **primary semilightpath plus an edge-disjoint backup**:
//!
//! * [`disjoint::RobustRouteFinder`] — the §3.3 approximation (auxiliary
//!   graph `G'` → Suurballe → Liang–Shen refinement), 2× optimal under the
//!   paper's cost premise (Theorem 2);
//! * [`mincog::find_two_paths_mincog`] — the §4.1 load minimiser
//!   (thresholded `G_c` with exponential congestion weights, geometric
//!   threshold search), 3× optimal (Theorem 3);
//! * [`joint::find_two_paths_joint`] — the §4.2 two-phase joint
//!   load-and-cost optimiser, the paper's headline contribution;
//! * [`exact`] — exhaustive and integer-programming exact solvers (the
//!   paper's Eqs. 3–21) for ratio measurements;
//! * [`baselines`] — two-step greedy, unrefined Suurballe, k-shortest-paths
//!   and unprotected-primary comparison policies;
//! * [`node_disjoint`] — the node-disjoint variant (survives single node
//!   failures) via node splitting, an extension the paper's introduction
//!   names but does not develop;
//! * [`multi`] — `k`-disjoint routing (one primary + `k − 1` backups) via
//!   min-cost flow on the auxiliary graph, generalising `Find_Two_Paths`.
//!
//! Model types: [`network::WdmNetwork`] (immutable),
//! [`network::ResidualState`] (occupancy + failures),
//! [`semilightpath::Semilightpath`] (paths with per-hop wavelengths and
//! Eq. 1 costs), [`wavelength::WavelengthSet`] (bitset availability),
//! [`conversion::ConversionTable`] (full/none/range/matrix capabilities).

pub mod aux_engine;
pub mod aux_graph;
pub mod baselines;
pub mod conversion;
pub mod disjoint;
pub mod error;
pub mod exact;
pub mod io;
pub mod joint;
pub mod journal;
pub mod load;
pub mod mincog;
pub mod multi;
pub mod network;
pub mod node_disjoint;
pub mod optimal_slp;
pub mod partition;
pub mod predict;
pub mod semilightpath;
pub mod wavelength;

/// One-stop imports.
pub mod prelude {
    pub use crate::aux_engine::{AuxEngine, RequestStats, RouterCtx, SyncStats};
    pub use crate::aux_graph::{AuxGraph, AuxSpec, AuxWeights};
    pub use crate::conversion::ConversionTable;
    pub use crate::disjoint::{RobustRouteFinder, RouteFootprint};
    pub use crate::error::RoutingError;
    pub use crate::joint::find_two_paths_joint;
    pub use crate::journal::{EventSink, NetEvent, NoopSink, ReplayError, StateJournal, Txn};
    pub use crate::load::{load_snapshot, LoadSnapshot};
    pub use crate::mincog::{exact_min_load_threshold, find_two_paths_mincog};
    pub use crate::multi::find_k_disjoint;
    pub use crate::network::{NetworkBuilder, ResidualState, WdmNetwork};
    pub use crate::node_disjoint::find_node_disjoint;
    pub use crate::optimal_slp::{assign_wavelengths_on_path, optimal_semilightpath};
    pub use crate::partition::{DemandClass, ShardMap, TopologyPartition};
    pub use crate::predict::{
        AllConflictOracle, FootprintOracle, LocalityPredictor, NoConflictOracle,
    };
    pub use crate::semilightpath::{Hop, RobustRoute, Semilightpath};
    pub use crate::wavelength::{Wavelength, WavelengthSet};
    pub use wdm_telemetry::{
        NoopRecorder, NoopTracer, Phase, Recorder, SpanBuffer, TelemetrySink, Tracer,
    };
}
