//! Static topology partitioning for shard-parallel batch routing.
//!
//! The speculative batch engines in `wdm-sim` extract parallelism *within*
//! a scheduling round, but every round still synchronises on one commit
//! sweep. To scale across cores the topology itself has to be split:
//! demands whose routes stay inside one region of the network can be
//! routed by a dedicated worker with **no synchronisation at all** against
//! workers of other regions, as long as the regions share no links. This
//! module provides the static decomposition that makes that safe:
//!
//! * [`TopologyPartition`] — a seed-deterministic, BFS-growing partition
//!   of the nodes into `S` shards, balanced by *degree mass* (the number
//!   of directed links incident to a shard's nodes — a proxy for both
//!   routing work and channel capacity). Every directed link is then
//!   either **intra-shard** (both endpoints in one shard) or a **cut
//!   link**; the cut set is explicit and is exactly the part of the
//!   network shard workers may never touch on their own.
//! * [`ShardMap`] — the per-batch classifier: given a demand `(s, t)` and
//!   a [`FootprintOracle`] prediction of its route's links, decide whether
//!   the demand is *intra-shard* (endpoints co-resident and every
//!   predicted link inside that shard) or *cross-shard* (anything else).
//!
//! Classification is a scheduling hint, not a correctness claim — the
//! sharded engine revalidates every speculated route against the links
//! actually occupied, so a misclassified demand costs a bounded retry,
//! exactly like a mispredicted footprint in conflict-group scheduling.
//!
//! ## Growth algorithm and its invariants
//!
//! Seeds are chosen deterministically from `seed`: the first by a
//! splitmix64 draw over the node ids, the rest by farthest-point sampling
//! (each new seed maximises its undirected BFS distance from all chosen
//! seeds, ties to the lowest id — unreachable nodes count as infinitely
//! far, so disconnected components attract seeds first). Regions then
//! grow one node at a time: every step claims a node for the shard with
//! the **globally minimal degree mass**, taken from that shard's BFS
//! frontier, or — when its frontier is exhausted — teleported to the
//! lowest-id unclaimed node. Because every claim goes to the current
//! minimum, the classic list-scheduling argument gives the balance
//! invariant checked by `tests/partition_properties.rs`:
//!
//! ```text
//! max_s weight(s) − min_s weight(s)  ≤  max_v degree_mass(v)
//! ```
//!
//! Determinism matters more than cut quality here: the partition is part
//! of the batch engine's observable schedule, and batch runs are required
//! to be reproducible bit-for-bit.

use crate::network::WdmNetwork;
use crate::predict::FootprintOracle;
use std::collections::VecDeque;
use wdm_graph::{EdgeId, NodeId};

/// Sentinel shard id for cut links in the internal table.
const CUT: u32 = u32::MAX;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A static split of the network into edge-balanced shards plus the
/// explicit cut-link set. See the module docs for the construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyPartition {
    shards: usize,
    /// Shard id per node.
    node_shard: Vec<u32>,
    /// Shard id per directed link, or [`CUT`].
    link_shard: Vec<u32>,
    /// Directed links whose endpoints live in different shards, ascending.
    cut: Vec<EdgeId>,
    /// Degree mass (incident directed links) claimed per shard.
    weights: Vec<u64>,
}

impl TopologyPartition {
    /// Grows a partition of `net` into (up to) `shards` shards,
    /// deterministically in `(net, shards, seed)`. `shards` is clamped to
    /// `1..=node_count`.
    pub fn grow(net: &WdmNetwork, shards: usize, seed: u64) -> Self {
        let g = net.graph();
        let n = g.node_count();
        let m = net.link_count();
        let s_count = shards.clamp(1, n.max(1));
        let degree_mass = |v: NodeId| (g.out_edges(v).len() + g.in_edges(v).len()) as u64;

        // Seed nodes: one splitmix draw, then farthest-point sampling.
        let mut seeds: Vec<NodeId> = Vec::with_capacity(s_count);
        if n > 0 {
            seeds.push(NodeId((splitmix64(seed) % n as u64) as u32));
        }
        let mut dist = vec![u32::MAX; n];
        let mut bfs = VecDeque::new();
        for _ in 1..s_count {
            // Multi-source undirected BFS from the chosen seeds.
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            bfs.clear();
            for &s in &seeds {
                dist[s.index()] = 0;
                bfs.push_back(s);
            }
            while let Some(u) = bfs.pop_front() {
                let du = dist[u.index()];
                for &e in g.out_edges(u).iter().chain(g.in_edges(u)) {
                    let (a, b) = g.endpoints(e);
                    let far = if a == u { b } else { a };
                    if dist[far.index()] == u32::MAX {
                        dist[far.index()] = du + 1;
                        bfs.push_back(far);
                    }
                }
            }
            // Farthest node, ties to the lowest id; unreached nodes
            // (u32::MAX) are farthest of all.
            let far = (0..n)
                .max_by_key(|&v| (dist[v], std::cmp::Reverse(v)))
                .expect("s_count <= n implies n > 0");
            seeds.push(NodeId(far as u32));
        }

        // Region growth: always extend the globally lightest shard.
        let mut node_shard = vec![u32::MAX; n];
        let mut weights = vec![0u64; s_count];
        let mut frontiers: Vec<VecDeque<NodeId>> =
            seeds.iter().map(|&s| VecDeque::from([s])).collect();
        let mut next_unclaimed = 0usize;
        let mut claimed = 0usize;
        while claimed < n {
            let s = (0..s_count)
                .min_by_key(|&s| (weights[s], s))
                .expect("at least one shard");
            let v = loop {
                match frontiers[s].pop_front() {
                    Some(u) if node_shard[u.index()] == u32::MAX => break u,
                    Some(_) => continue,
                    None => {
                        // Frontier exhausted (region closed off or its
                        // component fully claimed): teleport to the
                        // lowest-id unclaimed node so the lightest shard
                        // keeps receiving mass and the balance invariant
                        // survives disconnected topologies.
                        while node_shard[next_unclaimed] != u32::MAX {
                            next_unclaimed += 1;
                        }
                        break NodeId(next_unclaimed as u32);
                    }
                }
            };
            node_shard[v.index()] = s as u32;
            weights[s] += degree_mass(v);
            claimed += 1;
            for &e in g.out_edges(v).iter().chain(g.in_edges(v)) {
                let (a, b) = g.endpoints(e);
                let far = if a == v { b } else { a };
                if node_shard[far.index()] == u32::MAX {
                    frontiers[s].push_back(far);
                }
            }
        }

        // Link assignment: same-shard endpoints own the link, everything
        // else is cut.
        let mut link_shard = vec![CUT; m];
        let mut cut = Vec::new();
        for (ei, slot) in link_shard.iter_mut().enumerate() {
            let e = EdgeId::from(ei);
            let (u, v) = g.endpoints(e);
            let (a, b) = (node_shard[u.index()], node_shard[v.index()]);
            if a == b {
                *slot = a;
            } else {
                cut.push(e);
            }
        }

        Self {
            shards: s_count,
            node_shard,
            link_shard,
            cut,
            weights,
        }
    }

    /// Number of shards actually grown (`shards` clamped to the node
    /// count).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The shard that claimed node `v`.
    pub fn node_shard(&self, v: NodeId) -> u32 {
        self.node_shard[v.index()]
    }

    /// The shard owning directed link `e`, or `None` for a cut link.
    pub fn link_shard(&self, e: EdgeId) -> Option<u32> {
        let s = self.link_shard[e.index()];
        (s != CUT).then_some(s)
    }

    /// Directed links whose endpoints live in different shards, in
    /// ascending link order.
    pub fn cut_links(&self) -> &[EdgeId] {
        &self.cut
    }

    /// Fraction of directed links in the cut set.
    pub fn cut_ratio(&self) -> f64 {
        if self.link_shard.is_empty() {
            0.0
        } else {
            self.cut.len() as f64 / self.link_shard.len() as f64
        }
    }

    /// Degree mass claimed per shard — the balance the grower equalises.
    pub fn shard_weights(&self) -> &[u64] {
        &self.weights
    }

    /// The grower's stated balance tolerance for `net`: the maximum
    /// degree mass of any single node (see the module docs for why
    /// `max − min ≤` this bound holds).
    pub fn balance_tolerance(net: &WdmNetwork) -> u64 {
        let g = net.graph();
        (0..g.node_count())
            .map(|v| {
                let v = NodeId(v as u32);
                (g.out_edges(v).len() + g.in_edges(v).len()) as u64
            })
            .max()
            .unwrap_or(0)
    }
}

/// How a demand relates to a [`TopologyPartition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemandClass {
    /// Endpoints co-resident in the shard and every predicted footprint
    /// link inside it: a shard worker may route this demand against its
    /// own mirror with no cross-shard synchronisation.
    Intra(u32),
    /// Endpoints in different shards, or the predicted footprint touches
    /// a cut link or a foreign shard: must be routed at its exact serial
    /// slot on the live state.
    Cross,
}

/// Per-batch demand classifier over a [`TopologyPartition`], with the
/// prediction scratch hoisted so classification allocates nothing once
/// warm.
#[derive(Debug, Clone)]
pub struct ShardMap {
    partition: TopologyPartition,
    scratch: Vec<EdgeId>,
}

impl ShardMap {
    /// Wraps a grown partition.
    pub fn new(partition: TopologyPartition) -> Self {
        Self {
            partition,
            scratch: Vec::new(),
        }
    }

    /// The underlying partition.
    pub fn partition(&self) -> &TopologyPartition {
        &self.partition
    }

    /// Classifies demand `(s, t)` through `oracle`'s footprint
    /// prediction. Deterministic for a deterministic oracle; wrong in
    /// either direction at worst costs the engine a bounded retry
    /// (optimistic misclassification) or parallelism (pessimistic).
    pub fn classify<O: FootprintOracle + ?Sized>(
        &mut self,
        oracle: &mut O,
        s: NodeId,
        t: NodeId,
    ) -> DemandClass {
        let home = self.partition.node_shard(s);
        if self.partition.node_shard(t) != home {
            return DemandClass::Cross;
        }
        self.scratch.clear();
        oracle.predict(s, t, &mut self.scratch);
        for &e in &self.scratch {
            if self.partition.link_shard(e) != Some(home) {
                return DemandClass::Cross;
            }
        }
        DemandClass::Intra(home)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::network::NetworkBuilder;
    use crate::predict::{AllConflictOracle, LocalityPredictor, NoConflictOracle};

    /// Bidirected ring: every node has degree mass 4.
    fn ring(n: u32) -> WdmNetwork {
        let mut b = NetworkBuilder::new(2);
        let nodes: Vec<_> = (0..n)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        for i in 0..n as usize {
            b.add_link(nodes[i], nodes[(i + 1) % n as usize], 1.0);
            b.add_link(nodes[(i + 1) % n as usize], nodes[i], 1.0);
        }
        b.build()
    }

    #[test]
    fn every_link_is_intra_or_cut_and_counts_add_up() {
        let net = ring(12);
        let p = TopologyPartition::grow(&net, 3, 7);
        let m = net.link_count();
        let intra = (0..m)
            .filter(|&e| p.link_shard(EdgeId::from(e)).is_some())
            .count();
        assert_eq!(intra + p.cut_links().len(), m);
        for &e in p.cut_links() {
            assert_eq!(p.link_shard(e), None);
            let (u, v) = net.graph().endpoints(e);
            assert_ne!(p.node_shard(u), p.node_shard(v));
        }
    }

    #[test]
    fn ring_partition_is_balanced_within_tolerance() {
        let net = ring(16);
        for shards in [2, 3, 4, 5] {
            let p = TopologyPartition::grow(&net, shards, 3);
            let w = p.shard_weights();
            let (max, min) = (w.iter().max().unwrap(), w.iter().min().unwrap());
            assert!(
                max - min <= TopologyPartition::balance_tolerance(&net),
                "shards={shards}: weights {w:?}"
            );
        }
    }

    #[test]
    fn shard_count_clamps_to_node_count() {
        let net = ring(4);
        let p = TopologyPartition::grow(&net, 64, 0);
        assert_eq!(p.shard_count(), 4);
        let p1 = TopologyPartition::grow(&net, 1, 0);
        assert_eq!(p1.shard_count(), 1);
        assert!(p1.cut_links().is_empty());
        assert_eq!(p1.cut_ratio(), 0.0);
    }

    #[test]
    fn growth_is_seed_deterministic_and_seed_sensitive() {
        let net = ring(16);
        let a = TopologyPartition::grow(&net, 4, 42);
        let b = TopologyPartition::grow(&net, 4, 42);
        assert_eq!(a, b);
        // Different seeds start from different nodes; on a symmetric ring
        // that rotates the partition.
        let c = TopologyPartition::grow(&net, 4, 43);
        assert!(a == c || a != c); // both are valid; determinism is the claim
    }

    #[test]
    fn classify_separates_local_and_crossing_demands() {
        let net = ring(16);
        let mut map = ShardMap::new(TopologyPartition::grow(&net, 2, 1));
        // Endpoint shards decide first: a pair split across shards is
        // Cross no matter what the oracle says.
        let (mut s_in, mut t_other) = (None, None);
        for v in 0..16u32 {
            match map.partition().node_shard(NodeId(v)) {
                0 if s_in.is_none() => s_in = Some(NodeId(v)),
                1 if t_other.is_none() => t_other = Some(NodeId(v)),
                _ => {}
            }
        }
        let (s, t) = (s_in.unwrap(), t_other.unwrap());
        let mut none = NoConflictOracle;
        assert_eq!(map.classify(&mut none, s, t), DemandClass::Cross);
        // Co-resident endpoints with an empty prediction are Intra…
        assert_eq!(map.classify(&mut none, s, s), DemandClass::Intra(0));
        // …but an all-links prediction drags in cut links: Cross.
        let mut all = AllConflictOracle {
            links: net.link_count(),
        };
        assert_eq!(map.classify(&mut all, s, s), DemandClass::Cross);
    }

    #[test]
    fn locality_oracle_classification_is_deterministic() {
        let net = ring(12);
        let demands: Vec<(NodeId, NodeId)> = (0..12u32)
            .map(|v| (NodeId(v), NodeId((v + 3) % 12)))
            .collect();
        let run = || {
            let mut map = ShardMap::new(TopologyPartition::grow(&net, 3, 9));
            let mut oracle = LocalityPredictor::with_default_radius(&net);
            demands
                .iter()
                .map(|&(s, t)| map.classify(&mut oracle, s, t))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
