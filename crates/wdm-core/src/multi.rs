//! k-disjoint routing (extension): one primary plus `k − 1` backups, all
//! mutually edge-disjoint.
//!
//! The paper protects against a *single* link failure with one backup
//! (`k = 2`). Protecting against `k − 1` simultaneous failures generalises
//! `Find_Two_Paths` from Suurballe's algorithm to min-cost flow of `k`
//! units over the same auxiliary graph `G'` (unit capacities on every
//! auxiliary arc), followed by the same per-leg Liang–Shen refinement.
//! For `k = 2` this reproduces the §3.3 result exactly (the integration
//! tests cross-check it).

use crate::aux_graph::{AuxGraph, AuxSpec};
use crate::disjoint::refine_leg;
use crate::error::RoutingError;
use crate::network::{ResidualState, WdmNetwork};
use crate::semilightpath::Semilightpath;
use wdm_graph::mincostflow::min_cost_disjoint_paths;
use wdm_graph::NodeId;

/// A fan of `k` mutually edge-disjoint semilightpaths, cheapest first.
#[derive(Debug, Clone)]
pub struct DisjointFan {
    /// The legs, sorted by ascending cost (`legs\[0\]` = primary).
    pub legs: Vec<Semilightpath>,
}

impl DisjointFan {
    /// Total Eq. 1 cost over all legs.
    pub fn total_cost(&self) -> f64 {
        self.legs.iter().map(|l| l.cost).sum()
    }

    /// Pairwise edge-disjointness check.
    pub fn is_edge_disjoint(&self) -> bool {
        for i in 0..self.legs.len() {
            for j in (i + 1)..self.legs.len() {
                if self.legs[i].shares_edge_with(&self.legs[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// Finds `k` mutually edge-disjoint semilightpaths `s → t` approximately
/// minimising the total cost (min-cost flow on `G'` + refinement).
///
/// Returns [`RoutingError::NoDisjointPair`] when fewer than `k` disjoint
/// routes exist.
pub fn find_k_disjoint(
    net: &WdmNetwork,
    state: &ResidualState,
    s: NodeId,
    t: NodeId,
    k: usize,
) -> Result<DisjointFan, RoutingError> {
    if s == t || k == 0 {
        return Err(RoutingError::DegenerateRequest);
    }
    let aux = AuxGraph::build(net, state, s, t, AuxSpec::g_prime());
    let (aux_paths, _) =
        min_cost_disjoint_paths(&aux.graph, aux.source, aux.sink, k, |e| aux.weight(e))
            .ok_or(RoutingError::NoDisjointPair)?;
    let mut legs = Vec::with_capacity(k);
    for p in &aux_paths {
        let phys = aux.physical_edges(p);
        legs.push(refine_leg(net, state, s, t, &phys)?);
    }
    legs.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
    let fan = DisjointFan { legs };
    debug_assert!(fan.is_edge_disjoint());
    Ok(fan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::ConversionTable;
    use crate::disjoint::RobustRouteFinder;
    use crate::network::NetworkBuilder;

    /// Three parallel corridors of increasing cost.
    fn corridors() -> WdmNetwork {
        let mut b = NetworkBuilder::new(4);
        let n: Vec<_> = (0..5)
            .map(|_| b.add_node(ConversionTable::Full { cost: 0.1 }))
            .collect();
        for (i, mid) in (1..=3).enumerate() {
            let c = (i + 1) as f64;
            b.add_link(n[0], n[mid], c);
            b.add_link(n[mid], n[4], c);
        }
        b.build()
    }

    #[test]
    fn three_disjoint_legs_in_cost_order() {
        let net = corridors();
        let st = ResidualState::fresh(&net);
        let fan = find_k_disjoint(&net, &st, NodeId(0), NodeId(4), 3).unwrap();
        assert_eq!(fan.legs.len(), 3);
        assert!(fan.is_edge_disjoint());
        assert_eq!(fan.total_cost(), 2.0 + 4.0 + 6.0);
        assert!(fan.legs[0].cost <= fan.legs[1].cost);
        assert!(fan.legs[1].cost <= fan.legs[2].cost);
        for leg in &fan.legs {
            leg.validate(&net, &st).unwrap();
        }
    }

    #[test]
    fn k2_matches_pairwise_finder() {
        let net = corridors();
        let st = ResidualState::fresh(&net);
        let fan = find_k_disjoint(&net, &st, NodeId(0), NodeId(4), 2).unwrap();
        let pair = RobustRouteFinder::new(&net)
            .find(&st, NodeId(0), NodeId(4))
            .unwrap();
        assert!((fan.total_cost() - pair.total_cost()).abs() < 1e-9);
    }

    #[test]
    fn infeasible_k_reports() {
        let net = corridors();
        let st = ResidualState::fresh(&net);
        assert!(matches!(
            find_k_disjoint(&net, &st, NodeId(0), NodeId(4), 4),
            Err(RoutingError::NoDisjointPair)
        ));
        assert!(matches!(
            find_k_disjoint(&net, &st, NodeId(0), NodeId(0), 2),
            Err(RoutingError::DegenerateRequest)
        ));
    }

    #[test]
    fn nsfnet_triple_protection_where_connectivity_allows() {
        let net = NetworkBuilder::nsfnet(8).build();
        let st = ResidualState::fresh(&net);
        // Node 8 (PA) has degree 4 in NSFNET; 0 (WA) has degree 3.
        let fan = find_k_disjoint(&net, &st, NodeId(0), NodeId(8), 3);
        let fan = fan.expect("three disjoint routes exist between degree-3+ nodes");
        assert_eq!(fan.legs.len(), 3);
        assert!(fan.is_edge_disjoint());
    }
}
