//! The WDM network model `G = (V, E, Λ)` (§2) and its mutable residual
//! state (which wavelengths are in use, which links have failed).

use crate::conversion::ConversionTable;
use crate::wavelength::{Wavelength, WavelengthSet, MAX_WAVELENGTHS};
use wdm_graph::{DiGraph, EdgeId, NodeId};

/// Per-node payload: the wavelength-conversion switch.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NodeData {
    /// Conversion capability/cost table `c_v(·,·)`.
    pub conversion: ConversionTable,
}

/// Per-link payload: the wavelength complement `Λ(e)` and traversal costs
/// `w(e, λ)`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LinkData {
    /// Wavelengths installed on the fibre (`Λ(e)`).
    pub lambda: WavelengthSet,
    /// Uniform traversal cost (assumption (ii) of §3.3: `w(e, λ)` identical
    /// across `λ`). Always set; `per_lambda` overrides it where present.
    pub base_cost: f64,
    /// Optional per-wavelength cost override (length `W`, indexed by
    /// channel). Entries for channels outside `lambda` are ignored.
    pub per_lambda: Option<Vec<f64>>,
}

impl LinkData {
    /// The traversal cost `w(e, λ)`.
    #[inline]
    pub fn cost(&self, l: Wavelength) -> f64 {
        match &self.per_lambda {
            Some(v) => v[l.index()],
            None => self.base_cost,
        }
    }

    /// Whether the link declares a uniform per-wavelength cost.
    pub fn is_uniform_cost(&self) -> bool {
        match &self.per_lambda {
            None => true,
            Some(v) => {
                let mut it = self.lambda.iter().map(|l| v[l.index()]);
                match it.next() {
                    None => true,
                    Some(first) => it.all(|c| c == first),
                }
            }
        }
    }
}

/// An immutable wide-area WDM network: topology + wavelength complements +
/// traversal costs + conversion tables.
///
/// Mutable occupancy/failure state lives in [`ResidualState`], so many
/// concurrent simulations can share one network (the simulator's parallel
/// replications rely on this).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WdmNetwork {
    graph: DiGraph<NodeData, LinkData>,
    num_wavelengths: usize,
}

impl WdmNetwork {
    /// Number of wavelengths `W` in the system-wide set `Λ`.
    #[inline]
    pub fn num_wavelengths(&self) -> usize {
        self.num_wavelengths
    }

    /// The underlying directed multigraph.
    #[inline]
    pub fn graph(&self) -> &DiGraph<NodeData, LinkData> {
        &self.graph
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of directed links `m`.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Installed wavelengths `Λ(e)`.
    #[inline]
    pub fn lambda(&self, e: EdgeId) -> WavelengthSet {
        self.graph.edge(e).lambda
    }

    /// Capacity `N(e) = |Λ(e)|`.
    #[inline]
    pub fn capacity(&self, e: EdgeId) -> usize {
        self.lambda(e).count()
    }

    /// Traversal cost `w(e, λ)`.
    #[inline]
    pub fn link_cost(&self, e: EdgeId, l: Wavelength) -> f64 {
        self.graph.edge(e).cost(l)
    }

    /// Minimum traversal cost over installed wavelengths of `e`.
    pub fn min_link_cost(&self, e: EdgeId) -> f64 {
        self.lambda(e)
            .iter()
            .map(|l| self.link_cost(e, l))
            .fold(f64::INFINITY, f64::min)
    }

    /// Conversion cost `c_v(λ_p, λ_q)` (`None` = conversion not allowed).
    #[inline]
    pub fn conversion_cost(&self, v: NodeId, from: Wavelength, to: Wavelength) -> Option<f64> {
        self.graph.node(v).conversion.cost(from, to)
    }

    /// Conversion table of node `v`.
    #[inline]
    pub fn conversion(&self, v: NodeId) -> &ConversionTable {
        &self.graph.node(v).conversion
    }

    /// Endpoints of link `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.graph.endpoints(e)
    }

    /// Theorem 2's premise: at every node, the cost of any allowed
    /// wavelength conversion is no greater than the traversal cost of any
    /// incident link. The ratio experiments split their populations on this
    /// predicate.
    pub fn satisfies_ratio_premise(&self) -> bool {
        for v in self.graph.node_ids() {
            let conv_max = self.graph.node(v).conversion.max_cost(self.num_wavelengths);
            if conv_max == 0.0 {
                continue;
            }
            let incident_min = self
                .graph
                .out_edges(v)
                .iter()
                .chain(self.graph.in_edges(v))
                .map(|&e| {
                    self.lambda(e)
                        .iter()
                        .map(|l| self.link_cost(e, l))
                        .fold(f64::INFINITY, f64::min)
                })
                .fold(f64::INFINITY, f64::min);
            if conv_max > incident_min {
                return false;
            }
        }
        true
    }

    /// Whether assumption (i)+(ii) of §3.3 hold exactly: full conversion at
    /// every node with node-identical cost, and uniform per-wavelength link
    /// costs.
    pub fn satisfies_approx_assumptions(&self) -> bool {
        self.full_conversion()
            && self
                .graph
                .edge_ids()
                .all(|e| self.graph.edge(e).is_uniform_cost())
    }

    /// Whether every node has a full conversion complement (assumption (i)
    /// alone). Under full conversion the Lemma 2 refinement never fails, so
    /// §4.1 threshold feasibility is monotone in ϑ — the property the
    /// warm-started MinCog search relies on.
    pub fn full_conversion(&self) -> bool {
        self.graph
            .node_ids()
            .all(|v| matches!(self.graph.node(v).conversion, ConversionTable::Full { .. }))
    }
}

/// Incremental builder for [`WdmNetwork`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    graph: DiGraph<NodeData, LinkData>,
    num_wavelengths: usize,
}

impl NetworkBuilder {
    /// Starts a network with `w` wavelengths per fibre at most.
    pub fn new(w: usize) -> Self {
        assert!((1..=MAX_WAVELENGTHS).contains(&w));
        Self {
            graph: DiGraph::new(),
            num_wavelengths: w,
        }
    }

    /// Adds a node with the given conversion table; returns its id.
    pub fn add_node(&mut self, conversion: ConversionTable) -> NodeId {
        self.graph.add_node(NodeData { conversion })
    }

    /// Adds a directed link with the full wavelength complement and uniform
    /// cost.
    pub fn add_link(&mut self, u: NodeId, v: NodeId, cost: f64) -> EdgeId {
        self.add_link_with(u, v, cost, WavelengthSet::full(self.num_wavelengths))
    }

    /// Adds a directed link with an explicit wavelength complement.
    pub fn add_link_with(
        &mut self,
        u: NodeId,
        v: NodeId,
        cost: f64,
        lambda: WavelengthSet,
    ) -> EdgeId {
        assert!(
            cost.is_finite() && cost >= 0.0,
            "link costs must be finite and non-negative"
        );
        assert!(
            lambda.is_subset_of(WavelengthSet::full(self.num_wavelengths)),
            "wavelengths outside the system set"
        );
        self.graph.add_edge(
            u,
            v,
            LinkData {
                lambda,
                base_cost: cost,
                per_lambda: None,
            },
        )
    }

    /// Adds a directed link with per-wavelength costs (`costs.len() == W`).
    pub fn add_link_per_lambda(
        &mut self,
        u: NodeId,
        v: NodeId,
        lambda: WavelengthSet,
        costs: Vec<f64>,
    ) -> EdgeId {
        assert_eq!(costs.len(), self.num_wavelengths);
        assert!(costs.iter().all(|&c| c.is_finite() && c >= 0.0));
        let base = lambda
            .iter()
            .map(|l| costs[l.index()])
            .fold(f64::INFINITY, f64::min);
        self.graph.add_edge(
            u,
            v,
            LinkData {
                lambda,
                base_cost: if base.is_finite() { base } else { 0.0 },
                per_lambda: Some(costs),
            },
        )
    }

    /// Lifts a plain weighted topology (e.g. from `wdm_graph::topology`)
    /// into a WDM network: every node gets `conversion.clone()`, every arc
    /// the full wavelength complement with `cost_scale × length` as its
    /// uniform traversal cost.
    pub fn from_topology(
        topo: &DiGraph<(), f64>,
        w: usize,
        conversion: ConversionTable,
        cost_scale: f64,
    ) -> Self {
        let mut b = Self::new(w);
        for _ in topo.node_ids() {
            b.add_node(conversion.clone());
        }
        for e in topo.edge_ids() {
            let (u, v) = topo.endpoints(e);
            b.add_link(u, v, topo.weight(e) * cost_scale);
        }
        b
    }

    /// The standard 14-node NSFNET with `w` wavelengths, unit-per-100km
    /// costs and full conversion priced at the cheapest incident link
    /// (so Theorem 2's premise holds with equality at the tightest node).
    pub fn nsfnet(w: usize) -> Self {
        let topo = wdm_graph::topology::nsfnet();
        // Cheapest fibre is 300 km -> cost 3.0; conversion cost 3.0 keeps
        // the premise satisfied network-wide.
        let mut b = Self::from_topology(&topo, w, ConversionTable::Full { cost: 3.0 }, 0.01);
        b.num_wavelengths = w;
        b
    }

    /// Finalises the network.
    pub fn build(self) -> WdmNetwork {
        WdmNetwork {
            graph: self.graph,
            num_wavelengths: self.num_wavelengths,
        }
    }
}

/// Errors from residual-state mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// The wavelength is not installed on the link.
    NotInstalled,
    /// The wavelength is already occupied on the link.
    AlreadyUsed,
    /// The wavelength was not occupied (release of a free channel).
    NotUsed,
    /// The link is failed.
    LinkFailed,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StateError::NotInstalled => "wavelength not installed on link",
            StateError::AlreadyUsed => "wavelength already in use on link",
            StateError::NotUsed => "wavelength not in use on link",
            StateError::LinkFailed => "link is failed",
        };
        f.write_str(s)
    }
}

impl std::error::Error for StateError {}

/// Mutable occupancy and failure state layered over a [`WdmNetwork`]:
/// `U(e)` (wavelengths in use) per link and a failed-link mask. Defines the
/// residual network `G(V, E, Λ_avail)` of §3.3.1.
///
/// Every mutation also advances a monotone *change clock* and stamps the
/// touched link with it, so incremental consumers (the auxiliary-graph
/// engine) can refresh only the links that changed since their last sync.
/// The clocks are bookkeeping, not state: they are ignored by `PartialEq`
/// and excluded from the serialized form.
#[derive(Debug, Clone)]
pub struct ResidualState {
    used: Vec<WavelengthSet>,
    failed: Vec<bool>,
    /// Monotone counter, bumped once per mutation (including failed ones
    /// that still observed the state, see the mutators).
    clock: u64,
    /// Per-link value of `clock` at the link's most recent mutation.
    link_clock: Vec<u64>,
}

/// Equality is over the semantic payload (`used`, `failed`) only; two states
/// reached by different mutation histories compare equal.
impl PartialEq for ResidualState {
    fn eq(&self, other: &Self) -> bool {
        self.used == other.used && self.failed == other.failed
    }
}

/// Serializes exactly the pre-clock layout `{"used": [...], "failed": [...]}`
/// so on-disk `.wdm` snapshots are unaffected by the change tracking.
impl serde::Serialize for ResidualState {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (String::from("used"), serde::Serialize::to_value(&self.used)),
            (
                String::from("failed"),
                serde::Serialize::to_value(&self.failed),
            ),
        ])
    }
}

impl serde::Deserialize for ResidualState {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| serde::unexpected(v, "struct ResidualState"))?;
        let used: Vec<WavelengthSet> =
            serde::Deserialize::from_value(serde::field(fields, "used", "ResidualState")?)?;
        let failed: Vec<bool> =
            serde::Deserialize::from_value(serde::field(fields, "failed", "ResidualState")?)?;
        let links = used.len();
        // Clocks restart at 1 with every link stamped: a consumer that
        // synced against a *different* lineage (clock `c`) sees either a
        // clock regression (`1 < c`, full refresh) or every link dirty
        // (`1 > 0`), so no warm engine can silently keep stale weights
        // after a round trip through the serialized form.
        Ok(Self {
            used,
            failed,
            clock: 1,
            link_clock: vec![1; links],
        })
    }
}

impl ResidualState {
    /// A fresh state: nothing occupied, nothing failed.
    pub fn fresh(net: &WdmNetwork) -> Self {
        Self {
            used: vec![WavelengthSet::empty(); net.link_count()],
            failed: vec![false; net.link_count()],
            clock: 0,
            link_clock: vec![0; net.link_count()],
        }
    }

    /// Current value of the change clock. Starts at 0 and advances by one on
    /// every successful mutation.
    #[inline]
    pub fn change_clock(&self) -> u64 {
        self.clock
    }

    /// The change-clock value at link `e`'s most recent mutation (0 if the
    /// link was never mutated). A consumer that recorded the global clock
    /// `c` at its last sync is stale on exactly the links with
    /// `link_change_clock(e) > c`.
    #[inline]
    pub fn link_change_clock(&self, e: EdgeId) -> u64 {
        self.link_clock[e.index()]
    }

    #[inline]
    fn touch(&mut self, e: EdgeId) {
        self.clock += 1;
        self.link_clock[e.index()] = self.clock;
    }

    /// Wavelengths currently in use on `e` (`U(e)` as a set).
    #[inline]
    pub fn used(&self, e: EdgeId) -> WavelengthSet {
        self.used[e.index()]
    }

    /// `U(e)` as a count.
    #[inline]
    pub fn used_count(&self, e: EdgeId) -> usize {
        self.used[e.index()].count()
    }

    /// Available wavelengths `Λ_avail(e) = Λ(e) \ U(e)` (empty if failed).
    #[inline]
    pub fn avail(&self, net: &WdmNetwork, e: EdgeId) -> WavelengthSet {
        if self.failed[e.index()] {
            WavelengthSet::empty()
        } else {
            net.lambda(e).minus(self.used[e.index()])
        }
    }

    /// Whether `λ` is free on `e`.
    #[inline]
    pub fn is_avail(&self, net: &WdmNetwork, e: EdgeId, l: Wavelength) -> bool {
        self.avail(net, e).contains(l)
    }

    /// Marks `λ` as in use on `e`.
    pub fn occupy(&mut self, net: &WdmNetwork, e: EdgeId, l: Wavelength) -> Result<(), StateError> {
        if self.failed[e.index()] {
            return Err(StateError::LinkFailed);
        }
        if !net.lambda(e).contains(l) {
            return Err(StateError::NotInstalled);
        }
        if !self.used[e.index()].insert(l) {
            return Err(StateError::AlreadyUsed);
        }
        self.touch(e);
        Ok(())
    }

    /// Releases `λ` on `e`.
    pub fn release(&mut self, e: EdgeId, l: Wavelength) -> Result<(), StateError> {
        if !self.used[e.index()].remove(l) {
            return Err(StateError::NotUsed);
        }
        self.touch(e);
        Ok(())
    }

    /// Marks link `e` failed (its channels become unavailable; occupied
    /// channels stay recorded so repair restores them).
    pub fn fail_link(&mut self, e: EdgeId) {
        self.failed[e.index()] = true;
        self.touch(e);
    }

    /// Repairs link `e`.
    pub fn repair_link(&mut self, e: EdgeId) {
        self.failed[e.index()] = false;
        self.touch(e);
    }

    /// Whether link `e` is failed.
    #[inline]
    pub fn is_failed(&self, e: EdgeId) -> bool {
        self.failed[e.index()]
    }

    /// Link load `ρ(e) = U(e) / N(e)` (Eq. 2). Failed links report load 1.
    pub fn load(&self, net: &WdmNetwork, e: EdgeId) -> f64 {
        let n = net.capacity(e);
        if n == 0 {
            return 1.0;
        }
        if self.failed[e.index()] {
            return 1.0;
        }
        self.used[e.index()].count() as f64 / n as f64
    }

    /// Network load `ρ = max_e ρ(e)` (§2).
    pub fn network_load(&self, net: &WdmNetwork) -> f64 {
        (0..net.link_count())
            .map(|i| self.load(net, EdgeId::from(i)))
            .fold(0.0, f64::max)
    }

    /// The load each link would report *after* occupying one more channel:
    /// `(U(e)+1)/N(e)`. Used by the MinCog threshold bounds.
    pub fn prospective_load(&self, net: &WdmNetwork, e: EdgeId) -> f64 {
        let n = net.capacity(e);
        if n == 0 {
            return f64::INFINITY;
        }
        (self.used[e.index()].count() + 1) as f64 / n as f64
    }

    /// Reverts a successful [`occupy`](Self::occupy) of `λ` on `e`,
    /// restoring the link's clock stamp and retracting the global clock by
    /// the one tick the occupy spent. Only [`crate::journal::Txn`] calls
    /// this, in reverse mutation order, which is what makes the retraction
    /// exact.
    pub(crate) fn undo_occupy(&mut self, e: EdgeId, l: Wavelength, prev_link_clock: u64) {
        let removed = self.used[e.index()].remove(l);
        debug_assert!(removed, "undo of an occupy that did not happen");
        self.link_clock[e.index()] = prev_link_clock;
        self.clock -= 1;
    }

    /// Reverts a successful [`release`](Self::release); see
    /// [`undo_occupy`](Self::undo_occupy) for the clock contract.
    pub(crate) fn undo_release(&mut self, e: EdgeId, l: Wavelength, prev_link_clock: u64) {
        let inserted = self.used[e.index()].insert(l);
        debug_assert!(inserted, "undo of a release that did not happen");
        self.link_clock[e.index()] = prev_link_clock;
        self.clock -= 1;
    }

    /// Reverts a [`fail_link`](Self::fail_link)/[`repair_link`](Self::repair_link)
    /// by restoring the previous failed flag and clock stamp.
    pub(crate) fn undo_set_failed(&mut self, e: EdgeId, was_failed: bool, prev_link_clock: u64) {
        self.failed[e.index()] = was_failed;
        self.link_clock[e.index()] = prev_link_clock;
        self.clock -= 1;
    }

    /// FNV-1a hash of the semantic payload (`used`, `failed`), ignoring the
    /// change clocks — the same footprint [`PartialEq`] compares and the
    /// serializer emits. `wdm replay --verify` checks recorded runs against
    /// this, so it must stay stable across serde round trips.
    pub fn semantic_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        };
        for set in &self.used {
            for byte in set.bits().to_le_bytes() {
                eat(byte);
            }
        }
        for &failed in &self.failed {
            eat(u8::from(failed));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WdmNetwork {
        let mut b = NetworkBuilder::new(4);
        let a = b.add_node(ConversionTable::Full { cost: 1.0 });
        let c = b.add_node(ConversionTable::None);
        b.add_link(a, c, 10.0);
        b.add_link_with(c, a, 5.0, WavelengthSet::from_indices(&[0, 2]));
        b.build()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let net = tiny();
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.link_count(), 2);
        assert_eq!(net.num_wavelengths(), 4);
        assert_eq!(net.capacity(EdgeId(0)), 4);
        assert_eq!(net.capacity(EdgeId(1)), 2);
        assert_eq!(net.link_cost(EdgeId(0), Wavelength(3)), 10.0);
        assert_eq!(
            net.conversion_cost(NodeId(0), Wavelength(0), Wavelength(3)),
            Some(1.0)
        );
        assert_eq!(
            net.conversion_cost(NodeId(1), Wavelength(0), Wavelength(3)),
            None
        );
    }

    #[test]
    fn per_lambda_costs() {
        let mut b = NetworkBuilder::new(2);
        let a = b.add_node(ConversionTable::None);
        let c = b.add_node(ConversionTable::None);
        b.add_link_per_lambda(a, c, WavelengthSet::full(2), vec![1.0, 9.0]);
        let net = b.build();
        assert_eq!(net.link_cost(EdgeId(0), Wavelength(0)), 1.0);
        assert_eq!(net.link_cost(EdgeId(0), Wavelength(1)), 9.0);
        assert_eq!(net.min_link_cost(EdgeId(0)), 1.0);
        assert!(!net.graph().edge(EdgeId(0)).is_uniform_cost());
    }

    #[test]
    fn residual_occupy_release_cycle() {
        let net = tiny();
        let mut st = ResidualState::fresh(&net);
        let e = EdgeId(0);
        assert_eq!(st.avail(&net, e).count(), 4);
        st.occupy(&net, e, Wavelength(1)).unwrap();
        assert_eq!(st.avail(&net, e).count(), 3);
        assert!(!st.is_avail(&net, e, Wavelength(1)));
        assert_eq!(
            st.occupy(&net, e, Wavelength(1)),
            Err(StateError::AlreadyUsed)
        );
        st.release(e, Wavelength(1)).unwrap();
        assert_eq!(st.release(e, Wavelength(1)), Err(StateError::NotUsed));
        // Occupying a non-installed channel fails.
        assert_eq!(
            st.occupy(&net, EdgeId(1), Wavelength(1)),
            Err(StateError::NotInstalled)
        );
    }

    #[test]
    fn loads_follow_eq_2() {
        let net = tiny();
        let mut st = ResidualState::fresh(&net);
        assert_eq!(st.load(&net, EdgeId(0)), 0.0);
        st.occupy(&net, EdgeId(0), Wavelength(0)).unwrap();
        st.occupy(&net, EdgeId(0), Wavelength(1)).unwrap();
        assert_eq!(st.load(&net, EdgeId(0)), 0.5);
        assert_eq!(st.network_load(&net), 0.5);
        assert_eq!(st.prospective_load(&net, EdgeId(0)), 0.75);
        st.occupy(&net, EdgeId(1), Wavelength(0)).unwrap();
        assert_eq!(st.load(&net, EdgeId(1)), 0.5);
    }

    #[test]
    fn failure_blocks_and_repair_restores() {
        let net = tiny();
        let mut st = ResidualState::fresh(&net);
        st.occupy(&net, EdgeId(0), Wavelength(0)).unwrap();
        st.fail_link(EdgeId(0));
        assert!(st.is_failed(EdgeId(0)));
        assert!(st.avail(&net, EdgeId(0)).is_empty());
        assert_eq!(st.load(&net, EdgeId(0)), 1.0);
        assert_eq!(
            st.occupy(&net, EdgeId(0), Wavelength(2)),
            Err(StateError::LinkFailed)
        );
        st.repair_link(EdgeId(0));
        assert_eq!(
            st.avail(&net, EdgeId(0)).count(),
            3,
            "occupancy survives failure"
        );
    }

    #[test]
    fn premise_and_assumption_predicates() {
        let net = NetworkBuilder::nsfnet(8).build();
        assert!(net.satisfies_ratio_premise());
        assert!(net.satisfies_approx_assumptions());

        // Violate the premise: conversion dearer than the cheapest link.
        let mut b = NetworkBuilder::new(2);
        let a = b.add_node(ConversionTable::Full { cost: 100.0 });
        let c = b.add_node(ConversionTable::Full { cost: 100.0 });
        b.add_link(a, c, 1.0);
        let net2 = b.build();
        assert!(!net2.satisfies_ratio_premise());
        assert!(net2.satisfies_approx_assumptions());
    }

    #[test]
    fn nsfnet_preset() {
        let net = NetworkBuilder::nsfnet(16).build();
        assert_eq!(net.node_count(), 14);
        assert_eq!(net.link_count(), 42);
        assert_eq!(net.num_wavelengths(), 16);
        // Cheapest link cost is 3.0 (300 km at 0.01/km).
        let min = (0..42)
            .map(|i| net.min_link_cost(EdgeId::from(i)))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(min, 3.0);
    }
}
