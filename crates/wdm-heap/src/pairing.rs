//! Pairing heap with decrease-key.
//!
//! The pairing heap (Fredman, Sedgewick, Sleator, Tarjan 1986) is the
//! practical replacement for the Fibonacci heap cited by the paper's
//! Theorem 1: O(1) insert and amortised sub-logarithmic decrease-key, with a
//! far simpler structure. Nodes live in a flat arena indexed by the element
//! id, so no allocation happens after construction and `decrease_key` finds
//! its node in O(1).
//!
//! Structure: each node stores its first child and its left/right siblings in
//! the child list (the leftmost child's `prev` points at the parent). This is
//! the standard child/sibling representation that supports O(1) cut.
#![allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-safe "not a decrease" checks

use crate::MinQueue;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node<K> {
    key: K,
    /// First child, or NIL.
    child: u32,
    /// Next sibling in the parent's child list, or NIL.
    next: u32,
    /// Previous sibling, or the parent if this is the leftmost child, or NIL
    /// for the root. The `is_leftmost` flag disambiguates.
    prev: u32,
    /// Whether `prev` refers to the parent (leftmost child) rather than a
    /// sibling.
    leftmost: bool,
    /// Whether the id is currently in the heap.
    present: bool,
}

/// An arena-backed pairing heap over dense `usize` ids.
#[derive(Debug, Clone)]
pub struct PairingHeap<K> {
    nodes: Vec<Node<K>>,
    root: u32,
    len: usize,
    /// Scratch buffer for the two-pass merge in `pop_min`.
    scratch: Vec<u32>,
}

impl<K: PartialOrd + Copy + Default> PairingHeap<K> {
    /// Links two heap roots, returning the one that becomes the combined root.
    fn link(&mut self, a: u32, b: u32) -> u32 {
        debug_assert_ne!(a, NIL);
        debug_assert_ne!(b, NIL);
        let (winner, loser) = if self.nodes[b as usize].key < self.nodes[a as usize].key {
            (b, a)
        } else {
            (a, b)
        };
        // Push `loser` onto the front of `winner`'s child list.
        let old_child = self.nodes[winner as usize].child;
        self.nodes[loser as usize].next = old_child;
        self.nodes[loser as usize].prev = winner;
        self.nodes[loser as usize].leftmost = true;
        if old_child != NIL {
            self.nodes[old_child as usize].prev = loser;
            self.nodes[old_child as usize].leftmost = false;
        }
        self.nodes[winner as usize].child = loser;
        self.nodes[winner as usize].next = NIL;
        self.nodes[winner as usize].prev = NIL;
        self.nodes[winner as usize].leftmost = false;
        winner
    }

    /// Detaches node `v` (not the root) from its parent's child list.
    fn cut(&mut self, v: u32) {
        let node = self.nodes[v as usize];
        if node.leftmost {
            let parent = node.prev;
            self.nodes[parent as usize].child = node.next;
        } else if node.prev != NIL {
            self.nodes[node.prev as usize].next = node.next;
        }
        if node.next != NIL {
            self.nodes[node.next as usize].prev = node.prev;
            self.nodes[node.next as usize].leftmost = node.leftmost;
        }
        let n = &mut self.nodes[v as usize];
        n.next = NIL;
        n.prev = NIL;
        n.leftmost = false;
    }

    /// Two-pass merge of the root's children after the root is removed.
    fn merge_pairs(&mut self, first: u32) -> u32 {
        if first == NIL {
            return NIL;
        }
        // Pass 1: left to right, link pairs.
        self.scratch.clear();
        let mut cur = first;
        while cur != NIL {
            let a = cur;
            let b = self.nodes[a as usize].next;
            let after = if b != NIL {
                self.nodes[b as usize].next
            } else {
                NIL
            };
            // Sever both from the sibling list before linking.
            self.nodes[a as usize].next = NIL;
            self.nodes[a as usize].prev = NIL;
            self.nodes[a as usize].leftmost = false;
            let merged = if b != NIL {
                self.nodes[b as usize].next = NIL;
                self.nodes[b as usize].prev = NIL;
                self.nodes[b as usize].leftmost = false;
                self.link(a, b)
            } else {
                a
            };
            self.scratch.push(merged);
            cur = after;
        }
        // Pass 2: right to left, fold into one root.
        let mut root = self.scratch.pop().expect("at least one pair");
        while let Some(next) = self.scratch.pop() {
            root = self.link(root, next);
        }
        root
    }

    #[cfg(test)]
    fn assert_invariants(&self) {
        if self.root == NIL {
            assert_eq!(self.len, 0);
            return;
        }
        // Walk the whole heap, checking parent-key dominance and counting.
        let mut count = 0usize;
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            count += 1;
            assert!(self.nodes[v as usize].present);
            let mut c = self.nodes[v as usize].child;
            let mut leftmost = true;
            while c != NIL {
                assert!(
                    !(self.nodes[c as usize].key < self.nodes[v as usize].key),
                    "child key below parent"
                );
                if leftmost {
                    assert!(self.nodes[c as usize].leftmost);
                    assert_eq!(self.nodes[c as usize].prev, v);
                }
                stack.push(c);
                leftmost = false;
                c = self.nodes[c as usize].next;
            }
        }
        assert_eq!(count, self.len, "reachable node count mismatch");
    }
}

impl<K: PartialOrd + Copy + Default> MinQueue<K> for PairingHeap<K> {
    fn with_capacity(capacity: usize) -> Self {
        assert!(capacity < NIL as usize, "capacity too large for u32 index");
        Self {
            nodes: vec![
                Node {
                    key: K::default(),
                    child: NIL,
                    next: NIL,
                    prev: NIL,
                    leftmost: false,
                    present: false,
                };
                capacity
            ],
            root: NIL,
            len: 0,
            scratch: Vec::new(),
        }
    }

    fn capacity(&self) -> usize {
        self.nodes.len()
    }

    fn insert(&mut self, id: usize, key: K) {
        assert!(id < self.nodes.len(), "id {id} out of capacity");
        assert!(!self.nodes[id].present, "id {id} already present");
        self.nodes[id] = Node {
            key,
            child: NIL,
            next: NIL,
            prev: NIL,
            leftmost: false,
            present: true,
        };
        let id = id as u32;
        self.root = if self.root == NIL {
            id
        } else {
            self.link(self.root, id)
        };
        self.len += 1;
    }

    fn pop_min(&mut self) -> Option<(usize, K)> {
        if self.root == NIL {
            return None;
        }
        let root = self.root;
        let key = self.nodes[root as usize].key;
        let first_child = self.nodes[root as usize].child;
        self.nodes[root as usize].present = false;
        self.nodes[root as usize].child = NIL;
        self.root = self.merge_pairs(first_child);
        self.len -= 1;
        Some((root as usize, key))
    }

    fn peek_min(&self) -> Option<(usize, K)> {
        if self.root == NIL {
            None
        } else {
            Some((self.root as usize, self.nodes[self.root as usize].key))
        }
    }

    fn decrease_key(&mut self, id: usize, key: K) -> bool {
        assert!(
            id < self.nodes.len() && self.nodes[id].present,
            "decrease_key on absent id {id}"
        );
        // Deliberate negated partial comparison: incomparable (NaN) keys must
        // be treated as "not a decrease", same as greater-or-equal.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(key < self.nodes[id].key) {
            return false;
        }
        self.nodes[id].key = key;
        let id = id as u32;
        if id != self.root {
            self.cut(id);
            self.root = self.link(self.root, id);
        }
        true
    }

    fn contains(&self, id: usize) -> bool {
        id < self.nodes.len() && self.nodes[id].present
    }

    fn key(&self, id: usize) -> Option<K> {
        if self.contains(id) {
            Some(self.nodes[id].key)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for n in &mut self.nodes {
            n.present = false;
            n.child = NIL;
            n.next = NIL;
            n.prev = NIL;
            n.leftmost = false;
        }
        self.root = NIL;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type H = PairingHeap<f64>;

    #[test]
    fn pops_in_sorted_order() {
        let keys = [5.0, 3.0, 8.0, 1.0, 9.0, 2.0, 7.0, 4.0, 6.0];
        let mut h = H::with_capacity(keys.len());
        for (id, &k) in keys.iter().enumerate() {
            h.insert(id, k);
            h.assert_invariants();
        }
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop_min() {
            h.assert_invariants();
            out.push(k);
        }
        let mut expected = keys.to_vec();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(out, expected);
    }

    #[test]
    fn decrease_key_on_deep_node() {
        let mut h = H::with_capacity(16);
        for id in 0..16 {
            h.insert(id, (id + 10) as f64);
        }
        // Force some structure by popping and reinserting.
        let (min_id, _) = h.pop_min().unwrap();
        h.insert(min_id, 100.0);
        h.assert_invariants();
        assert!(h.decrease_key(15, 0.5));
        h.assert_invariants();
        assert_eq!(h.pop_min(), Some((15, 0.5)));
        h.assert_invariants();
    }

    #[test]
    fn decrease_key_of_root_is_cheap_and_correct() {
        let mut h = H::with_capacity(4);
        h.insert(0, 1.0);
        h.insert(1, 2.0);
        assert!(h.decrease_key(0, 0.5));
        assert_eq!(h.pop_min(), Some((0, 0.5)));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_insert_panics() {
        let mut h = H::with_capacity(2);
        h.insert(0, 1.0);
        h.insert(0, 2.0);
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn decrease_absent_panics() {
        let mut h = H::with_capacity(2);
        h.decrease_key(1, 1.0);
    }

    #[test]
    fn interleaved_ops_match_reference() {
        // Deterministic mixed workload cross-checked against a simple
        // reference implementation.
        use std::collections::BTreeMap;
        let mut h = H::with_capacity(64);
        let mut reference: BTreeMap<usize, f64> = BTreeMap::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut rnd = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2000 {
            let op = rnd() % 4;
            let id = (rnd() % 64) as usize;
            match op {
                0 | 1 => {
                    reference.entry(id).or_insert_with(|| {
                        let k = (rnd() % 1000) as f64;
                        h.insert(id, k);
                        k
                    });
                }
                2 => {
                    if let Some(cur) = reference.get_mut(&id) {
                        let k = *cur / 2.0 - 1.0;
                        let expect = k < *cur;
                        assert_eq!(h.decrease_key(id, k), expect);
                        if expect {
                            *cur = k;
                        }
                    }
                }
                _ => {
                    let expected = reference.iter().map(|(&i, &k)| (k, i)).fold(
                        None::<(f64, usize)>,
                        |acc, (k, i)| match acc {
                            None => Some((k, i)),
                            Some((bk, _)) if k < bk => Some((k, i)),
                            some => some,
                        },
                    );
                    match (h.pop_min(), expected) {
                        (None, None) => {}
                        (Some((i, k)), Some((ek, _))) => {
                            // Ties can pop any id; keys must agree, and the
                            // popped id must hold that key in the reference.
                            assert_eq!(k, ek);
                            assert_eq!(reference.remove(&i), Some(k));
                        }
                        other => panic!("mismatch: {other:?}"),
                    }
                }
            }
            h.assert_invariants();
            assert_eq!(h.len(), reference.len());
        }
    }
}
