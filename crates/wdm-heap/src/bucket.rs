//! Monotone bucket queue for bounded integer keys.
//!
//! When edge costs are small integers (hop counts, quantised link weights),
//! Dijkstra's extracted keys form a monotone non-decreasing sequence bounded
//! by `max_key`. A circular array of buckets then gives O(1) insert,
//! decrease-key, and amortised O(1 + C/n) pop — the classic Dial's algorithm
//! queue. Used by the hop-count routing baselines and as the fast path of
//! the CSR auxiliary-graph engine when a network's costs certify as exact
//! dyadic rationals.
//!
//! Two hardening properties matter for that fast path:
//!
//! * **Deterministic ties.** [`MinQueue::pop_min`] returns the *smallest id*
//!   among the minimum-key entries — the same `(key, id)` order as
//!   [`DaryHeap`](crate::DaryHeap), so a Dijkstra run produces an identical
//!   settle sequence (and therefore identical predecessor trees) under
//!   either engine (`tests/heap_equivalence.rs`).
//! * **O(1) reset.** Presence and bucket heads are generation-stamped, so
//!   [`MinQueue::clear`] is a counter bump, not an `O(capacity + span)`
//!   fill — one queue serves an unbounded stream of searches, like the
//!   generation-stamped tree banks in `wdm-graph`'s `SearchArena`.

use crate::MinQueue;

const ABSENT: u32 = u32::MAX;

/// Dial's bucket queue over dense `usize` ids with `u64` keys.
///
/// The queue is *monotone*: keys passed to [`MinQueue::insert`] and
/// [`MinQueue::decrease_key`] must be ≥ the key of the most recent
/// [`MinQueue::pop_min`] (debug-asserted). The maximum key span that can be
/// in flight at once is the `span` given at construction (for Dijkstra:
/// the maximum edge cost + 1).
#[derive(Debug, Clone)]
pub struct BucketQueue {
    /// `buckets[k % span]` = intrusive doubly-linked list head (id), valid
    /// only while `bucket_gen` matches the current generation.
    buckets: Vec<u32>,
    bucket_gen: Vec<u64>,
    /// Per-id linked-list pointers and keys.
    next: Vec<u32>,
    prev: Vec<u32>,
    keys: Vec<u64>,
    /// `stamp[id] == gen` ⇔ the id is present.
    stamp: Vec<u64>,
    gen: u64,
    /// Cursor: all live keys are in `[floor, floor + span)`.
    floor: u64,
    span: u64,
    len: usize,
    /// Binary min-heap over ids holding the bucket currently being drained
    /// (every entry has key == `drain_key`). Dijkstra workloads with large
    /// tie classes (e.g. zero-reduced-cost plateaus) put thousands of ids in
    /// one bucket; scanning the chain for the smallest id on every pop is
    /// quadratic in the class size, while draining through this heap keeps
    /// the identical smallest-id-first order at O(log k) per operation.
    drain: Vec<u32>,
    /// Key of the drain heap's entries; `u64::MAX` while inactive.
    drain_key: u64,
}

impl BucketQueue {
    /// Creates a queue for ids `0..capacity` whose in-flight keys never span
    /// more than `span` (e.g. `max_edge_cost + 1` for Dijkstra).
    pub fn new(capacity: usize, span: u64) -> Self {
        assert!(span >= 1, "span must be at least 1");
        assert!(capacity < ABSENT as usize);
        Self {
            buckets: vec![ABSENT; span as usize],
            bucket_gen: vec![0; span as usize],
            next: vec![ABSENT; capacity],
            prev: vec![ABSENT; capacity],
            keys: vec![0; capacity],
            stamp: vec![0; capacity],
            gen: 1,
            floor: 0,
            span,
            len: 0,
            drain: Vec::new(),
            drain_key: u64::MAX,
        }
    }

    /// Grows the id capacity and/or the key span in place, keeping the
    /// allocation. Must be called on an empty queue (the bucket array cannot
    /// be re-hashed under live entries); the queue is reset as by
    /// [`MinQueue::clear`]. Returns whether any buffer grew (an allocation
    /// event, for arena telemetry).
    ///
    /// # Panics
    /// Panics if the queue is non-empty.
    pub fn ensure(&mut self, capacity: usize, span: u64) -> bool {
        assert!(self.len == 0, "ensure on a non-empty bucket queue");
        assert!(span >= 1, "span must be at least 1");
        assert!(capacity < ABSENT as usize);
        let mut grew = false;
        if self.stamp.len() < capacity {
            self.next.resize(capacity, ABSENT);
            self.prev.resize(capacity, ABSENT);
            self.keys.resize(capacity, 0);
            self.stamp.resize(capacity, 0);
            grew = true;
        }
        if self.span < span {
            self.buckets.resize(span as usize, ABSENT);
            self.bucket_gen.resize(span as usize, 0);
            self.span = span;
            grew = true;
        }
        self.clear();
        grew
    }

    /// The key span the queue was sized for.
    pub fn span(&self) -> u64 {
        self.span
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        (key % self.span) as usize
    }

    /// Bucket head, or `ABSENT` if the slot is stale (previous generation).
    #[inline]
    fn head(&self, b: usize) -> u32 {
        if self.bucket_gen[b] == self.gen {
            self.buckets[b]
        } else {
            ABSENT
        }
    }

    fn unlink(&mut self, id: usize) {
        let b = self.bucket_of(self.keys[id]);
        let (p, n) = (self.prev[id], self.next[id]);
        if p == ABSENT {
            self.buckets[b] = n;
            self.bucket_gen[b] = self.gen;
        } else {
            self.next[p as usize] = n;
        }
        if n != ABSENT {
            self.prev[n as usize] = p;
        }
        self.next[id] = ABSENT;
        self.prev[id] = ABSENT;
    }

    fn link(&mut self, id: usize, key: u64) {
        debug_assert!(
            key >= self.floor && key < self.floor + self.span,
            "key {key} outside monotone window [{}, {})",
            self.floor,
            self.floor + self.span
        );
        self.keys[id] = key;
        let b = self.bucket_of(key);
        let head = self.head(b);
        self.next[id] = head;
        self.prev[id] = ABSENT;
        if head != ABSENT {
            self.prev[head as usize] = id as u32;
        }
        self.buckets[b] = id as u32;
        self.bucket_gen[b] = self.gen;
    }

    /// Smallest id in bucket `b` (the deterministic tie winner), or
    /// `ABSENT` for an empty bucket. O(bucket length).
    #[inline]
    fn min_id_in(&self, b: usize) -> u32 {
        let mut best = self.head(b);
        if best != ABSENT {
            let mut cur = self.next[best as usize];
            while cur != ABSENT {
                if cur < best {
                    best = cur;
                }
                cur = self.next[cur as usize];
            }
        }
        best
    }

    fn drain_push(&mut self, id: u32) {
        self.drain.push(id);
        let mut i = self.drain.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            if self.drain[p] <= self.drain[i] {
                break;
            }
            self.drain.swap(p, i);
            i = p;
        }
    }

    fn drain_pop(&mut self) -> Option<u32> {
        let last = self.drain.len().checked_sub(1)?;
        self.drain.swap(0, last);
        let out = self.drain.pop().expect("non-empty");
        let n = self.drain.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            let mut s = i;
            if l < n && self.drain[l] < self.drain[s] {
                s = l;
            }
            if l + 1 < n && self.drain[l + 1] < self.drain[s] {
                s = l + 1;
            }
            if s == i {
                break;
            }
            self.drain.swap(i, s);
            i = s;
        }
        Some(out)
    }
}

impl MinQueue<u64> for BucketQueue {
    /// Default construction assumes a key span of 1024; prefer
    /// [`BucketQueue::new`] with the real cost bound.
    fn with_capacity(capacity: usize) -> Self {
        Self::new(capacity, 1024)
    }

    fn capacity(&self) -> usize {
        self.stamp.len()
    }

    fn insert(&mut self, id: usize, key: u64) {
        assert!(id < self.stamp.len(), "id {id} out of capacity");
        assert!(self.stamp[id] != self.gen, "id {id} already present");
        if self.len == 0 && (key < self.floor || key >= self.floor + self.span) {
            // Empty queue and the key falls outside the current window: the
            // monotone sequence is restarting, so the window may move.
            // (Keys *inside* the window keep the floor where it is — a
            // Dijkstra relaxation after the queue drains may push several
            // keys, and only the smallest of them would be a valid new
            // floor, which we cannot know yet.)
            self.floor = key;
        }
        self.stamp[id] = self.gen;
        if key == self.drain_key {
            // The bucket for this key has already been moved into the drain
            // heap; joining the chain instead would be skipped by the pop
            // cursor.
            self.keys[id] = key;
            self.drain_push(id as u32);
        } else {
            self.link(id, key);
        }
        self.len += 1;
    }

    fn pop_min(&mut self) -> Option<(usize, u64)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Drain the current tie class in ascending id order — the same
            // (key, id) rule as the d-ary heap.
            if self.drain_key == self.floor {
                if let Some(best) = self.drain_pop() {
                    let id = best as usize;
                    debug_assert_eq!(self.keys[id], self.floor);
                    self.stamp[id] = 0;
                    self.len -= 1;
                    return Some((id, self.floor));
                }
                self.drain_key = u64::MAX;
                self.floor += 1;
            }
            // Scan forward from the floor cursor to the first non-empty
            // bucket; with keys confined to [floor, floor + span), every
            // entry there has key == floor. Move its whole chain into the
            // drain heap and pop from that.
            let b = self.bucket_of(self.floor);
            let mut cur = self.head(b);
            if cur != ABSENT {
                self.buckets[b] = ABSENT;
                self.bucket_gen[b] = self.gen;
                while cur != ABSENT {
                    self.drain_push(cur);
                    cur = self.next[cur as usize];
                }
                self.drain_key = self.floor;
                continue;
            }
            self.floor += 1;
        }
    }

    fn peek_min(&self) -> Option<(usize, u64)> {
        if self.len == 0 {
            return None;
        }
        if self.drain_key == self.floor {
            if let Some(&best) = self.drain.first() {
                return Some((best as usize, self.floor));
            }
        }
        let mut f = self.floor;
        loop {
            let best = self.min_id_in((f % self.span) as usize);
            if best != ABSENT {
                return Some((best as usize, f));
            }
            f += 1;
        }
    }

    fn decrease_key(&mut self, id: usize, key: u64) -> bool {
        assert!(
            id < self.stamp.len() && self.stamp[id] == self.gen,
            "decrease_key on absent id {id}"
        );
        if key >= self.keys[id] {
            return false;
        }
        // An entry already in the drain heap has key == drain_key == floor,
        // the monotone minimum — it can never be decreased, so `id` is
        // always chain-linked here and unlinking is safe.
        self.unlink(id);
        if key == self.drain_key {
            self.keys[id] = key;
            self.drain_push(id as u32);
        } else {
            self.link(id, key);
        }
        true
    }

    fn contains(&self, id: usize) -> bool {
        id < self.stamp.len() && self.stamp[id] == self.gen
    }

    fn key(&self, id: usize) -> Option<u64> {
        if self.contains(id) {
            Some(self.keys[id])
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        // Generation bump invalidates every bucket head and presence stamp
        // at once — O(1), so an arena can reset the queue per search.
        self.gen += 1;
        self.floor = 0;
        self.len = 0;
        self.drain.clear();
        self.drain_key = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_dijkstra_like_workload() {
        let mut q = BucketQueue::new(16, 8);
        q.insert(0, 0);
        let mut settled = Vec::new();
        let mut next_id = 1usize;
        while let Some((id, d)) = q.pop_min() {
            settled.push((id, d));
            // Relax: push up to two "neighbours" with key d + {1, 3}.
            for w in [1u64, 3] {
                if next_id < 16 {
                    q.insert(next_id, d + w);
                    next_id += 1;
                }
            }
        }
        // Keys must come out non-decreasing.
        for pair in settled.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(settled.len(), 16);
    }

    #[test]
    fn decrease_key_moves_bucket() {
        let mut q = BucketQueue::new(4, 10);
        q.insert(0, 5);
        q.insert(1, 7);
        assert!(q.decrease_key(1, 5));
        assert!(!q.decrease_key(1, 6));
        let a = q.pop_min().unwrap();
        let b = q.pop_min().unwrap();
        assert_eq!(a.1, 5);
        assert_eq!(b.1, 5);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn window_restarts_when_empty() {
        let mut q = BucketQueue::new(2, 4);
        q.insert(0, 2);
        assert_eq!(q.pop_min(), Some((0, 2)));
        // Queue is empty: a much larger key is fine.
        q.insert(1, 1000);
        assert_eq!(q.pop_min(), Some((1, 1000)));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = BucketQueue::new(4, 16);
        q.insert(3, 4);
        q.insert(2, 9);
        assert_eq!(q.peek_min(), Some((3, 4)));
        assert_eq!(q.pop_min(), Some((3, 4)));
        assert_eq!(q.peek_min(), Some((2, 9)));
    }

    #[test]
    fn same_bucket_chain() {
        let mut q = BucketQueue::new(8, 4);
        for id in 0..8 {
            q.insert(id, 3);
        }
        let mut n = 0;
        while let Some((_, k)) = q.pop_min() {
            assert_eq!(k, 3);
            n += 1;
        }
        assert_eq!(n, 8);
    }

    /// Equal keys pop in ascending id order regardless of insertion order —
    /// the same tie rule as the hardened d-ary heap.
    #[test]
    fn ties_break_by_smallest_id() {
        for perm in [
            vec![3usize, 1, 4, 0, 2],
            vec![0, 1, 2, 3, 4],
            vec![4, 3, 2, 1, 0],
        ] {
            let mut q = BucketQueue::new(8, 4);
            for &id in &perm {
                q.insert(id, 2);
            }
            let order: Vec<usize> = std::iter::from_fn(|| q.pop_min().map(|(id, _)| id)).collect();
            assert_eq!(order, vec![0, 1, 2, 3, 4], "insertion order {perm:?}");
        }
    }

    /// clear() is a generation bump: stale bucket heads from the previous
    /// generation must not resurface, and the queue is immediately reusable.
    #[test]
    fn clear_is_generational() {
        let mut q = BucketQueue::new(8, 8);
        q.insert(1, 3);
        q.insert(2, 3);
        q.clear();
        assert!(q.is_empty());
        assert!(!q.contains(1));
        assert_eq!(q.pop_min(), None);
        // Same bucket slot as before the clear; the stale chain is invisible.
        q.insert(5, 3);
        assert_eq!(q.pop_min(), Some((5, 3)));
        assert_eq!(q.pop_min(), None);
    }

    /// A queue abandoned mid-drain (early-exit Dijkstra) resets in O(1) and
    /// serves the next search correctly.
    #[test]
    fn reuse_after_partial_drain() {
        let mut q = BucketQueue::new(16, 8);
        for id in 0..10 {
            q.insert(id, (id % 4) as u64);
        }
        let _ = q.pop_min();
        let _ = q.pop_min();
        q.clear();
        for id in 0..16 {
            q.insert(id, (16 - id) as u64 % 8);
        }
        let mut got = 0;
        let mut last = 0;
        while let Some((_, k)) = q.pop_min() {
            assert!(k >= last);
            last = k;
            got += 1;
        }
        assert_eq!(got, 16);
    }

    /// ensure() grows capacity and span in place.
    #[test]
    fn ensure_grows_capacity_and_span() {
        let mut q = BucketQueue::new(2, 2);
        q.insert(0, 1);
        assert_eq!(q.pop_min(), Some((0, 1)));
        q.ensure(32, 64);
        assert_eq!(q.capacity(), 32);
        assert_eq!(q.span(), 64);
        q.insert(31, 63);
        q.insert(30, 0);
        assert_eq!(q.pop_min(), Some((30, 0)));
        assert_eq!(q.pop_min(), Some((31, 63)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ensure_on_live_queue_panics() {
        let mut q = BucketQueue::new(4, 4);
        q.insert(0, 0);
        q.ensure(8, 8);
    }
}
