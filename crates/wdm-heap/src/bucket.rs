//! Monotone bucket queue for bounded integer keys.
//!
//! When edge costs are small integers (hop counts, quantised link weights),
//! Dijkstra's extracted keys form a monotone non-decreasing sequence bounded
//! by `max_key`. A circular array of buckets then gives O(1) insert,
//! decrease-key, and amortised O(1 + C/n) pop — the classic Dial's algorithm
//! queue. Used by the hop-count routing baselines and as a fast path when a
//! network declares integral costs.

use crate::MinQueue;

const ABSENT: u32 = u32::MAX;

/// Dial's bucket queue over dense `usize` ids with `u64` keys.
///
/// The queue is *monotone*: keys passed to [`MinQueue::insert`] and
/// [`MinQueue::decrease_key`] must be ≥ the key of the most recent
/// [`MinQueue::pop_min`] (debug-asserted). The maximum key span that can be
/// in flight at once is the `span` given at construction (for Dijkstra:
/// the maximum edge cost + 1).
#[derive(Debug, Clone)]
pub struct BucketQueue {
    /// `buckets[k % span]` = intrusive doubly-linked list head (id) or ABSENT.
    buckets: Vec<u32>,
    /// Per-id linked-list pointers and keys.
    next: Vec<u32>,
    prev: Vec<u32>,
    keys: Vec<u64>,
    present: Vec<bool>,
    /// Cursor: all live keys are in `[floor, floor + span)`.
    floor: u64,
    span: u64,
    len: usize,
}

impl BucketQueue {
    /// Creates a queue for ids `0..capacity` whose in-flight keys never span
    /// more than `span` (e.g. `max_edge_cost + 1` for Dijkstra).
    pub fn new(capacity: usize, span: u64) -> Self {
        assert!(span >= 1, "span must be at least 1");
        assert!(capacity < ABSENT as usize);
        Self {
            buckets: vec![ABSENT; span as usize],
            next: vec![ABSENT; capacity],
            prev: vec![ABSENT; capacity],
            keys: vec![0; capacity],
            present: vec![false; capacity],
            floor: 0,
            span,
            len: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        (key % self.span) as usize
    }

    fn unlink(&mut self, id: usize) {
        let b = self.bucket_of(self.keys[id]);
        let (p, n) = (self.prev[id], self.next[id]);
        if p == ABSENT {
            self.buckets[b] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n != ABSENT {
            self.prev[n as usize] = p;
        }
        self.next[id] = ABSENT;
        self.prev[id] = ABSENT;
    }

    fn link(&mut self, id: usize, key: u64) {
        debug_assert!(
            key >= self.floor && key < self.floor + self.span,
            "key {key} outside monotone window [{}, {})",
            self.floor,
            self.floor + self.span
        );
        self.keys[id] = key;
        let b = self.bucket_of(key);
        let head = self.buckets[b];
        self.next[id] = head;
        self.prev[id] = ABSENT;
        if head != ABSENT {
            self.prev[head as usize] = id as u32;
        }
        self.buckets[b] = id as u32;
    }
}

impl MinQueue<u64> for BucketQueue {
    /// Default construction assumes a key span of 1024; prefer
    /// [`BucketQueue::new`] with the real cost bound.
    fn with_capacity(capacity: usize) -> Self {
        Self::new(capacity, 1024)
    }

    fn capacity(&self) -> usize {
        self.present.len()
    }

    fn insert(&mut self, id: usize, key: u64) {
        assert!(id < self.present.len(), "id {id} out of capacity");
        assert!(!self.present[id], "id {id} already present");
        if self.len == 0 && (key < self.floor || key >= self.floor + self.span) {
            // Empty queue and the key falls outside the current window: the
            // monotone sequence is restarting, so the window may move.
            // (Keys *inside* the window keep the floor where it is — a
            // Dijkstra relaxation after the queue drains may push several
            // keys, and only the smallest of them would be a valid new
            // floor, which we cannot know yet.)
            self.floor = key;
        }
        self.present[id] = true;
        self.link(id, key);
        self.len += 1;
    }

    fn pop_min(&mut self) -> Option<(usize, u64)> {
        if self.len == 0 {
            return None;
        }
        // Scan forward from the floor cursor to the first non-empty bucket.
        loop {
            let b = self.bucket_of(self.floor);
            let mut cur = self.buckets[b];
            // The bucket may contain keys other than `floor` only if span
            // aliases; with keys confined to [floor, floor+span) every entry
            // in bucket `floor % span` has key == floor.
            if cur != ABSENT {
                // Pop the head (any entry in this bucket has the min key).
                let id = cur as usize;
                debug_assert_eq!(self.keys[id], self.floor);
                cur = self.next[id];
                self.buckets[b] = cur;
                if cur != ABSENT {
                    self.prev[cur as usize] = ABSENT;
                }
                self.next[id] = ABSENT;
                self.present[id] = false;
                self.len -= 1;
                return Some((id, self.floor));
            }
            self.floor += 1;
        }
    }

    fn peek_min(&self) -> Option<(usize, u64)> {
        if self.len == 0 {
            return None;
        }
        let mut f = self.floor;
        loop {
            let head = self.buckets[(f % self.span) as usize];
            if head != ABSENT {
                return Some((head as usize, f));
            }
            f += 1;
        }
    }

    fn decrease_key(&mut self, id: usize, key: u64) -> bool {
        assert!(
            id < self.present.len() && self.present[id],
            "decrease_key on absent id {id}"
        );
        if key >= self.keys[id] {
            return false;
        }
        self.unlink(id);
        self.link(id, key);
        true
    }

    fn contains(&self, id: usize) -> bool {
        id < self.present.len() && self.present[id]
    }

    fn key(&self, id: usize) -> Option<u64> {
        if self.contains(id) {
            Some(self.keys[id])
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.buckets.fill(ABSENT);
        self.next.fill(ABSENT);
        self.prev.fill(ABSENT);
        self.present.fill(false);
        self.floor = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_dijkstra_like_workload() {
        let mut q = BucketQueue::new(16, 8);
        q.insert(0, 0);
        let mut settled = Vec::new();
        let mut next_id = 1usize;
        while let Some((id, d)) = q.pop_min() {
            settled.push((id, d));
            // Relax: push up to two "neighbours" with key d + {1, 3}.
            for w in [1u64, 3] {
                if next_id < 16 {
                    q.insert(next_id, d + w);
                    next_id += 1;
                }
            }
        }
        // Keys must come out non-decreasing.
        for pair in settled.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(settled.len(), 16);
    }

    #[test]
    fn decrease_key_moves_bucket() {
        let mut q = BucketQueue::new(4, 10);
        q.insert(0, 5);
        q.insert(1, 7);
        assert!(q.decrease_key(1, 5));
        assert!(!q.decrease_key(1, 6));
        let a = q.pop_min().unwrap();
        let b = q.pop_min().unwrap();
        assert_eq!(a.1, 5);
        assert_eq!(b.1, 5);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn window_restarts_when_empty() {
        let mut q = BucketQueue::new(2, 4);
        q.insert(0, 2);
        assert_eq!(q.pop_min(), Some((0, 2)));
        // Queue is empty: a much larger key is fine.
        q.insert(1, 1000);
        assert_eq!(q.pop_min(), Some((1, 1000)));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = BucketQueue::new(4, 16);
        q.insert(3, 4);
        q.insert(2, 9);
        assert_eq!(q.peek_min(), Some((3, 4)));
        assert_eq!(q.pop_min(), Some((3, 4)));
        assert_eq!(q.peek_min(), Some((2, 9)));
    }

    #[test]
    fn same_bucket_chain() {
        let mut q = BucketQueue::new(8, 4);
        for id in 0..8 {
            q.insert(id, 3);
        }
        let mut n = 0;
        while let Some((_, k)) = q.pop_min() {
            assert_eq!(k, 3);
            n += 1;
        }
        assert_eq!(n, 8);
    }
}
