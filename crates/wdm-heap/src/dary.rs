//! Indexed d-ary min-heap with decrease-key.
//!
//! The heap stores `(id, key)` pairs in an array-backed d-ary tree and keeps a
//! reverse index `pos[id] -> slot`, so `decrease_key` and `contains` are O(1)
//! lookups plus an O(log_d n) sift. `D = 4` is the usual sweet spot on modern
//! CPUs: shallower trees than binary heaps and sibling keys share cache lines.
//!
//! Ties are broken deterministically: among equal keys the smallest id pops
//! first. The sift comparisons order entries by `(key, id)` lexicographically,
//! so the pop sequence is a pure function of the inserted/decreased
//! `(id, key)` set — independent of operation interleaving. [`BucketQueue`]
//! (`crate::BucketQueue`) implements the same tie rule, which is what lets a
//! Dijkstra run swap heap engines without perturbing its settle order
//! (`tests/heap_equivalence.rs` pins this).
#![allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-safe "not a decrease" checks

use crate::MinQueue;

/// Sentinel in the position index for "not in the heap".
const ABSENT: u32 = u32::MAX;

/// An indexed d-ary min-heap over dense `usize` ids.
///
/// `D` is the arity (compile-time constant, must be ≥ 2). See the crate docs
/// for the engine comparison.
#[derive(Debug, Clone)]
pub struct DaryHeap<K, const D: usize = 4> {
    /// Heap slots: `(id, key)` pairs in heap order.
    slots: Vec<(u32, K)>,
    /// `pos[id]` = slot index of `id`, or `ABSENT`.
    pos: Vec<u32>,
}

impl<K: PartialOrd + Copy, const D: usize> DaryHeap<K, D> {
    /// Lexicographic `(key, id)` order: the heap's total order. Equal keys
    /// rank by ascending id, making pop order deterministic under ties.
    #[inline]
    fn before(a: (u32, K), b: (u32, K)) -> bool {
        a.1 < b.1 || (a.1 == b.1 && a.0 < b.0)
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / D;
            if Self::before(self.slots[slot], self.slots[parent]) {
                self.swap_slots(slot, parent);
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        let len = self.slots.len();
        loop {
            let first_child = slot * D + 1;
            if first_child >= len {
                break;
            }
            let last_child = (first_child + D).min(len);
            let mut best = first_child;
            for c in (first_child + 1)..last_child {
                if Self::before(self.slots[c], self.slots[best]) {
                    best = c;
                }
            }
            if Self::before(self.slots[best], self.slots[slot]) {
                self.swap_slots(slot, best);
                slot = best;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.slots.swap(a, b);
        self.pos[self.slots[a].0 as usize] = a as u32;
        self.pos[self.slots[b].0 as usize] = b as u32;
    }

    /// Grows the id space to at least `capacity` without disturbing heap
    /// contents, so one heap can be reused across graphs of growing size.
    pub fn ensure_capacity(&mut self, capacity: usize) {
        assert!(
            capacity < ABSENT as usize,
            "capacity too large for u32 index"
        );
        if self.pos.len() < capacity {
            self.pos.resize(capacity, ABSENT);
        }
    }

    /// Checks the heap invariant; used by tests and debug assertions.
    #[cfg(test)]
    fn assert_invariants(&self) {
        for slot in 1..self.slots.len() {
            let parent = (slot - 1) / D;
            assert!(
                !Self::before(self.slots[slot], self.slots[parent]),
                "heap order violated at slot {slot}"
            );
        }
        for (slot, &(id, _)) in self.slots.iter().enumerate() {
            assert_eq!(self.pos[id as usize] as usize, slot, "pos index stale");
        }
    }
}

impl<K: PartialOrd + Copy, const D: usize> MinQueue<K> for DaryHeap<K, D> {
    fn with_capacity(capacity: usize) -> Self {
        assert!(D >= 2, "heap arity must be at least 2");
        assert!(
            capacity < ABSENT as usize,
            "capacity too large for u32 index"
        );
        Self {
            slots: Vec::with_capacity(capacity.min(1024)),
            pos: vec![ABSENT; capacity],
        }
    }

    fn capacity(&self) -> usize {
        self.pos.len()
    }

    fn insert(&mut self, id: usize, key: K) {
        assert!(id < self.pos.len(), "id {id} out of capacity");
        assert_eq!(self.pos[id], ABSENT, "id {id} already present");
        let slot = self.slots.len();
        self.slots.push((id as u32, key));
        self.pos[id] = slot as u32;
        self.sift_up(slot);
    }

    fn pop_min(&mut self) -> Option<(usize, K)> {
        let (id, key) = *self.slots.first()?;
        let last = self.slots.len() - 1;
        self.swap_slots(0, last);
        self.slots.pop();
        self.pos[id as usize] = ABSENT;
        if !self.slots.is_empty() {
            self.sift_down(0);
        }
        Some((id as usize, key))
    }

    fn peek_min(&self) -> Option<(usize, K)> {
        self.slots.first().map(|&(id, key)| (id as usize, key))
    }

    fn decrease_key(&mut self, id: usize, key: K) -> bool {
        let slot = self.pos[id];
        assert_ne!(slot, ABSENT, "decrease_key on absent id {id}");
        let slot = slot as usize;
        // Deliberate negated partial comparison: incomparable (NaN) keys must
        // be treated as "not a decrease", same as greater-or-equal.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(key < self.slots[slot].1) {
            return false;
        }
        self.slots[slot].1 = key;
        self.sift_up(slot);
        true
    }

    fn contains(&self, id: usize) -> bool {
        id < self.pos.len() && self.pos[id] != ABSENT
    }

    fn key(&self, id: usize) -> Option<K> {
        if !self.contains(id) {
            return None;
        }
        Some(self.slots[self.pos[id] as usize].1)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn clear(&mut self) {
        for &(id, _) in &self.slots {
            self.pos[id as usize] = ABSENT;
        }
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type H = DaryHeap<f64, 4>;

    #[test]
    fn pops_in_sorted_order() {
        let keys = [5.0, 3.0, 8.0, 1.0, 9.0, 2.0, 7.0];
        let mut h = H::with_capacity(keys.len());
        for (id, &k) in keys.iter().enumerate() {
            h.insert(id, k);
            h.assert_invariants();
        }
        let mut out = Vec::new();
        while let Some((_, k)) = h.pop_min() {
            h.assert_invariants();
            out.push(k);
        }
        let mut expected = keys.to_vec();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(out, expected);
    }

    #[test]
    fn decrease_key_reorders() {
        let mut h = H::with_capacity(4);
        h.insert(0, 10.0);
        h.insert(1, 20.0);
        h.insert(2, 30.0);
        assert!(h.decrease_key(2, 5.0));
        h.assert_invariants();
        assert_eq!(h.pop_min(), Some((2, 5.0)));
        assert_eq!(h.pop_min(), Some((0, 10.0)));
    }

    #[test]
    fn decrease_key_rejects_increase() {
        let mut h = H::with_capacity(2);
        h.insert(0, 1.0);
        assert!(!h.decrease_key(0, 2.0));
        assert_eq!(h.key(0), Some(1.0));
        assert!(!h.decrease_key(0, 1.0), "equal key is not a decrease");
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_insert_panics() {
        let mut h = H::with_capacity(2);
        h.insert(0, 1.0);
        h.insert(0, 2.0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_insert_panics() {
        let mut h = H::with_capacity(2);
        h.insert(2, 1.0);
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn decrease_absent_panics() {
        let mut h = H::with_capacity(2);
        h.decrease_key(0, 1.0);
    }

    #[test]
    fn reinsert_after_pop() {
        let mut h = H::with_capacity(2);
        h.insert(0, 1.0);
        assert_eq!(h.pop_min(), Some((0, 1.0)));
        h.insert(0, 2.0);
        assert_eq!(h.pop_min(), Some((0, 2.0)));
    }

    #[test]
    fn clear_resets_position_index() {
        let mut h = H::with_capacity(4);
        h.insert(1, 1.0);
        h.insert(2, 2.0);
        h.clear();
        assert!(!h.contains(1));
        h.insert(1, 3.0);
        assert_eq!(h.pop_min(), Some((1, 3.0)));
    }

    #[test]
    fn binary_arity_also_works() {
        let mut h: DaryHeap<i64, 2> = DaryHeap::with_capacity(32);
        for id in 0..32 {
            h.insert(id, (31 - id) as i64);
        }
        for want in 0..32i64 {
            assert_eq!(h.pop_min().unwrap().1, want);
        }
    }

    #[test]
    fn duplicate_keys_all_pop() {
        let mut h = H::with_capacity(8);
        for id in 0..8 {
            h.insert(id, 1.0);
        }
        let mut seen = [false; 8];
        while let Some((id, k)) = h.pop_min() {
            assert_eq!(k, 1.0);
            assert!(!seen[id]);
            seen[id] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// Equal keys pop in ascending id order regardless of insertion order.
    #[test]
    fn ties_break_by_smallest_id() {
        for perm in [
            vec![3usize, 1, 4, 0, 2],
            vec![0, 1, 2, 3, 4],
            vec![4, 3, 2, 1, 0],
        ] {
            let mut h = H::with_capacity(8);
            for &id in &perm {
                h.insert(id, 7.0);
                h.assert_invariants();
            }
            let order: Vec<usize> = std::iter::from_fn(|| h.pop_min().map(|(id, _)| id)).collect();
            assert_eq!(order, vec![0, 1, 2, 3, 4], "insertion order {perm:?}");
        }
    }

    /// Mixed keys and ties: pop order is exactly ascending `(key, id)`.
    #[test]
    fn pop_order_is_key_then_id() {
        let entries = [(5usize, 2.0), (1, 1.0), (4, 2.0), (0, 2.0), (3, 1.0)];
        let mut h = H::with_capacity(8);
        for &(id, k) in &entries {
            h.insert(id, k);
        }
        let order: Vec<(usize, f64)> = std::iter::from_fn(|| h.pop_min()).collect();
        assert_eq!(
            order,
            vec![(1, 1.0), (3, 1.0), (0, 2.0), (4, 2.0), (5, 2.0)]
        );
    }
}
