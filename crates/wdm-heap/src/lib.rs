//! Priority-queue substrate for the WDM routing workspace.
//!
//! Shortest-path computations dominate the running time of every algorithm in
//! the paper (auxiliary-graph Suurballe passes, Liang–Shen semilightpath
//! search), and all of them are Dijkstra-shaped: they need a min-queue with an
//! efficient *decrease-key* addressed by a dense integer id.
//!
//! The paper's Theorem 1 cites Fredman–Tarjan Fibonacci heaps for the
//! `O(m + n log n)` bound. Fibonacci heaps are practically dominated by
//! simpler structures, so this crate provides three interchangeable engines
//! behind the [`MinQueue`] trait:
//!
//! * [`DaryHeap`] — an indexed d-ary heap (default `D = 4`), the practical
//!   workhorse: `O(log n)` everything, excellent constants and locality.
//! * [`PairingHeap`] — amortised `o(log n)` decrease-key, the practical
//!   stand-in for the Fibonacci heap in Theorem 1's bound.
//! * [`BucketQueue`] — a monotone integer bucket queue, `O(1)` per operation
//!   for bounded integer keys (used when costs are small integers).
//!
//! All engines address elements by a dense `usize` id in `0..capacity`, which
//! matches the node/state indexing used by the graph crates and avoids any
//! hashing on the hot path (a Rust-perf-book idiom).
//!
//! The `heaps` Criterion bench in `wdm-bench` compares the engines head to
//! head on Dijkstra workloads.

mod bucket;
mod dary;
mod pairing;

pub use bucket::BucketQueue;
pub use dary::DaryHeap;
pub use pairing::PairingHeap;

/// An addressable min-priority queue over dense integer ids.
///
/// Elements are identified by `usize` ids in `0..capacity`. At most one entry
/// per id may be present at a time. Keys only need a partial order; entries
/// with incomparable keys (NaN) must not be inserted — implementations may
/// panic or misbehave on NaN keys (debug builds assert against them where
/// cheap).
///
/// ```
/// use wdm_heap::{DaryHeap, MinQueue};
///
/// let mut q: DaryHeap<f64, 4> = DaryHeap::with_capacity(8);
/// q.insert(3, 5.0);
/// q.insert(1, 2.0);
/// q.decrease_key(3, 1.0);
/// assert_eq!(q.pop_min(), Some((3, 1.0)));
/// assert_eq!(q.pop_min(), Some((1, 2.0)));
/// assert!(q.is_empty());
/// ```
pub trait MinQueue<K: PartialOrd + Copy> {
    /// Creates an empty queue able to hold ids in `0..capacity`.
    fn with_capacity(capacity: usize) -> Self;

    /// Number of ids the queue can address.
    fn capacity(&self) -> usize;

    /// Inserts `id` with `key`.
    ///
    /// # Panics
    /// Panics if `id >= capacity` or `id` is already present.
    fn insert(&mut self, id: usize, key: K);

    /// Removes and returns the entry with the minimum key.
    fn pop_min(&mut self) -> Option<(usize, K)>;

    /// Returns the minimum entry without removing it.
    fn peek_min(&self) -> Option<(usize, K)>;

    /// Lowers the key of `id` to `key`.
    ///
    /// Returns `true` if the key was strictly decreased, `false` if the
    /// stored key was already `<= key` (the stored key is left unchanged).
    ///
    /// # Panics
    /// Panics if `id` is not present.
    fn decrease_key(&mut self, id: usize, key: K) -> bool;

    /// Whether `id` is currently present.
    fn contains(&self, id: usize) -> bool;

    /// The current key of `id`, if present.
    fn key(&self, id: usize) -> Option<K>;

    /// Number of entries currently in the queue.
    fn len(&self) -> usize;

    /// Whether the queue holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all entries, keeping the capacity.
    fn clear(&mut self);

    /// Inserts `id` if absent, otherwise attempts to decrease its key.
    ///
    /// Returns `true` if the queue changed (fresh insert or strict decrease).
    /// This is the single call sites in Dijkstra-style relaxations need.
    fn insert_or_decrease(&mut self, id: usize, key: K) -> bool {
        if self.contains(id) {
            self.decrease_key(id, key)
        } else {
            self.insert(id, key);
            true
        }
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<Q: MinQueue<f64>>() {
        let mut q = Q::with_capacity(8);
        assert!(q.is_empty());
        assert_eq!(q.pop_min(), None);
        q.insert(3, 5.0);
        q.insert(1, 2.0);
        assert_eq!(q.len(), 2);
        assert!(q.contains(1));
        assert!(!q.contains(0));
        assert_eq!(q.key(3), Some(5.0));
        assert_eq!(q.peek_min(), Some((1, 2.0)));
        assert!(q.insert_or_decrease(3, 1.0));
        assert!(!q.insert_or_decrease(3, 4.0));
        assert_eq!(q.pop_min(), Some((3, 1.0)));
        assert_eq!(q.pop_min(), Some((1, 2.0)));
        assert_eq!(q.pop_min(), None);
        q.insert(0, 9.0);
        q.clear();
        assert!(q.is_empty());
        assert!(!q.contains(0));
    }

    #[test]
    fn dary_implements_trait_contract() {
        exercise::<DaryHeap<f64, 4>>();
    }

    #[test]
    fn pairing_implements_trait_contract() {
        exercise::<PairingHeap<f64>>();
    }
}
