//! Cross-engine equivalence: the monotone bucket queue and the indexed
//! d-ary heap must produce *identical* `(id, key)` pop sequences on any
//! Dijkstra-shaped workload.
//!
//! Both engines break key ties by smallest id, so the pop sequence is a pure
//! function of the operation sequence, not of heap internals. This is the
//! property that lets the CSR auxiliary-graph engine swap its Dijkstra heap
//! (f64 d-ary ↔ integer bucket) without changing a single routing decision:
//! identical settle order ⇒ identical predecessor trees ⇒ identical paths.

use proptest::prelude::*;
use wdm_heap::{BucketQueue, DaryHeap, MinQueue};

const CAP: usize = 32;
const SPAN: u64 = 64;

/// One step of a monotone workload (keys constrained at generation time).
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Insert `id` (skipped if present) at `floor + delta`.
    Insert {
        id: usize,
        delta: u64,
    },
    /// Decrease `id` (skipped if absent) towards `floor + delta`.
    Decrease {
        id: usize,
        delta: u64,
    },
    Pop,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..CAP, 0..SPAN).prop_map(|(id, delta)| Step::Insert { id, delta }),
        (0..CAP, 0..SPAN).prop_map(|(id, delta)| Step::Decrease { id, delta }),
        Just(Step::Pop),
    ]
}

/// Replays a workload against one engine, returning the exact pop sequence.
/// The driver tracks the monotone floor itself so generated keys are always
/// legal for the bucket queue's window; both engines see byte-identical
/// operation streams.
fn replay<Q: MinQueue<u64>>(mut q: Q, steps: &[Step]) -> Vec<(usize, u64)> {
    let mut pops = Vec::new();
    let mut floor = 0u64;
    for &step in steps {
        match step {
            Step::Insert { id, delta } => {
                if !q.contains(id) {
                    q.insert(id, floor + delta.min(SPAN - 1));
                }
            }
            Step::Decrease { id, delta } => {
                if q.contains(id) {
                    // Target clamped into the legal window [floor, old key).
                    let target = (floor + delta.min(SPAN - 1)).max(floor);
                    q.decrease_key(id, target);
                }
            }
            Step::Pop => {
                if let Some((id, k)) = q.pop_min() {
                    pops.push((id, k));
                    floor = k;
                }
            }
        }
    }
    // Drain the rest: the full sequence must agree, not just the prefix.
    while let Some((id, k)) = q.pop_min() {
        pops.push((id, k));
    }
    pops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Same workload, same pops — ids and keys — for bucket vs 4-ary vs
    /// binary. Ties are exercised hard: deltas collide constantly within a
    /// 64-wide window over 32 ids.
    #[test]
    fn bucket_and_dary_pop_identically(
        steps in proptest::collection::vec(step_strategy(), 1..250),
    ) {
        let bucket = replay(BucketQueue::new(CAP, SPAN), &steps);
        let dary4 = replay(DaryHeap::<u64, 4>::with_capacity(CAP), &steps);
        let dary2 = replay(DaryHeap::<u64, 2>::with_capacity(CAP), &steps);
        prop_assert_eq!(&bucket, &dary4, "bucket vs 4-ary");
        prop_assert_eq!(&dary4, &dary2, "4-ary vs 2-ary");
    }

    /// decrease_key agrees across engines: same accepted/rejected verdicts,
    /// same resulting keys — checked op by op, not just via final pops.
    #[test]
    fn decrease_key_verdicts_agree(
        inserts in proptest::collection::vec((0..CAP, 0..SPAN), 1..24),
        decreases in proptest::collection::vec((0..CAP, 0..SPAN), 1..48),
    ) {
        let mut bucket = BucketQueue::new(CAP, SPAN);
        let mut dary = DaryHeap::<u64, 4>::with_capacity(CAP);
        for &(id, key) in &inserts {
            if !bucket.contains(id) {
                bucket.insert(id, key);
                dary.insert(id, key);
            }
        }
        for &(id, key) in &decreases {
            if bucket.contains(id) {
                let vb = bucket.decrease_key(id, key);
                let vd = dary.decrease_key(id, key);
                prop_assert_eq!(vb, vd, "verdict for id {} -> {}", id, key);
                prop_assert_eq!(bucket.key(id), dary.key(id));
            }
        }
        prop_assert_eq!(
            replay(bucket, &[]),
            replay(dary, &[])
        );
    }
}

/// A hand-built all-ties storm: every id lands on one of two keys, with
/// decreases merging them — the pathological case for tie stability.
#[test]
fn tie_storm_pops_identically() {
    let mut steps = Vec::new();
    for id in (0..CAP).rev() {
        steps.push(Step::Insert {
            id,
            delta: (id % 2) as u64,
        });
    }
    for id in 0..CAP / 2 {
        steps.push(Step::Decrease {
            id: id * 2 + 1,
            delta: 0,
        });
    }
    for _ in 0..CAP {
        steps.push(Step::Pop);
    }
    let bucket = replay(BucketQueue::new(CAP, SPAN), &steps);
    let dary = replay(DaryHeap::<u64, 4>::with_capacity(CAP), &steps);
    assert_eq!(bucket, dary);
    // All keys equal after the merge ⇒ ids must come out sorted.
    let ids: Vec<usize> = bucket.iter().map(|&(id, _)| id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
}
