//! Property-based tests: every heap engine must behave identically to a
//! simple reference model under arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::BTreeMap;
use wdm_heap::{BucketQueue, DaryHeap, MinQueue, PairingHeap};

const CAP: usize = 24;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: usize, key: u64 },
    Decrease { id: usize, key: u64 },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..CAP, 0u64..1000).prop_map(|(id, key)| Op::Insert { id, key }),
        (0..CAP, 0u64..1000).prop_map(|(id, key)| Op::Decrease { id, key }),
        Just(Op::Pop),
    ]
}

/// Runs an op sequence against the heap and a BTreeMap reference, checking
/// every observable output. Returns early instead of applying ops that the
/// trait declares as panicking (double insert, absent decrease).
fn check_against_model<Q: MinQueue<u64>>(mut q: Q, ops: &[Op]) {
    let mut model: BTreeMap<usize, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert { id, key } => {
                if model.contains_key(&id) {
                    continue;
                }
                q.insert(id, key);
                model.insert(id, key);
            }
            Op::Decrease { id, key } => {
                let Some(cur) = model.get_mut(&id) else {
                    continue;
                };
                let expect = key < *cur;
                assert_eq!(q.decrease_key(id, key), expect);
                if expect {
                    *cur = key;
                }
            }
            Op::Pop => {
                let min_key = model.values().min().copied();
                match (q.pop_min(), min_key) {
                    (None, None) => {}
                    (Some((id, k)), Some(mk)) => {
                        assert_eq!(k, mk, "popped key is not the minimum");
                        assert_eq!(model.remove(&id), Some(k), "popped id/key pair unknown");
                    }
                    other => panic!("pop mismatch: {other:?}"),
                }
            }
        }
        assert_eq!(q.len(), model.len());
        for id in 0..CAP {
            assert_eq!(q.contains(id), model.contains_key(&id));
            assert_eq!(q.key(id), model.get(&id).copied());
        }
    }
    // Drain: remaining elements must come out in non-decreasing key order.
    let mut last = 0u64;
    while let Some((id, k)) = q.pop_min() {
        assert!(k >= last);
        last = k;
        assert_eq!(model.remove(&id), Some(k));
    }
    assert!(model.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dary4_matches_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        check_against_model(DaryHeap::<u64, 4>::with_capacity(CAP), &ops);
    }

    #[test]
    fn dary2_matches_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        check_against_model(DaryHeap::<u64, 2>::with_capacity(CAP), &ops);
    }

    #[test]
    fn dary8_matches_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        check_against_model(DaryHeap::<u64, 8>::with_capacity(CAP), &ops);
    }

    #[test]
    fn pairing_matches_model(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        check_against_model(PairingHeap::<u64>::with_capacity(CAP), &ops);
    }

    /// The bucket queue is monotone, so we only feed it non-decreasing pop
    /// fronts: a Dijkstra-shaped workload where inserted keys are >= the last
    /// popped key and within the span window. The window floor only moves on
    /// pops, and restarts on an empty-queue insert that lands outside it —
    /// the test mirrors that rule to generate only legal keys.
    #[test]
    fn bucket_matches_model_on_monotone_workload(
        seed_key in 0u64..100,
        steps in proptest::collection::vec((0usize..CAP, 0u64..64, any::<bool>()), 0..200),
    ) {
        const SPAN: u64 = 65;
        let mut q = BucketQueue::new(CAP, SPAN);
        let mut model: BTreeMap<usize, u64> = BTreeMap::new();
        // Mirror of the queue's window floor (starts at 0; moves on pops;
        // an insert into an empty queue outside the window restarts it).
        let mut floor = 0u64;
        let mut frontier = seed_key;
        if seed_key < floor || seed_key >= floor + SPAN {
            floor = seed_key;
        }
        q.insert(0, seed_key);
        model.insert(0, seed_key);
        for (id, delta, pop) in steps {
            if pop {
                let min_key = model.values().min().copied();
                match (q.pop_min(), min_key) {
                    (None, None) => {}
                    (Some((pid, k)), Some(mk)) => {
                        assert_eq!(k, mk);
                        assert_eq!(model.remove(&pid), Some(k));
                        frontier = k;
                        floor = k;
                    }
                    other => panic!("pop mismatch: {other:?}"),
                }
            } else {
                // Keep generated keys inside the active window.
                let key = (frontier + delta).min(floor + SPAN - 1);
                if model.is_empty() {
                    if key < floor || key >= floor + SPAN {
                        floor = key;
                    }
                    q.insert(id, key);
                    model.insert(id, key);
                    frontier = key;
                } else if let Some(cur) = model.get_mut(&id) {
                    // Legal decrease targets stay >= floor.
                    let key = key.max(floor);
                    let expect = key < *cur;
                    assert_eq!(q.decrease_key(id, key), expect);
                    if expect { *cur = key; }
                } else {
                    q.insert(id, key);
                    model.insert(id, key);
                }
            }
            assert_eq!(q.len(), model.len());
        }
    }
}
