//! Directed paths as edge sequences.

use crate::{DiGraph, EdgeId, NodeId};

/// A directed walk from `src` to `dst` given as a sequence of edge ids.
///
/// Stored by edge rather than by node so that parallel edges — which matter
/// for edge-disjointness in multigraph WDM models — are unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Path {
    /// First node of the walk.
    pub src: NodeId,
    /// Last node of the walk.
    pub dst: NodeId,
    /// Edges in walk order; empty iff `src == dst`.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// The trivial empty path at `v`.
    pub fn trivial(v: NodeId) -> Self {
        Self {
            src: v,
            dst: v,
            edges: Vec::new(),
        }
    }

    /// Number of edges (hops).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The node sequence `src, ..., dst` (length `len() + 1`).
    pub fn nodes<N, E>(&self, g: &DiGraph<N, E>) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.edges.len() + 1);
        out.push(self.src);
        for &e in &self.edges {
            out.push(g.dst(e));
        }
        out
    }

    /// Sum of `cost(e)` over the path's edges.
    pub fn cost(&self, mut cost: impl FnMut(EdgeId) -> f64) -> f64 {
        self.edges.iter().map(|&e| cost(e)).sum()
    }

    /// Checks that the edge sequence is a connected walk from `src` to `dst`.
    pub fn is_valid_walk<N, E>(&self, g: &DiGraph<N, E>) -> bool {
        let mut at = self.src;
        for &e in &self.edges {
            if g.src(e) != at {
                return false;
            }
            at = g.dst(e);
        }
        at == self.dst
    }

    /// Checks validity and that no node repeats (a simple path).
    pub fn is_simple<N, E>(&self, g: &DiGraph<N, E>) -> bool {
        if !self.is_valid_walk(g) {
            return false;
        }
        let nodes = self.nodes(g);
        let mut seen = vec![false; g.node_count()];
        for v in nodes {
            if seen[v.index()] {
                return false;
            }
            seen[v.index()] = true;
        }
        true
    }

    /// Whether `self` and `other` share any edge id.
    pub fn shares_edge_with(&self, other: &Path) -> bool {
        // Paths are short (network diameters); quadratic scan beats
        // allocating hash sets for the sizes seen here, and a sort-based
        // check is used when both paths are long.
        if self.edges.len() * other.edges.len() <= 1024 {
            self.edges.iter().any(|e| other.edges.contains(e))
        } else {
            let mut a: Vec<EdgeId> = self.edges.clone();
            let mut b: Vec<EdgeId> = other.edges.clone();
            a.sort_unstable();
            b.sort_unstable();
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return true,
                }
            }
            false
        }
    }

    /// Whether `self` and `other` share any intermediate node (endpoints
    /// excluded) — the node-disjointness predicate.
    pub fn shares_interior_node_with<N, E>(&self, other: &Path, g: &DiGraph<N, E>) -> bool {
        let interior = |p: &Path| -> Vec<NodeId> {
            let nodes = p.nodes(g);
            nodes[1..nodes.len().saturating_sub(1)].to_vec()
        };
        let a = interior(self);
        let b = interior(other);
        a.iter().any(|v| b.contains(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<(), f64> {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        DiGraph::weighted(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)])
    }

    #[test]
    fn walk_validation() {
        let g = diamond();
        let p = Path {
            src: NodeId(0),
            dst: NodeId(3),
            edges: vec![EdgeId(0), EdgeId(1)],
        };
        assert!(p.is_valid_walk(&g));
        assert!(p.is_simple(&g));
        assert_eq!(p.nodes(&g), vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(p.cost(|e| g.weight(e)), 2.0);

        let broken = Path {
            src: NodeId(0),
            dst: NodeId(3),
            edges: vec![EdgeId(0), EdgeId(3)], // e3 starts at node 2, not 1
        };
        assert!(!broken.is_valid_walk(&g));
    }

    #[test]
    fn disjointness_predicates() {
        let g = diamond();
        let top = Path {
            src: NodeId(0),
            dst: NodeId(3),
            edges: vec![EdgeId(0), EdgeId(1)],
        };
        let bottom = Path {
            src: NodeId(0),
            dst: NodeId(3),
            edges: vec![EdgeId(2), EdgeId(3)],
        };
        assert!(!top.shares_edge_with(&bottom));
        assert!(top.shares_edge_with(&top));
        assert!(!top.shares_interior_node_with(&bottom, &g));
    }

    #[test]
    fn trivial_path() {
        let g = diamond();
        let p = Path::trivial(NodeId(2));
        assert!(p.is_empty());
        assert!(p.is_valid_walk(&g));
        assert_eq!(p.nodes(&g), vec![NodeId(2)]);
        assert_eq!(p.cost(|_| 1.0), 0.0);
    }

    #[test]
    fn long_paths_use_sorted_intersection() {
        // Force the sort-based branch with > 1024 edge-pair product.
        let a = Path {
            src: NodeId(0),
            dst: NodeId(0),
            edges: (0..40).map(EdgeId).collect(),
        };
        let b = Path {
            src: NodeId(0),
            dst: NodeId(0),
            edges: (39..80).map(EdgeId).collect(),
        };
        assert!(a.shares_edge_with(&b)); // share e39
        let c = Path {
            src: NodeId(0),
            dst: NodeId(0),
            edges: (40..80).map(EdgeId).collect(),
        };
        assert!(!a.shares_edge_with(&c));
    }
}
