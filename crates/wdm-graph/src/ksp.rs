//! Yen's algorithm for the k shortest loopless paths.
//!
//! Used by the baseline routing policies: a simple (pre-Suurballe) way to
//! obtain a disjoint pair is to enumerate the k cheapest simple paths and
//! scan for the first edge-disjoint combination. The evaluation compares
//! this against the paper's auxiliary-graph construction.

use crate::dijkstra::dijkstra_filtered;
use crate::{DiGraph, NodeId, Path};

/// The `k` cheapest simple `s -> t` paths in non-decreasing cost order
/// (fewer if the graph has fewer simple paths).
///
/// Classic Yen: for each prefix ("root") of the last accepted path, ban the
/// deviating edges and the root's interior nodes, and extend with a shortest
/// "spur" path. Costs must be non-negative.
pub fn yen_k_shortest<N, E>(
    g: &DiGraph<N, E>,
    s: NodeId,
    t: NodeId,
    k: usize,
    mut cost: impl FnMut(crate::EdgeId) -> f64,
) -> Vec<Path> {
    let mut accepted: Vec<(f64, Path)> = Vec::new();
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    let first = dijkstra_filtered(g, s, &mut cost, |_| true).path_to(g, t);
    let Some(first) = first else {
        return Vec::new();
    };
    let first_cost = first.cost(&mut cost);
    accepted.push((first_cost, first));

    while accepted.len() < k {
        let (_, last) = accepted.last().expect("at least the first path");
        let last = last.clone();
        let last_nodes = last.nodes(g);

        // One candidate per deviation point along the last accepted path.
        for i in 0..last.edges.len() {
            let spur_node = last_nodes[i];
            let root_edges = &last.edges[..i];
            let root_cost: f64 = root_edges.iter().map(|&e| cost(e)).sum();

            // Ban edges that would recreate any accepted path with this root,
            // and ban the root's interior nodes (loopless requirement).
            let mut banned_edges = vec![false; g.edge_count()];
            for (_, p) in &accepted {
                if p.edges.len() > i && p.edges[..i] == *root_edges {
                    banned_edges[p.edges[i].index()] = true;
                }
            }
            for (_, p) in &candidates {
                if p.edges.len() > i && p.edges[..i] == *root_edges {
                    banned_edges[p.edges[i].index()] = true;
                }
            }
            let mut banned_nodes = vec![false; g.node_count()];
            for &v in &last_nodes[..i] {
                banned_nodes[v.index()] = true;
            }

            let spur_tree = dijkstra_filtered(g, spur_node, &mut cost, |e| {
                !banned_edges[e.index()]
                    && !banned_nodes[g.src(e).index()]
                    && !banned_nodes[g.dst(e).index()]
            });
            if let Some(spur) = spur_tree.path_to(g, t) {
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur.edges);
                let total = root_cost + spur.cost(&mut cost);
                let cand = Path {
                    src: s,
                    dst: t,
                    edges,
                };
                // Deduplicate identical candidates.
                if !candidates.iter().any(|(_, p)| p.edges == cand.edges)
                    && !accepted.iter().any(|(_, p)| p.edges == cand.edges)
                {
                    candidates.push((total, cand));
                }
            }
        }

        if candidates.is_empty() {
            break;
        }
        // Extract the cheapest candidate.
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("no NaN costs"))
            .map(|(i, _)| i)
            .expect("non-empty");
        accepted.push(candidates.swap_remove(best));
    }

    accepted.into_iter().map(|(_, p)| p).collect()
}

/// Scans the `k` cheapest simple paths for the first edge-disjoint pair
/// (a pre-Suurballe heuristic baseline). Returns the pair with the smallest
/// combined cost among pairs found within the k-list, if any.
pub fn ksp_disjoint_pair<N, E>(
    g: &DiGraph<N, E>,
    s: NodeId,
    t: NodeId,
    k: usize,
    mut cost: impl FnMut(crate::EdgeId) -> f64,
) -> Option<crate::suurballe::DisjointPair> {
    let paths = yen_k_shortest(g, s, t, k, &mut cost);
    let mut best: Option<(f64, usize, usize)> = None;
    for i in 0..paths.len() {
        for j in (i + 1)..paths.len() {
            if !paths[i].shares_edge_with(&paths[j]) {
                let tot = paths[i].cost(&mut cost) + paths[j].cost(&mut cost);
                if best.is_none_or(|(b, _, _)| tot < b) {
                    best = Some((tot, i, j));
                }
            }
        }
    }
    best.map(|(tot, i, j)| crate::suurballe::DisjointPair {
        paths: [paths[i].clone(), paths[j].clone()],
        total_cost: tot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeId;

    fn sample() -> DiGraph<(), f64> {
        // Wikipedia's Yen example (C..H relabelled 0..5).
        DiGraph::weighted(
            6,
            &[
                (0, 1, 3.0), // C-D
                (0, 2, 2.0), // C-E
                (1, 3, 4.0), // D-F
                (2, 1, 1.0), // E-D
                (2, 3, 2.0), // E-F
                (2, 4, 3.0), // E-G
                (3, 4, 2.0), // F-G
                (3, 5, 1.0), // F-H
                (4, 5, 2.0), // G-H
            ],
        )
    }

    #[test]
    fn yen_reproduces_textbook_answer() {
        let g = sample();
        let paths = yen_k_shortest(&g, NodeId(0), NodeId(5), 3, |e| g.weight(e));
        assert_eq!(paths.len(), 3);
        let costs: Vec<f64> = paths.iter().map(|p| p.cost(|e| g.weight(e))).collect();
        assert_eq!(costs, vec![5.0, 7.0, 8.0]);
        // k1: C-E-F-H.
        assert_eq!(
            paths[0].nodes(&g),
            vec![NodeId(0), NodeId(2), NodeId(3), NodeId(5)]
        );
        for p in &paths {
            assert!(p.is_simple(&g));
        }
    }

    #[test]
    fn costs_are_non_decreasing_and_paths_distinct() {
        let g = sample();
        let paths = yen_k_shortest(&g, NodeId(0), NodeId(5), 10, |e| g.weight(e));
        for w in paths.windows(2) {
            assert!(
                w[0].cost(|e| g.weight(e)) <= w[1].cost(|e| g.weight(e)),
                "non-monotone k-list"
            );
            assert_ne!(w[0].edges, w[1].edges);
        }
        // Every returned path is simple.
        assert!(paths.iter().all(|p| p.is_simple(&g)));
    }

    #[test]
    fn exhausts_simple_paths() {
        // Diamond has exactly 2 simple paths.
        let g = DiGraph::weighted(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let paths = yen_k_shortest(&g, NodeId(0), NodeId(3), 10, |e| g.weight(e));
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn unreachable_target_gives_empty() {
        let g = DiGraph::weighted(3, &[(0, 1, 1.0)]);
        assert!(yen_k_shortest(&g, NodeId(0), NodeId(2), 3, |e| g.weight(e)).is_empty());
    }

    #[test]
    fn ksp_pair_finds_diamond() {
        let g = DiGraph::weighted(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let pair = ksp_disjoint_pair(&g, NodeId(0), NodeId(3), 4, |e| g.weight(e)).unwrap();
        assert_eq!(pair.total_cost, 6.0);
        assert!(pair.is_edge_disjoint());
    }

    #[test]
    fn ksp_pair_can_miss_what_suurballe_finds() {
        // The trap: the k cheapest paths for small k all share edges.
        let g = DiGraph::weighted(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (0, 2, 10.0),
                (1, 3, 10.0),
            ],
        );
        // k = 2: paths are 0-1-2-3 (3) and 0-1-3 (11); they share edge 0-1.
        let pair2 = ksp_disjoint_pair(&g, NodeId(0), NodeId(3), 2, |e| g.weight(e));
        assert!(pair2.is_none());
        // Larger k eventually finds the disjoint pair.
        let pair4 = ksp_disjoint_pair(&g, NodeId(0), NodeId(3), 4, |e| g.weight(e)).unwrap();
        assert_eq!(pair4.total_cost, 22.0);
    }

    #[test]
    fn parallel_edge_multigraph() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e0 = g.add_edge(a, b, 1.0);
        let e1 = g.add_edge(a, b, 2.0);
        let paths = yen_k_shortest(&g, a, b, 5, |e| g.weight(e));
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].edges, vec![e0]);
        assert_eq!(paths[1].edges, vec![e1]);
        let _ = EdgeId(0);
    }
}
