//! Directed-graph substrate for the WDM robust-routing workspace.
//!
//! Everything in the paper reduces to computations on directed weighted
//! (multi-)graphs: the WDM network itself, the auxiliary graphs `G'`, `G_c`
//! and `G_rc` of §3.3/§4, and the layered wavelength graph of the Liang–Shen
//! semilightpath algorithm. This crate provides the shared machinery:
//!
//! * [`DiGraph`] — an adjacency-list directed multigraph with dense integer
//!   ids ([`NodeId`], [`EdgeId`]) and typed node/edge payloads;
//! * [`Csr`] — an immutable compressed-sparse-row view for hot traversal
//!   loops (contiguous memory, no pointer chasing — a Rust-perf-book idiom);
//! * shortest paths: [`dijkstra`](dijkstra::dijkstra) (generic over the
//!   heap engine), [`bellman_ford`](bellman_ford::bellman_ford);
//! * [`suurballe`] — Suurballe's minimum-cost pair of edge-disjoint paths
//!   (1974), the core subroutine of the paper's `Find_Two_Paths`;
//! * [`johnson`] — Johnson's all-pairs shortest paths (topology stats,
//!   cross-validation oracle);
//! * [`ksp`] — Yen's k-shortest loopless paths (baseline policies);
//! * [`mincostflow`] — successive-shortest-path min-cost flow, used as an
//!   independent exactness oracle for the disjoint-pair computations;
//! * [`traverse`] — BFS/DFS, reachability, Tarjan SCC, topological sort;
//! * [`topology`] — WAN topology generators (NSFNET, ARPANET-like, rings,
//!   grids/tori, Waxman and Erdős–Rényi random graphs, trap/hardness
//!   gadget families);
//! * [`dot`] — Graphviz export for documentation and debugging.

pub mod arena;
pub mod bellman_ford;
pub mod csr;
pub mod dijkstra;
pub mod dot;
mod graph;
mod ids;
pub mod johnson;
pub mod ksp;
pub mod mincostflow;
mod path;
pub mod suurballe;
pub mod topology;
pub mod traverse;

pub use arena::{FlatView, IntWeights, Potentials, SearchArena};
pub use csr::Csr;
pub use graph::DiGraph;
pub use ids::{EdgeId, NodeId};
pub use path::Path;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::bellman_ford::bellman_ford;
    pub use crate::dijkstra::{dijkstra, dijkstra_filtered, ShortestPathTree};
    pub use crate::ksp::yen_k_shortest;
    pub use crate::suurballe::{edge_disjoint_pair, node_disjoint_pair, DisjointPair};
    pub use crate::{Csr, DiGraph, EdgeId, NodeId, Path};
}
