//! Immutable compressed-sparse-row view of a [`DiGraph`].
//!
//! Dijkstra over an adjacency-list graph chases a `Vec<Vec<EdgeId>>` and then
//! indexes the edge table per neighbour — two dependent loads per edge. The
//! CSR view packs `(target, weight, edge id)` triples contiguously per
//! source node so the relaxation loop streams memory linearly. Benches in
//! `wdm-bench` (`scaling`) run Dijkstra over both representations.

use crate::{DiGraph, EdgeId, NodeId};

/// One outgoing arc in CSR form.
#[derive(Debug, Clone, Copy)]
pub struct CsrArc {
    /// Head (target) node.
    pub to: NodeId,
    /// Cached weight.
    pub weight: f64,
    /// Id of the originating edge in the source graph.
    pub edge: EdgeId,
}

/// Compressed-sparse-row adjacency: `arcs[offsets[v]..offsets[v+1]]` are the
/// outgoing arcs of node `v`.
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<u32>,
    arcs: Vec<CsrArc>,
    node_count: usize,
}

impl Csr {
    /// Builds the CSR view using `weight` to extract arc weights.
    pub fn from_graph<N, E>(g: &DiGraph<N, E>, mut weight: impl FnMut(EdgeId, &E) -> f64) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut arcs = Vec::with_capacity(g.edge_count());
        offsets.push(0);
        for v in g.node_ids() {
            for &e in g.out_edges(v) {
                arcs.push(CsrArc {
                    to: g.dst(e),
                    weight: weight(e, g.edge(e)),
                    edge: e,
                });
            }
            offsets.push(arcs.len() as u32);
        }
        Self {
            offsets,
            arcs,
            node_count: n,
        }
    }

    /// Builds the CSR view of a plain weighted graph.
    pub fn from_weighted(g: &DiGraph<(), f64>) -> Self {
        Self::from_graph(g, |_, &w| w)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of arcs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Outgoing arcs of `v` as a contiguous slice.
    #[inline]
    pub fn out_arcs(&self, v: NodeId) -> &[CsrArc] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.arcs[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_mirrors_adjacency() {
        let g = DiGraph::weighted(
            4,
            &[
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 3, 3.0),
                (2, 3, 4.0),
                (3, 0, 5.0),
            ],
        );
        let csr = Csr::from_weighted(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.arc_count(), 5);
        let arcs0 = csr.out_arcs(NodeId(0));
        assert_eq!(arcs0.len(), 2);
        assert_eq!(arcs0[0].to, NodeId(1));
        assert_eq!(arcs0[0].weight, 1.0);
        assert_eq!(arcs0[0].edge, EdgeId(0));
        assert_eq!(arcs0[1].to, NodeId(2));
        assert!(csr.out_arcs(NodeId(3)).len() == 1);
    }

    #[test]
    fn empty_nodes_have_empty_slices() {
        let g = DiGraph::weighted(3, &[(0, 1, 1.0)]);
        let csr = Csr::from_weighted(&g);
        assert!(csr.out_arcs(NodeId(1)).is_empty());
        assert!(csr.out_arcs(NodeId(2)).is_empty());
    }

    #[test]
    fn custom_weight_function() {
        let g = DiGraph::weighted(2, &[(0, 1, 3.0)]);
        let csr = Csr::from_graph(&g, |_, &w| w * 10.0);
        assert_eq!(csr.out_arcs(NodeId(0))[0].weight, 30.0);
    }
}
