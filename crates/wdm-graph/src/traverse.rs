//! Graph traversal utilities: BFS, DFS, reachability, strongly connected
//! components (Tarjan), topological sort, and a 2-edge-connectivity probe
//! used to check that generated WAN topologies can support robust routing
//! between all node pairs.

use crate::mincostflow::MinCostFlow;
use crate::{DiGraph, NodeId};

/// Nodes reachable from `source` (including it), by BFS.
pub fn reachable_from<N, E>(g: &DiGraph<N, E>, source: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &e in g.out_edges(u) {
            let v = g.dst(e);
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// BFS hop distances from `source` (`usize::MAX` = unreachable).
pub fn bfs_distances<N, E>(g: &DiGraph<N, E>, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &e in g.out_edges(u) {
            let v = g.dst(e);
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Whether every node can reach every other node (strong connectivity).
pub fn is_strongly_connected<N, E>(g: &DiGraph<N, E>) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    strongly_connected_components(g).len() == 1
}

/// Tarjan's strongly connected components (iterative). Returns the list of
/// components, each a list of nodes; components appear in reverse
/// topological order of the condensation.
pub fn strongly_connected_components<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Explicit DFS stack: (node, out-edge cursor).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            let out = g.out_edges(NodeId(v));
            if *cursor < out.len() {
                let e = out[*cursor];
                *cursor += 1;
                let w = g.dst(e).0;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("root still on stack");
                        on_stack[w as usize] = false;
                        comp.push(NodeId(w));
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// Topological order of a DAG, or `None` if the graph has a cycle (Kahn).
pub fn topological_sort<N, E>(g: &DiGraph<N, E>) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|v| g.in_degree(NodeId::from(v))).collect();
    let mut queue: std::collections::VecDeque<NodeId> = (0..n)
        .map(NodeId::from)
        .filter(|&v| indeg[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &e in g.out_edges(u) {
            let v = g.dst(e);
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                queue.push_back(v);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Max number of edge-disjoint `s -> t` paths (local edge connectivity),
/// computed by unit-capacity max-flow. `robust routing between (s, t)` is
/// feasible iff this is ≥ 2.
pub fn edge_connectivity<N, E>(g: &DiGraph<N, E>, s: NodeId, t: NodeId) -> usize {
    if s == t {
        return 0;
    }
    let mut mcf = MinCostFlow::new(g.node_count());
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        mcf.add_arc(u, v, 1, 0.0, Some(e));
    }
    mcf.solve(s, t, i64::MAX >> 1).flow as usize
}

/// Whether every ordered pair of distinct nodes admits ≥ 2 edge-disjoint
/// paths (the precondition for robust routing to always be feasible).
/// O(n² · maxflow); intended for topology validation, not hot paths.
pub fn is_two_edge_connected<N, E>(g: &DiGraph<N, E>) -> bool {
    let n = g.node_count();
    for s in 0..n {
        for t in 0..n {
            if s != t && edge_connectivity(g, NodeId::from(s), NodeId::from(t)) < 2 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;

    #[test]
    fn reachability_and_bfs() {
        let g = DiGraph::weighted(4, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let r = reachable_from(&g, NodeId(0));
        assert_eq!(r, vec![true, true, true, false]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, usize::MAX]);
    }

    #[test]
    fn tarjan_finds_components() {
        // Two 2-cycles joined by a one-way bridge, plus an isolated node.
        let g = DiGraph::weighted(
            5,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
            ],
        );
        let mut comps: Vec<Vec<u32>> = strongly_connected_components(&g)
            .into_iter()
            .map(|c| {
                let mut v: Vec<u32> = c.into_iter().map(|n| n.0).collect();
                v.sort();
                v
            })
            .collect();
        comps.sort();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn scc_on_strongly_connected_ring() {
        let g = DiGraph::weighted(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn topo_sort_dag_and_cycle() {
        let dag = DiGraph::weighted(4, &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]);
        let order = topological_sort(&dag).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for e in dag.edge_ids() {
            let (u, v) = dag.endpoints(e);
            assert!(pos[u.index()] < pos[v.index()]);
        }
        let cyc = DiGraph::weighted(2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(topological_sort(&cyc).is_none());
    }

    #[test]
    fn edge_connectivity_counts_disjoint_paths() {
        let g = DiGraph::weighted(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)]);
        assert_eq!(edge_connectivity(&g, NodeId(0), NodeId(3)), 2);
        let chain = DiGraph::weighted(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(edge_connectivity(&chain, NodeId(0), NodeId(2)), 1);
    }

    #[test]
    fn two_edge_connected_probe() {
        // Bidirected 4-ring: every pair has 2 edge-disjoint routes.
        let mut arcs = Vec::new();
        for i in 0..4u32 {
            let j = (i + 1) % 4;
            arcs.push((i, j, 1.0));
            arcs.push((j, i, 1.0));
        }
        let ring = DiGraph::weighted(4, &arcs);
        assert!(is_two_edge_connected(&ring));
        let chain = DiGraph::weighted(2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(!is_two_edge_connected(&chain));
    }
}
