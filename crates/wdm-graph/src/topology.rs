//! Wide-area network topology generators.
//!
//! The paper targets WANs; its era's evaluation standard (and that of the
//! works it cites: Mohan–Somani, Mokhtar–Azizoglu, Kodialam–Lakshman) is the
//! 14-node NSFNET backbone, ARPANET-like meshes, and random Waxman /
//! Erdős–Rényi graphs. All generators return *directed* graphs where each
//! undirected fibre is a pair of anti-parallel arcs with the fibre length
//! (km) as payload — the WDM model layers wavelength data on top of these.

use crate::{DiGraph, NodeId};
use rand::Rng;

/// Builds a bidirected graph from an undirected link list
/// `(u, v, length)` — every link becomes two anti-parallel arcs.
pub fn bidirect(n: usize, links: &[(u32, u32, f64)]) -> DiGraph<(), f64> {
    let mut g = DiGraph::with_capacity(n, links.len() * 2);
    for _ in 0..n {
        g.add_node(());
    }
    for &(u, v, w) in links {
        g.add_edge(NodeId(u), NodeId(v), w);
        g.add_edge(NodeId(v), NodeId(u), w);
    }
    g
}

/// The classic 14-node, 21-link NSFNET T1 backbone with fibre lengths in km
/// (the standard WDM evaluation topology).
pub fn nsfnet() -> DiGraph<(), f64> {
    // Nodes: 0 WA, 1 CA-1, 2 CA-2, 3 UT, 4 CO, 5 TX, 6 NE, 7 IL, 8 PA,
    //        9 GA, 10 MI, 11 NY, 12 NJ, 13 DC (one common labelling).
    bidirect(
        14,
        &[
            (0, 1, 1100.0),
            (0, 2, 1600.0),
            (0, 7, 2800.0),
            (1, 2, 600.0),
            (1, 3, 1000.0),
            (2, 5, 2000.0),
            (3, 4, 600.0),
            (3, 10, 2400.0),
            (4, 5, 1100.0),
            (4, 6, 800.0),
            (5, 9, 1200.0),
            (5, 12, 2000.0),
            (6, 7, 700.0),
            (7, 8, 700.0),
            (8, 9, 900.0),
            (8, 11, 500.0),
            (8, 13, 500.0),
            (10, 11, 800.0),
            (10, 13, 800.0),
            (11, 12, 300.0),
            (12, 13, 300.0),
        ],
    )
}

/// A 20-node ARPANET-like continental mesh (average degree ≈ 3.1), used as
/// the second fixed WAN topology in the dynamic-traffic experiments.
pub fn arpanet_like() -> DiGraph<(), f64> {
    bidirect(
        20,
        &[
            (0, 1, 700.0),
            (0, 2, 1100.0),
            (1, 3, 800.0),
            (2, 3, 950.0),
            (2, 4, 1200.0),
            (3, 5, 1000.0),
            (4, 5, 850.0),
            (4, 6, 900.0),
            (5, 7, 1100.0),
            (6, 7, 700.0),
            (6, 8, 800.0),
            (7, 9, 950.0),
            (8, 9, 600.0),
            (8, 10, 900.0),
            (9, 11, 850.0),
            (10, 11, 700.0),
            (10, 12, 1000.0),
            (11, 13, 900.0),
            (12, 13, 650.0),
            (12, 14, 800.0),
            (13, 15, 750.0),
            (14, 15, 600.0),
            (14, 16, 900.0),
            (15, 17, 850.0),
            (16, 17, 700.0),
            (16, 18, 750.0),
            (17, 19, 800.0),
            (18, 19, 600.0),
            (1, 6, 1500.0),
            (5, 10, 1400.0),
            (9, 14, 1300.0),
            (13, 18, 1350.0),
        ],
    )
}

/// A bidirected ring of `n` nodes (unit lengths scaled by `length`).
/// Rings are the minimal 2-edge-connected topology: exactly one disjoint
/// pair exists per node pair, making them useful worst cases.
pub fn ring(n: usize, length: f64) -> DiGraph<(), f64> {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let links: Vec<(u32, u32, f64)> = (0..n as u32)
        .map(|i| (i, (i + 1) % n as u32, length))
        .collect();
    bidirect(n, &links)
}

/// A `w × h` bidirected grid; `wrap` makes it a torus. Unit edge lengths
/// scaled by `length`.
pub fn grid(w: usize, h: usize, wrap: bool, length: f64) -> DiGraph<(), f64> {
    assert!(w >= 2 && h >= 2, "grid needs at least 2x2");
    let id = |x: usize, y: usize| (y * w + x) as u32;
    let mut links = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                links.push((id(x, y), id(x + 1, y), length));
            } else if wrap && w > 2 {
                links.push((id(x, y), id(0, y), length));
            }
            if y + 1 < h {
                links.push((id(x, y), id(x, y + 1), length));
            } else if wrap && h > 2 {
                links.push((id(x, y), id(x, 0), length));
            }
        }
    }
    bidirect(w * h, &links)
}

/// Waxman random WAN: `n` nodes placed uniformly in a `extent × extent`
/// square; link `(u, v)` exists with probability
/// `alpha * exp(-dist(u, v) / (beta * L))` where `L` is the maximum possible
/// distance. Lengths are Euclidean distances. The classic WAN synthesiser
/// (Waxman 1988).
pub fn waxman(
    n: usize,
    alpha: f64,
    beta: f64,
    extent: f64,
    rng: &mut impl Rng,
) -> DiGraph<(), f64> {
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
        .collect();
    let max_d = (2.0f64).sqrt() * extent;
    let mut links = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let d = ((pts[u].0 - pts[v].0).powi(2) + (pts[u].1 - pts[v].1).powi(2)).sqrt();
            if rng.gen_bool((alpha * (-d / (beta * max_d)).exp()).clamp(0.0, 1.0)) {
                links.push((u as u32, v as u32, d.max(1.0)));
            }
        }
    }
    bidirect(n, &links)
}

/// Erdős–Rényi `G(n, p)` with uniform random lengths in `len_range`.
pub fn erdos_renyi(
    n: usize,
    p: f64,
    len_range: std::ops::Range<f64>,
    rng: &mut impl Rng,
) -> DiGraph<(), f64> {
    let mut links = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                links.push((u as u32, v as u32, rng.gen_range(len_range.clone())));
            }
        }
    }
    bidirect(n, &links)
}

/// Random connected graph with `n` nodes and exactly `m ≥ n - 1` undirected
/// links: a random spanning tree plus random extra links. Guaranteed
/// connected, useful for scaling sweeps with a controlled edge budget.
pub fn random_connected(
    n: usize,
    m: usize,
    len_range: std::ops::Range<f64>,
    rng: &mut impl Rng,
) -> DiGraph<(), f64> {
    assert!(m + 1 >= n, "need at least n-1 links for connectivity");
    let mut links = Vec::new();
    let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    // Random attachment tree over a shuffled order.
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for i in 1..n {
        let u = order[i];
        let v = order[rng.gen_range(0..i)];
        let key = (u.min(v), u.max(v));
        seen.insert(key);
        links.push((key.0, key.1, rng.gen_range(len_range.clone())));
    }
    let max_links = n * (n - 1) / 2;
    let m = m.min(max_links);
    while links.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            links.push((key.0, key.1, rng.gen_range(len_range.clone())));
        }
    }
    bidirect(n, &links)
}

/// A ladder of `k` rungs between `s = 0` and `t = 2k + 1`: every rung offers
/// two parallel corridors, so the number of `s → t` simple paths grows as
/// `2^k`. This is the exhaustive-search stress family for the Lemma 1
/// hardness experiment (exact solvers blow up, the approximation does not).
pub fn ladder(k: usize, length: f64) -> DiGraph<(), f64> {
    assert!(k >= 1);
    // Nodes: 0 = s, then pairs (2i+1, 2i+2) for rung i, then t = 2k+1.
    let n = 2 * k + 2;
    let t = (2 * k + 1) as u32;
    let mut links = Vec::new();
    let mut prev_a = 0u32; // start: both corridors leave s
    let mut prev_b = 0u32;
    for i in 0..k {
        let a = (2 * i + 1) as u32;
        let b = (2 * i + 2) as u32;
        links.push((prev_a, a, length));
        links.push((prev_b, b, length));
        // Cross links make the corridors interchangeable per rung.
        links.push((a, b, length));
        prev_a = a;
        prev_b = b;
    }
    links.push((prev_a, t, length));
    links.push((prev_b, t, length));
    bidirect(n, &links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::{edge_connectivity, is_strongly_connected, is_two_edge_connected};
    use rand::SeedableRng;

    #[test]
    fn nsfnet_shape() {
        let g = nsfnet();
        assert_eq!(g.node_count(), 14);
        assert_eq!(g.edge_count(), 42); // 21 fibres, bidirected
        assert!(is_strongly_connected(&g));
        assert!(
            is_two_edge_connected(&g),
            "NSFNET must support robust routing everywhere"
        );
    }

    #[test]
    fn arpanet_like_shape() {
        let g = arpanet_like();
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 64);
        assert!(is_strongly_connected(&g));
        assert!(is_two_edge_connected(&g));
    }

    #[test]
    fn ring_has_exactly_two_disjoint_routes() {
        let g = ring(6, 100.0);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(edge_connectivity(&g, NodeId(0), NodeId(3)), 2);
    }

    #[test]
    fn grid_and_torus() {
        let g = grid(3, 3, false, 1.0);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 24); // 12 undirected grid links
        assert!(is_strongly_connected(&g));
        let t = grid(3, 3, true, 1.0);
        assert_eq!(t.edge_count(), 36); // 18 torus links
        assert!(is_two_edge_connected(&t));
    }

    #[test]
    fn waxman_is_plausible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let g = waxman(30, 0.9, 0.3, 1000.0, &mut rng);
        assert_eq!(g.node_count(), 30);
        // Edge count is random but should be clearly nonzero at these params.
        assert!(
            g.edge_count() > 30,
            "suspiciously sparse waxman: {}",
            g.edge_count()
        );
        // All weights positive.
        for e in g.edge_ids() {
            assert!(g.weight(e) > 0.0);
        }
    }

    #[test]
    fn random_connected_is_connected_with_exact_budget() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for n in [5usize, 12, 30] {
            let m = n + n / 2;
            let g = random_connected(n, m, 1.0..10.0, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), 2 * m);
            assert!(is_strongly_connected(&g));
        }
    }

    #[test]
    fn ladder_path_count_grows() {
        // Count simple 0 -> t paths by DFS for small k; must be >= 2^k.
        fn count_paths(g: &DiGraph<(), f64>, at: NodeId, t: NodeId, seen: &mut Vec<bool>) -> u64 {
            if at == t {
                return 1;
            }
            let mut total = 0;
            for &e in g.out_edges(at) {
                let v = g.dst(e);
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    total += count_paths(g, v, t, seen);
                    seen[v.index()] = false;
                }
            }
            total
        }
        for k in 1..5usize {
            let g = ladder(k, 1.0);
            let t = NodeId((2 * k + 1) as u32);
            let mut seen = vec![false; g.node_count()];
            seen[0] = true;
            let paths = count_paths(&g, NodeId(0), t, &mut seen);
            assert!(
                paths >= 1 << k,
                "ladder k={k} has only {paths} simple paths"
            );
        }
    }

    #[test]
    fn bidirect_builds_antiparallel_pairs() {
        let g = bidirect(2, &[(0, 1, 7.0)]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.find_edge(NodeId(0), NodeId(1)).is_some());
        assert!(g.find_edge(NodeId(1), NodeId(0)).is_some());
    }
}
