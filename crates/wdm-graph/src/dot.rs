//! Graphviz (DOT) export, for documentation and debugging of the auxiliary
//! graph constructions.

use crate::DiGraph;
use std::fmt::Write;

/// Renders `g` as a DOT digraph. `node_label` and `edge_label` produce the
/// display strings (return an empty string for no label).
pub fn to_dot<N, E>(
    g: &DiGraph<N, E>,
    name: &str,
    mut node_label: impl FnMut(crate::NodeId, &N) -> String,
    mut edge_label: impl FnMut(crate::EdgeId, &E) -> String,
) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    for v in g.node_ids() {
        let label = node_label(v, g.node(v));
        if label.is_empty() {
            writeln!(out, "  n{};", v.0).unwrap();
        } else {
            writeln!(out, "  n{} [label=\"{}\"];", v.0, escape(&label)).unwrap();
        }
    }
    for (e, u, v, data) in g.edges_iter() {
        let label = edge_label(e, data);
        if label.is_empty() {
            writeln!(out, "  n{} -> n{};", u.0, v.0).unwrap();
        } else {
            writeln!(
                out,
                "  n{} -> n{} [label=\"{}\"];",
                u.0,
                v.0,
                escape(&label)
            )
            .unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// DOT export of a plain weighted graph with weights as edge labels.
pub fn weighted_to_dot(g: &DiGraph<(), f64>, name: &str) -> String {
    to_dot(g, name, |v, _| format!("{}", v.0), |_, w| format!("{w:.1}"))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let g = DiGraph::weighted(2, &[(0, 1, 2.5)]);
        let dot = weighted_to_dot(&g, "g");
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.contains("n0 [label=\"0\"];"));
        assert!(dot.contains("n0 -> n1 [label=\"2.5\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn escapes_quotes() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        g.add_node("say \"hi\"");
        let dot = to_dot(&g, "q", |_, n| n.to_string(), |_, _| String::new());
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
