//! Reusable search buffers for the routing hot path.
//!
//! Every Dijkstra/Suurballe call in the baseline implementation allocates its
//! working state (`dist`/`pred` vectors, the heap, the Suurballe residual
//! graph and walk lists) from scratch. [`SearchArena`] owns all of that state
//! once and re-serves it across calls:
//!
//! * `dist`/`pred` are *generation-stamped*: a slot is valid only if its
//!   stamp equals the current generation, so "resetting" the arrays is a
//!   single counter increment instead of an `O(n)` fill;
//! * the d-ary heap is emptied with [`DaryHeap::clear`] (`O(len)` over the
//!   few leftover slots, not over capacity);
//! * the Suurballe residual graph keeps its node set and the capacity of its
//!   adjacency lists via [`DiGraph::clear_edges`];
//! * edge masks are generation-stamped like the distance arrays.
//!
//! The arena variants run the *same operation sequence* as their allocating
//! counterparts ([`dijkstra_generic`](crate::dijkstra::dijkstra_generic),
//! [`edge_disjoint_pair_filtered`](crate::suurballe::edge_disjoint_pair_filtered)):
//! identical relaxations in identical order with identical tie-breaking, so
//! results are bit-for-bit equal — the allocating functions now delegate
//! here with a fresh arena.

use crate::{DiGraph, EdgeId, NodeId, Path};
use wdm_heap::{DaryHeap, MinQueue};

/// A generation-stamped shortest-path tree buffer (`dist` + `pred`).
#[derive(Debug, Clone)]
struct TreeBank {
    dist: Vec<f64>,
    pred: Vec<Option<EdgeId>>,
    stamp: Vec<u64>,
    gen: u64,
    source: NodeId,
}

impl Default for TreeBank {
    fn default() -> Self {
        Self {
            dist: Vec::new(),
            pred: Vec::new(),
            stamp: Vec::new(),
            gen: 0,
            source: NodeId::from(0),
        }
    }
}

impl TreeBank {
    /// Starts a new search over `n` nodes: grows the buffers if needed and
    /// invalidates all previous entries by bumping the generation. Returns
    /// whether the buffers grew (an allocation event).
    fn begin(&mut self, n: usize, source: NodeId) -> bool {
        let grew = self.stamp.len() < n;
        if grew {
            self.dist.resize(n, f64::INFINITY);
            self.pred.resize(n, None);
            self.stamp.resize(n, 0);
        }
        self.gen += 1;
        self.source = source;
        grew
    }

    #[inline]
    fn dist(&self, v: usize) -> f64 {
        if self.stamp[v] == self.gen {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn pred(&self, v: usize) -> Option<EdgeId> {
        if self.stamp[v] == self.gen {
            self.pred[v]
        } else {
            None
        }
    }

    #[inline]
    fn set(&mut self, v: usize, d: f64, p: Option<EdgeId>) {
        self.dist[v] = d;
        self.pred[v] = p;
        self.stamp[v] = self.gen;
    }

    #[inline]
    fn reached(&self, v: NodeId) -> bool {
        self.dist(v.index()).is_finite()
    }

    /// Mirrors [`crate::dijkstra::ShortestPathTree::path_to`].
    fn path_to<N, E>(&self, g: &DiGraph<N, E>, t: NodeId) -> Option<Path> {
        if !self.reached(t) {
            return None;
        }
        let mut edges = Vec::new();
        let mut at = t;
        while at != self.source {
            let e = self
                .pred(at.index())
                .expect("reached non-source node must have a pred edge");
            edges.push(e);
            at = g.src(e);
        }
        edges.reverse();
        Some(Path {
            src: self.source,
            dst: t,
            edges,
        })
    }
}

/// A generation-stamped boolean edge set.
#[derive(Debug, Clone, Default)]
struct EdgeMask {
    bit: Vec<bool>,
    stamp: Vec<u64>,
    gen: u64,
}

impl EdgeMask {
    /// Starts a new mask over `m` edges; returns whether the buffers grew.
    fn begin(&mut self, m: usize) -> bool {
        let grew = self.stamp.len() < m;
        if grew {
            self.bit.resize(m, false);
            self.stamp.resize(m, 0);
        }
        self.gen += 1;
        grew
    }

    #[inline]
    fn get(&self, e: usize) -> bool {
        self.stamp[e] == self.gen && self.bit[e]
    }

    #[inline]
    fn set(&mut self, e: usize, value: bool) {
        self.bit[e] = value;
        self.stamp[e] = self.gen;
    }
}

/// Arc of the Suurballe residual graph (see `suurballe.rs`); lives here so
/// the arena can own a reusable residual graph.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResidArc {
    /// Reduced (non-negative) cost.
    pub(crate) reduced: f64,
    /// Originating edge in the input graph.
    pub(crate) orig: EdgeId,
    /// Whether this arc traverses `orig` backwards (a P1 reversal).
    pub(crate) reversed: bool,
}

/// Owns every buffer a Dijkstra or Suurballe run needs, so steady-state
/// searches perform no heap allocation beyond their output paths.
///
/// One arena serves any number of sequential searches over graphs of any
/// (varying) size; buffers only grow. Results are identical to the
/// allocating entry points.
#[derive(Debug, Clone)]
pub struct SearchArena {
    /// Pass-1 tree (kept alive through pass 2, which reads its distances).
    t1: TreeBank,
    /// Pass-2 tree over the residual graph.
    t2: TreeBank,
    heap: DaryHeap<f64, 4>,
    mask: EdgeMask,
    resid: DiGraph<(), ResidArc>,
    out_lists: Vec<Vec<EdgeId>>,
    /// Buffer-growth events since construction (telemetry: a steady-state
    /// arena stops allocating, so this should plateau after warm-up).
    allocs: u64,
}

impl Default for SearchArena {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchArena {
    pub fn new() -> Self {
        Self {
            t1: TreeBank::default(),
            t2: TreeBank::default(),
            heap: DaryHeap::with_capacity(0),
            mask: EdgeMask::default(),
            resid: DiGraph::new(),
            out_lists: Vec::new(),
            allocs: 0,
        }
    }

    /// Cumulative buffer-growth events (allocations) across all searches
    /// served by this arena.
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Arena-backed [`crate::suurballe::edge_disjoint_pair_filtered`]:
    /// minimum-cost pair of
    /// edge-disjoint `s -> t` paths over edges accepted by `filter`. Same
    /// algorithm, same tie-breaking, same results; only the working memory
    /// is reused.
    pub fn edge_disjoint_pair<N, E>(
        &mut self,
        g: &DiGraph<N, E>,
        s: NodeId,
        t: NodeId,
        cost: impl FnMut(EdgeId) -> f64,
        filter: impl FnMut(EdgeId) -> bool,
    ) -> Option<crate::suurballe::DisjointPair> {
        self.edge_disjoint_pair_staged(g, s, t, cost, filter, || {})
    }

    /// [`SearchArena::edge_disjoint_pair`] with a stage boundary hook:
    /// `pass1_done` fires once after the pass-1 tree and P1 extraction,
    /// immediately before the residual graph is built — the natural
    /// observation point for per-pass timing. Results are identical.
    pub fn edge_disjoint_pair_staged<N, E>(
        &mut self,
        g: &DiGraph<N, E>,
        s: NodeId,
        t: NodeId,
        mut cost: impl FnMut(EdgeId) -> f64,
        mut filter: impl FnMut(EdgeId) -> bool,
        mut pass1_done: impl FnMut(),
    ) -> Option<crate::suurballe::DisjointPair> {
        if s == t {
            return None;
        }
        // Pass 1: shortest path tree from s.
        self.allocs += dijkstra_into(
            &mut self.t1,
            &mut self.heap,
            g,
            s,
            None,
            &mut cost,
            &mut filter,
        ) as u64;
        if !self.t1.reached(t) {
            return None;
        }
        let p1 = self.t1.path_to(g, t).expect("t is reached");
        self.allocs += self.mask.begin(g.edge_count()) as u64;
        for &e in &p1.edges {
            self.mask.set(e.index(), true);
        }
        pass1_done();

        // Pass 2: residual graph with reduced costs.
        let n = g.node_count();
        self.resid.clear_edges();
        if self.resid.node_count() < n {
            self.allocs += 1;
            while self.resid.node_count() < n {
                self.resid.add_node(());
            }
        }
        for e in g.edge_ids() {
            if !filter(e) {
                continue;
            }
            let (u, v) = g.endpoints(e);
            if self.mask.get(e.index()) {
                // Tight tree edge: zero-cost reversal.
                self.resid.add_edge(
                    v,
                    u,
                    ResidArc {
                        reduced: 0.0,
                        orig: e,
                        reversed: true,
                    },
                );
            } else if self.t1.reached(u) && self.t1.reached(v) {
                let red = cost(e) + self.t1.dist(u.index()) - self.t1.dist(v.index());
                // Floating-point noise can push a tight edge to -epsilon.
                let red = red.max(0.0);
                self.resid.add_edge(
                    u,
                    v,
                    ResidArc {
                        reduced: red,
                        orig: e,
                        reversed: false,
                    },
                );
            }
            // Edges touching unreachable nodes cannot lie on any s->t path.
        }
        let (t2, resid) = (&mut self.t2, &self.resid);
        let grew = dijkstra_into(
            t2,
            &mut self.heap,
            resid,
            s,
            Some(t),
            |e| resid.edge(e).reduced,
            |_| true,
        );
        self.allocs += grew as u64;
        if !self.t2.reached(t) {
            return None;
        }
        let p2 = self.t2.path_to(&self.resid, t).expect("t is reached");

        // Interleaving removal: cancel (e, reverse(e)) pairs. The mask
        // currently holds P1's edges and becomes the surviving set.
        for &re in &p2.edges {
            let arc = self.resid.edge(re);
            if arc.reversed {
                debug_assert!(self.mask.get(arc.orig.index()), "reversal of non-P1 edge");
                self.mask.set(arc.orig.index(), false);
            } else {
                debug_assert!(
                    !self.mask.get(arc.orig.index()),
                    "forward arc duplicates P1 edge"
                );
                self.mask.set(arc.orig.index(), true);
            }
        }

        // Decompose the surviving edge set into two s->t paths by walking.
        if self.out_lists.len() < n {
            self.out_lists.resize_with(n, Vec::new);
            self.allocs += 1;
        }
        let mut total = 0.0;
        for e in g.edge_ids() {
            if self.mask.get(e.index()) {
                self.out_lists[g.src(e).index()].push(e);
                total += cost(e);
            }
        }
        let out_lists = &mut self.out_lists;
        let mut walk = || -> Path {
            let mut edges = Vec::new();
            let mut at = s;
            while at != t {
                let e = out_lists[at.index()]
                    .pop()
                    .expect("balanced edge set cannot strand a walk before t");
                edges.push(e);
                at = g.dst(e);
            }
            Path {
                src: s,
                dst: t,
                edges,
            }
        };
        let a = walk();
        let b = walk();
        debug_assert!(
            self.out_lists.iter().all(|l| l.is_empty()),
            "leftover edges after extracting two paths (zero-cost cycle?)"
        );
        // Defensive in release builds: a zero-cost cycle must not leak edges
        // into the next search served by this arena.
        for l in &mut self.out_lists {
            l.clear();
        }
        let (first, second) = if a.cost(&mut cost) <= b.cost(&mut cost) {
            (a, b)
        } else {
            (b, a)
        };
        debug_assert!(!first.shares_edge_with(&second));
        Some(crate::suurballe::DisjointPair {
            paths: [first, second],
            total_cost: total,
        })
    }
}

/// Dijkstra into a [`TreeBank`]: the exact relaxation loop of
/// [`dijkstra_generic`](crate::dijkstra::dijkstra_generic) with the default
/// 4-ary heap, writing into reused buffers. Returns whether the tree bank
/// had to grow (an allocation event).
fn dijkstra_into<N, E>(
    bank: &mut TreeBank,
    heap: &mut DaryHeap<f64, 4>,
    g: &DiGraph<N, E>,
    source: NodeId,
    target: Option<NodeId>,
    mut cost: impl FnMut(EdgeId) -> f64,
    mut filter: impl FnMut(EdgeId) -> bool,
) -> bool {
    let n = g.node_count();
    let grew = bank.begin(n, source);
    heap.ensure_capacity(n);
    heap.clear();
    bank.set(source.index(), 0.0, None);
    heap.insert(source.index(), 0.0);
    while let Some((u_idx, du)) = heap.pop_min() {
        let u = NodeId::from(u_idx);
        if Some(u) == target {
            break;
        }
        for &e in g.out_edges(u) {
            if !filter(e) {
                continue;
            }
            let w = cost(e);
            debug_assert!(w >= 0.0, "negative arc weight {w} on {e:?}");
            let v = g.dst(e);
            let nd = du + w;
            if nd < bank.dist(v.index()) {
                bank.set(v.index(), nd, Some(e));
                heap.insert_or_decrease(v.index(), nd);
            }
        }
    }
    grew
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suurballe::edge_disjoint_pair_filtered;
    use crate::topology;
    use rand::{Rng, SeedableRng};

    fn random_graph(rng: &mut impl Rng, n: usize, p: f64) -> DiGraph<(), f64> {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        for _ in 0..n {
            g.add_node(());
        }
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(p) {
                    g.add_edge(
                        NodeId::from(u),
                        NodeId::from(v),
                        (rng.gen_range(1..=20) as f64) / 2.0,
                    );
                }
            }
        }
        g
    }

    /// The arena variant must be indistinguishable from the allocating one,
    /// including exact path choice among cost ties.
    #[test]
    fn arena_pair_matches_allocating_pair() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5EED);
        let mut arena = SearchArena::new();
        for trial in 0..200 {
            let n = rng.gen_range(2..14);
            let g = random_graph(&mut rng, n, 0.3);
            let s = NodeId::from(rng.gen_range(0..n));
            let t = NodeId::from(rng.gen_range(0..n));
            let banned = EdgeId::from(rng.gen_range(0..g.edge_count().max(1)));
            let filter = |e: EdgeId| e != banned;
            let base = edge_disjoint_pair_filtered(&g, s, t, |e| g.weight(e), filter);
            let fast = arena.edge_disjoint_pair(&g, s, t, |e| g.weight(e), filter);
            match (base, fast) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits(), "t{trial}");
                    assert_eq!(a.paths[0].edges, b.paths[0].edges, "trial {trial}");
                    assert_eq!(a.paths[1].edges, b.paths[1].edges, "trial {trial}");
                }
                (a, b) => panic!("trial {trial}: feasibility disagrees ({a:?} vs {b:?})"),
            }
        }
    }

    /// A warmed-up arena serves same-size searches without allocating.
    #[test]
    fn alloc_events_plateau_after_warmup() {
        let mut arena = SearchArena::new();
        let g = topology::ring(24, 1.0);
        arena
            .edge_disjoint_pair(&g, NodeId(0), NodeId(12), |e| g.weight(e), |_| true)
            .unwrap();
        let after_warmup = arena.alloc_events();
        assert!(after_warmup > 0, "first search must grow the buffers");
        for _ in 0..10 {
            arena
                .edge_disjoint_pair(&g, NodeId(0), NodeId(12), |e| g.weight(e), |_| true)
                .unwrap();
        }
        assert_eq!(arena.alloc_events(), after_warmup);
    }

    /// Reuse across differently-sized graphs must not leak state.
    #[test]
    fn arena_survives_shrinking_and_growing_graphs() {
        let mut arena = SearchArena::new();
        for &n in &[30usize, 4, 50, 3, 12] {
            let g = topology::ring(n, 1.0);
            let pair = arena
                .edge_disjoint_pair(
                    &g,
                    NodeId(0),
                    NodeId::from(n / 2),
                    |e| g.weight(e),
                    |_| true,
                )
                .expect("ring always has two disjoint paths");
            assert!(pair.is_edge_disjoint());
            let base = edge_disjoint_pair_filtered(
                &g,
                NodeId(0),
                NodeId::from(n / 2),
                |e| g.weight(e),
                |_| true,
            )
            .unwrap();
            assert_eq!(pair.total_cost, base.total_cost);
        }
    }
}
