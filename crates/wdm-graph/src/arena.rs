//! Reusable search buffers for the routing hot path.
//!
//! Every Dijkstra/Suurballe call in the baseline implementation allocates its
//! working state (`dist`/`pred` vectors, the heap, the Suurballe residual
//! graph and walk lists) from scratch. [`SearchArena`] owns all of that state
//! once and re-serves it across calls:
//!
//! * `dist`/`pred` are *generation-stamped*: a slot is valid only if its
//!   stamp equals the current generation, so "resetting" the arrays is a
//!   single counter increment instead of an `O(n)` fill;
//! * the d-ary heap is emptied with [`DaryHeap::clear`] (`O(len)` over the
//!   few leftover slots, not over capacity);
//! * the Suurballe residual graph keeps its node set and the capacity of its
//!   adjacency lists via [`DiGraph::clear_edges`];
//! * edge masks are generation-stamped like the distance arrays.
//!
//! The arena variants run the *same operation sequence* as their allocating
//! counterparts ([`dijkstra_generic`](crate::dijkstra::dijkstra_generic),
//! [`edge_disjoint_pair_filtered`](crate::suurballe::edge_disjoint_pair_filtered)):
//! identical relaxations in identical order with identical tie-breaking, so
//! results are bit-for-bit equal — the allocating functions now delegate
//! here with a fresh arena.

use crate::{DiGraph, EdgeId, NodeId, Path};
use wdm_heap::{BucketQueue, DaryHeap, MinQueue};

/// Largest bucket span the flat integer paths will allocate (number of
/// buckets the monotone queue keeps live). Searches whose key window exceeds
/// this fall back to the d-ary heap — results are identical either way, only
/// the queue engine changes.
const BUCKET_SPAN_CAP: u64 = 1 << 18;

/// A generation-stamped shortest-path tree buffer (`dist` + `pred`).
#[derive(Debug, Clone)]
struct TreeBank {
    dist: Vec<f64>,
    pred: Vec<Option<EdgeId>>,
    stamp: Vec<u64>,
    gen: u64,
    source: NodeId,
}

impl Default for TreeBank {
    fn default() -> Self {
        Self {
            dist: Vec::new(),
            pred: Vec::new(),
            stamp: Vec::new(),
            gen: 0,
            source: NodeId::from(0),
        }
    }
}

impl TreeBank {
    /// Starts a new search over `n` nodes: grows the buffers if needed and
    /// invalidates all previous entries by bumping the generation. Returns
    /// whether the buffers grew (an allocation event).
    fn begin(&mut self, n: usize, source: NodeId) -> bool {
        let grew = self.stamp.len() < n;
        if grew {
            self.dist.resize(n, f64::INFINITY);
            self.pred.resize(n, None);
            self.stamp.resize(n, 0);
        }
        self.gen += 1;
        self.source = source;
        grew
    }

    #[inline]
    fn dist(&self, v: usize) -> f64 {
        if self.stamp[v] == self.gen {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn pred(&self, v: usize) -> Option<EdgeId> {
        if self.stamp[v] == self.gen {
            self.pred[v]
        } else {
            None
        }
    }

    #[inline]
    fn set(&mut self, v: usize, d: f64, p: Option<EdgeId>) {
        self.dist[v] = d;
        self.pred[v] = p;
        self.stamp[v] = self.gen;
    }

    #[inline]
    fn reached(&self, v: NodeId) -> bool {
        self.dist(v.index()).is_finite()
    }

    /// Mirrors [`crate::dijkstra::ShortestPathTree::path_to`].
    fn path_to<N, E>(&self, g: &DiGraph<N, E>, t: NodeId) -> Option<Path> {
        if !self.reached(t) {
            return None;
        }
        let mut edges = Vec::new();
        let mut at = t;
        while at != self.source {
            let e = self
                .pred(at.index())
                .expect("reached non-source node must have a pred edge");
            edges.push(e);
            at = g.src(e);
        }
        edges.reverse();
        Some(Path {
            src: self.source,
            dst: t,
            edges,
        })
    }

    /// Flat-array variant of [`TreeBank::path_to`]: predecessor arcs are
    /// indices into a caller-provided per-arc tail array instead of a
    /// [`DiGraph`].
    fn path_to_flat(&self, tail_of: &[u32], t: NodeId) -> Option<Path> {
        if !self.reached(t) {
            return None;
        }
        let mut edges = Vec::new();
        let mut at = t;
        while at != self.source {
            let e = self
                .pred(at.index())
                .expect("reached non-source node must have a pred edge");
            edges.push(e);
            at = NodeId::from(tail_of[e.index()] as usize);
        }
        edges.reverse();
        Some(Path {
            src: self.source,
            dst: t,
            edges,
        })
    }
}

/// A borrowed CSR-flattened view of a search graph: contiguous offset/head
/// arrays for traversal plus parallel per-arc attribute arrays. This is the
/// layout the incremental auxiliary-graph engine maintains; the flat search
/// entry points traverse it without touching a [`DiGraph`].
///
/// Layout contract (debug-asserted by the search entry points):
/// * `offsets.len() == node_count + 1`; slot range of node `v` is
///   `offsets[v]..offsets[v + 1]`;
/// * `heads[slot]` is the destination node of the arc occupying `slot`, and
///   `slot_arc[slot]` its arc id;
/// * per-node slots appear in ascending arc-id order (the order
///   [`DiGraph::out_edges`] yields for a graph built by pushing arcs in id
///   order), so relaxation order — and therefore every tie — matches the
///   pointer-based search exactly;
/// * `src`/`dst`/`weight`/`enabled` are indexed by arc id.
#[derive(Debug, Clone, Copy)]
pub struct FlatView<'a> {
    /// CSR row offsets (`len == node_count + 1`).
    pub offsets: &'a [u32],
    /// Destination node per CSR slot.
    pub heads: &'a [u32],
    /// Arc id per CSR slot.
    pub slot_arc: &'a [u32],
    /// CSR slot per arc id (inverse of `slot_arc`).
    pub arc_slot: &'a [u32],
    /// Tail node per arc id.
    pub src: &'a [u32],
    /// Head node per arc id.
    pub dst: &'a [u32],
    /// Non-negative weight per arc id (cost units).
    pub weight: &'a [f64],
    /// Participation flag per arc id; disabled arcs are skipped everywhere.
    pub enabled: &'a [bool],
    /// Slot-ordered mirror of `weight`: the relaxation loops read weights
    /// sequentially in slot order instead of hopping through arc ids.
    pub slot_weight: &'a [f64],
    /// Slot-ordered mirror of `enabled`.
    pub slot_enabled: &'a [bool],
}

impl FlatView<'_> {
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    pub fn arc_count(&self) -> usize {
        self.weight.len()
    }

    #[inline]
    fn out_range(&self, v: usize) -> core::ops::Range<usize> {
        self.offsets[v] as usize..self.offsets[v + 1] as usize
    }
}

/// Integer certification of a [`FlatView`]'s weights: every arc weight is
/// exactly `key[a] / 2^scale_shift` in f64. Under this contract the bucket
/// searches below are *bit-identical* to the f64 d-ary searches: integer key
/// order is isomorphic to f64 distance order, partial sums stay below 2^53
/// (guarded), and both heap engines break key ties by smallest node id.
#[derive(Debug, Clone, Copy)]
pub struct IntWeights<'a> {
    /// Integer keys, *slot-ordered* (parallel to [`FlatView::heads`]);
    /// `key[slot] as f64 / 2f64.powi(scale_shift)` must equal
    /// `slot_weight[slot]` bit-exactly for every *enabled* slot.
    pub key: &'a [u64],
    /// Fixed-point scale: weights are multiples of `2^-scale_shift`.
    pub scale_shift: u32,
    /// Upper bound on `key[a]` over all enabled arcs (need not be tight).
    pub max_key: u64,
}

/// Johnson-style vertex potentials carried across searches (key units).
///
/// Feasibility invariant: `pi[v] <= pi[u] + key(a)` for every *enabled* arc
/// `a: u -> v`, so reduced keys `key(a) + pi[u] - pi[v]` are non-negative.
/// `max` is an upper bound on every entry (it sizes the bucket span:
/// reduced keys never exceed `max_key + max`). The owner (the aux engine)
/// must repair or reset the potentials whenever an arc weight decreases or a
/// disabled arc becomes enabled; the all-zero vector is always feasible.
#[derive(Debug, Clone, Default)]
pub struct Potentials {
    /// Per-node potential in key units.
    pub pi: Vec<u64>,
    /// Upper bound on `pi` entries.
    pub max: u64,
}

impl Potentials {
    /// Resets to the all-zero (always feasible) potential over `n` nodes.
    pub fn reset(&mut self, n: usize) {
        self.pi.clear();
        self.pi.resize(n, 0);
        self.max = 0;
    }
}

/// A generation-stamped boolean edge set.
#[derive(Debug, Clone, Default)]
struct EdgeMask {
    bit: Vec<bool>,
    stamp: Vec<u64>,
    gen: u64,
}

impl EdgeMask {
    /// Starts a new mask over `m` edges; returns whether the buffers grew.
    fn begin(&mut self, m: usize) -> bool {
        let grew = self.stamp.len() < m;
        if grew {
            self.bit.resize(m, false);
            self.stamp.resize(m, 0);
        }
        self.gen += 1;
        grew
    }

    #[inline]
    fn get(&self, e: usize) -> bool {
        self.stamp[e] == self.gen && self.bit[e]
    }

    #[inline]
    fn set(&mut self, e: usize, value: bool) {
        self.bit[e] = value;
        self.stamp[e] = self.gen;
    }
}

/// Arc of the Suurballe residual graph (see `suurballe.rs`); lives here so
/// the arena can own a reusable residual graph.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResidArc {
    /// Reduced (non-negative) cost.
    pub(crate) reduced: f64,
    /// Originating edge in the input graph.
    pub(crate) orig: EdgeId,
    /// Whether this arc traverses `orig` backwards (a P1 reversal).
    pub(crate) reversed: bool,
}

/// Owns every buffer a Dijkstra or Suurballe run needs, so steady-state
/// searches perform no heap allocation beyond their output paths.
///
/// One arena serves any number of sequential searches over graphs of any
/// (varying) size; buffers only grow. Results are identical to the
/// allocating entry points.
#[derive(Debug, Clone)]
pub struct SearchArena {
    /// Pass-1 tree (kept alive through pass 2, which reads its distances).
    t1: TreeBank,
    /// Pass-2 tree over the residual graph.
    t2: TreeBank,
    heap: DaryHeap<f64, 4>,
    bucket: BucketQueue,
    mask: EdgeMask,
    /// Slot-indexed twin of `mask` for the flat pass-2 scan (sequential
    /// reads); holds the same P1 edges, addressed by CSR slot.
    mask_slot: EdgeMask,
    resid: DiGraph<(), ResidArc>,
    out_lists: Vec<Vec<EdgeId>>,
    /// Per-node reversed residual arc for the flat pass 2 (`u32::MAX` =
    /// none). P1 is a simple path, so a node has at most one masked
    /// in-arc — i.e. at most one reversed residual arc rooted at it.
    /// Filled from the P1 edges before pass 2 and cleared right after.
    rev_at: Vec<u32>,
    /// Buffer-growth events since construction (telemetry: a steady-state
    /// arena stops allocating, so this should plateau after warm-up).
    allocs: u64,
}

impl Default for SearchArena {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchArena {
    pub fn new() -> Self {
        Self {
            t1: TreeBank::default(),
            t2: TreeBank::default(),
            heap: DaryHeap::with_capacity(0),
            bucket: BucketQueue::new(0, 1),
            mask: EdgeMask::default(),
            mask_slot: EdgeMask::default(),
            resid: DiGraph::new(),
            out_lists: Vec::new(),
            rev_at: Vec::new(),
            allocs: 0,
        }
    }

    /// Cumulative buffer-growth events (allocations) across all searches
    /// served by this arena.
    pub fn alloc_events(&self) -> u64 {
        self.allocs
    }

    /// Arena-backed [`crate::suurballe::edge_disjoint_pair_filtered`]:
    /// minimum-cost pair of
    /// edge-disjoint `s -> t` paths over edges accepted by `filter`. Same
    /// algorithm, same tie-breaking, same results; only the working memory
    /// is reused.
    pub fn edge_disjoint_pair<N, E>(
        &mut self,
        g: &DiGraph<N, E>,
        s: NodeId,
        t: NodeId,
        cost: impl FnMut(EdgeId) -> f64,
        filter: impl FnMut(EdgeId) -> bool,
    ) -> Option<crate::suurballe::DisjointPair> {
        self.edge_disjoint_pair_staged(g, s, t, cost, filter, || {})
    }

    /// [`SearchArena::edge_disjoint_pair`] with a stage boundary hook:
    /// `pass1_done` fires once after the pass-1 tree and P1 extraction,
    /// immediately before the residual graph is built — the natural
    /// observation point for per-pass timing. Results are identical.
    pub fn edge_disjoint_pair_staged<N, E>(
        &mut self,
        g: &DiGraph<N, E>,
        s: NodeId,
        t: NodeId,
        mut cost: impl FnMut(EdgeId) -> f64,
        mut filter: impl FnMut(EdgeId) -> bool,
        mut pass1_done: impl FnMut(),
    ) -> Option<crate::suurballe::DisjointPair> {
        if s == t {
            return None;
        }
        // Pass 1: shortest path tree from s.
        self.allocs += dijkstra_into(
            &mut self.t1,
            &mut self.heap,
            g,
            s,
            None,
            &mut cost,
            &mut filter,
        ) as u64;
        if !self.t1.reached(t) {
            return None;
        }
        let p1 = self.t1.path_to(g, t).expect("t is reached");
        self.allocs += self.mask.begin(g.edge_count()) as u64;
        for &e in &p1.edges {
            self.mask.set(e.index(), true);
        }
        pass1_done();

        // Pass 2: residual graph with reduced costs.
        let n = g.node_count();
        self.resid.clear_edges();
        if self.resid.node_count() < n {
            self.allocs += 1;
            while self.resid.node_count() < n {
                self.resid.add_node(());
            }
        }
        for e in g.edge_ids() {
            if !filter(e) {
                continue;
            }
            let (u, v) = g.endpoints(e);
            if self.mask.get(e.index()) {
                // Tight tree edge: zero-cost reversal.
                self.resid.add_edge(
                    v,
                    u,
                    ResidArc {
                        reduced: 0.0,
                        orig: e,
                        reversed: true,
                    },
                );
            } else if self.t1.reached(u) && self.t1.reached(v) {
                let red = cost(e) + self.t1.dist(u.index()) - self.t1.dist(v.index());
                // Floating-point noise can push a tight edge to -epsilon.
                let red = red.max(0.0);
                self.resid.add_edge(
                    u,
                    v,
                    ResidArc {
                        reduced: red,
                        orig: e,
                        reversed: false,
                    },
                );
            }
            // Edges touching unreachable nodes cannot lie on any s->t path.
        }
        let (t2, resid) = (&mut self.t2, &self.resid);
        let grew = dijkstra_into(
            t2,
            &mut self.heap,
            resid,
            s,
            Some(t),
            |e| resid.edge(e).reduced,
            |_| true,
        );
        self.allocs += grew as u64;
        if !self.t2.reached(t) {
            return None;
        }
        let p2 = self.t2.path_to(&self.resid, t).expect("t is reached");

        // Interleaving removal: cancel (e, reverse(e)) pairs. The mask
        // currently holds P1's edges and becomes the surviving set.
        for &re in &p2.edges {
            let arc = self.resid.edge(re);
            if arc.reversed {
                debug_assert!(self.mask.get(arc.orig.index()), "reversal of non-P1 edge");
                self.mask.set(arc.orig.index(), false);
            } else {
                debug_assert!(
                    !self.mask.get(arc.orig.index()),
                    "forward arc duplicates P1 edge"
                );
                self.mask.set(arc.orig.index(), true);
            }
        }

        // Decompose the surviving edge set into two s->t paths by walking.
        if self.out_lists.len() < n {
            self.out_lists.resize_with(n, Vec::new);
            self.allocs += 1;
        }
        let mut total = 0.0;
        for e in g.edge_ids() {
            if self.mask.get(e.index()) {
                self.out_lists[g.src(e).index()].push(e);
                total += cost(e);
            }
        }
        let out_lists = &mut self.out_lists;
        let mut walk = || -> Path {
            let mut edges = Vec::new();
            let mut at = s;
            while at != t {
                let e = out_lists[at.index()]
                    .pop()
                    .expect("balanced edge set cannot strand a walk before t");
                edges.push(e);
                at = g.dst(e);
            }
            Path {
                src: s,
                dst: t,
                edges,
            }
        };
        let a = walk();
        let b = walk();
        debug_assert!(
            self.out_lists.iter().all(|l| l.is_empty()),
            "leftover edges after extracting two paths (zero-cost cycle?)"
        );
        // Defensive in release builds: a zero-cost cycle must not leak edges
        // into the next search served by this arena.
        for l in &mut self.out_lists {
            l.clear();
        }
        let (first, second) = if a.cost(&mut cost) <= b.cost(&mut cost) {
            (a, b)
        } else {
            (b, a)
        };
        debug_assert!(!first.shares_edge_with(&second));
        Some(crate::suurballe::DisjointPair {
            paths: [first, second],
            total_cost: total,
        })
    }

    /// [`SearchArena::edge_disjoint_pair_staged`] over a [`FlatView`]:
    /// identical algorithm, identical tie-breaking, bit-identical results —
    /// but every traversal runs over contiguous CSR arrays instead of
    /// pointer-chased adjacency lists, and the Suurballe residual graph is
    /// rebuilt by counting sort into flat arrays.
    pub fn edge_disjoint_pair_flat(
        &mut self,
        g: &FlatView<'_>,
        s: NodeId,
        t: NodeId,
        pass1_done: impl FnMut(),
    ) -> Option<crate::suurballe::DisjointPair> {
        self.flat_pair_impl(g, None, None, s, t, pass1_done)
    }

    /// [`SearchArena::edge_disjoint_pair_flat`] under certified integer
    /// weights: both Dijkstra passes run on the monotone bucket queue with
    /// `u64` keys (falling back to the d-ary heap when a pass's key window
    /// exceeds `BUCKET_SPAN_CAP`). Results are bit-identical to the f64
    /// path when `warm` is `None` or holds all-zero potentials.
    ///
    /// With `warm` potentials, pass 1 runs on reduced keys
    /// `key(a) + pi[u] - pi[v]` — near-zero along previously-shortest paths,
    /// which keeps the bucket scan short — and the finished tree is adopted
    /// as the next search's potentials (unreached nodes take the running
    /// max, which is feasible because no enabled arc can lead from a reached
    /// to an unreached node). Warm starts change which equal-cost optimum is
    /// selected, but never the optimal total cost.
    pub fn edge_disjoint_pair_flat_int(
        &mut self,
        g: &FlatView<'_>,
        int: &IntWeights<'_>,
        warm: Option<&mut Potentials>,
        s: NodeId,
        t: NodeId,
        pass1_done: impl FnMut(),
    ) -> Option<crate::suurballe::DisjointPair> {
        self.flat_pair_impl(g, Some(int), warm, s, t, pass1_done)
    }

    fn flat_pair_impl(
        &mut self,
        g: &FlatView<'_>,
        int: Option<&IntWeights<'_>>,
        mut warm: Option<&mut Potentials>,
        s: NodeId,
        t: NodeId,
        mut pass1_done: impl FnMut(),
    ) -> Option<crate::suurballe::DisjointPair> {
        let n = g.node_count();
        let m = g.arc_count();
        debug_assert_eq!(g.heads.len(), g.slot_arc.len());
        debug_assert!(g.src.len() == m && g.dst.len() == m && g.enabled.len() == m);
        debug_assert!(
            g.arc_slot.len() == m && g.slot_weight.len() == m && g.slot_enabled.len() == m
        );
        debug_assert!(s.index() < n && t.index() < n);
        if s == t {
            return None;
        }

        // ---- Pass 1: shortest-path tree from s over enabled arcs. ----
        // Max finite tree distance in key units (int paths only): bounds
        // the pass-2 reduced costs, sizing its bucket span.
        let mut mx_key = 0u64;
        match int {
            None => {
                debug_assert!(warm.is_none(), "warm restart requires integer keys");
                self.allocs += self.t1.begin(n, s) as u64;
                self.heap.ensure_capacity(n);
                self.heap.clear();
                self.t1.set(s.index(), 0.0, None);
                self.heap.insert(s.index(), 0.0);
                while let Some((u, du)) = self.heap.pop_min() {
                    for slot in g.out_range(u) {
                        if !g.slot_enabled[slot] {
                            continue;
                        }
                        let w = g.slot_weight[slot];
                        debug_assert!(w >= 0.0, "negative arc weight {w} in slot {slot}");
                        let v = g.heads[slot] as usize;
                        let nd = du + w;
                        if nd < self.t1.dist(v) {
                            self.t1
                                .set(v, nd, Some(EdgeId::from(g.slot_arc[slot] as usize)));
                            self.heap.insert_or_decrease(v, nd);
                        }
                    }
                }
            }
            Some(iw) => {
                debug_assert_eq!(iw.key.len(), m);
                // Exactness guard: every distance is a sum of < n keys, and
                // residual reduced costs add two distances — all must stay
                // exactly representable in f64.
                debug_assert!(
                    (n as u64 + 2).saturating_mul(iw.max_key.max(1)) < (1 << 52),
                    "integer keys too large for exact f64 mirroring"
                );
                let inv_scale = 1.0 / (1u64 << iw.scale_shift) as f64;
                if let Some(p) = warm.as_deref_mut() {
                    if p.pi.len() != n {
                        p.reset(n);
                    }
                }
                // Warm restart only if the reduced-key window fits the
                // bucket span cap; otherwise run cold (and still re-adopt).
                let use_pi = warm
                    .as_deref()
                    .is_some_and(|p| iw.max_key + p.max < BUCKET_SPAN_CAP);
                let (span, pi_s) = match (use_pi, warm.as_deref()) {
                    (true, Some(p)) => (iw.max_key + p.max + 1, p.pi[s.index()]),
                    _ => (iw.max_key + 1, 0),
                };
                self.allocs += self.t1.begin(n, s) as u64;
                self.bucket.clear();
                self.allocs += self.bucket.ensure(n, span) as u64;
                self.t1.set(s.index(), 0.0, None);
                self.bucket.insert(s.index(), 0);
                let pi_view: &[u64] = match (use_pi, warm.as_deref()) {
                    (true, Some(p)) => &p.pi,
                    _ => &[],
                };
                while let Some((u, du)) = self.bucket.pop_min() {
                    let pi_u = if pi_view.is_empty() { 0 } else { pi_view[u] };
                    for slot in g.out_range(u) {
                        if !g.slot_enabled[slot] {
                            continue;
                        }
                        let v = g.heads[slot] as usize;
                        let r = if pi_view.is_empty() {
                            iw.key[slot]
                        } else {
                            debug_assert!(
                                iw.key[slot] + pi_u >= pi_view[v],
                                "infeasible potential in slot {slot}"
                            );
                            iw.key[slot] + pi_u - pi_view[v]
                        };
                        let nd = du + r;
                        // Exact: nd < n * (max_key + pi.max) < 2^53.
                        let ndf = nd as f64;
                        if ndf < self.t1.dist(v) {
                            self.t1
                                .set(v, ndf, Some(EdgeId::from(g.slot_arc[slot] as usize)));
                            self.bucket.insert_or_decrease(v, nd);
                        }
                    }
                }
                // Convert key-unit (possibly reduced) distances to true cost
                // units; with warm potentials, adopt the finished tree.
                match warm {
                    Some(p) => {
                        let mut mx = 0u64;
                        for v in 0..n {
                            if self.t1.stamp[v] == self.t1.gen {
                                let dk = if use_pi {
                                    (self.t1.dist[v] as u64 + p.pi[v]) - pi_s
                                } else {
                                    self.t1.dist[v] as u64
                                };
                                self.t1.dist[v] = dk as f64 * inv_scale;
                                p.pi[v] = dk;
                                mx = mx.max(dk);
                            }
                        }
                        for v in 0..n {
                            if self.t1.stamp[v] != self.t1.gen {
                                p.pi[v] = mx;
                            }
                        }
                        p.max = mx;
                        mx_key = mx;
                    }
                    None => {
                        for v in 0..n {
                            if self.t1.stamp[v] == self.t1.gen {
                                let dk = self.t1.dist[v] as u64;
                                mx_key = mx_key.max(dk);
                                self.t1.dist[v] = dk as f64 * inv_scale;
                            }
                        }
                    }
                }
            }
        }
        if !self.t1.reached(t) {
            return None;
        }
        let p1 = self.t1.path_to_flat(g.src, t).expect("t is reached");
        self.allocs += self.mask.begin(m) as u64;
        self.allocs += self.mask_slot.begin(m) as u64;
        for &e in &p1.edges {
            self.mask.set(e.index(), true);
            self.mask_slot.set(g.arc_slot[e.index()] as usize, true);
        }
        pass1_done();

        // ---- Pass 2 runs directly over the CSR with a residual overlay ----
        // (no residual graph is materialised). The residual is: every
        // enabled unmasked forward arc whose endpoints both lie in the
        // pass-1 tree, at reduced cost `(w + d(u) - d(v)).max(0)`, plus
        // each P1 arc reversed at reduced cost 0. P1 is a simple path, so a
        // node has at most one masked in-arc — at most one reversed arc —
        // and merging it into the forward slot scan by ascending original
        // arc id reproduces the pointer path's residual insertion order,
        // and therefore every relaxation tie, exactly. Pass-2 predecessor
        // arcs are encoded as `orig_arc << 1 | reversed`.
        if self.rev_at.len() < n {
            self.rev_at.resize(n, u32::MAX);
            self.allocs += 1;
        }
        for &e in &p1.edges {
            self.rev_at[g.dst[e.index()] as usize] = e.index() as u32;
        }

        self.allocs += self.t2.begin(n, s) as u64;
        let bucket2 = int.and_then(|iw| {
            let scale = (1u64 << iw.scale_shift) as f64;
            // Reduced costs are bounded by max_key + (max tree distance in
            // key units): a safe over-estimate of the Dial span needed.
            let span2 = iw.max_key + mx_key + 1;
            (span2 <= BUCKET_SPAN_CAP).then_some((scale, span2))
        });
        match bucket2 {
            Some((scale, span2)) => {
                let inv_scale = 1.0 / scale;
                self.bucket.clear();
                self.allocs += self.bucket.ensure(n, span2) as u64;
                self.t2.set(s.index(), 0.0, None);
                self.bucket.insert(s.index(), 0);
                while let Some((u, du)) = self.bucket.pop_min() {
                    if u == t.index() {
                        break;
                    }
                    // Every pass-2 node is pass-1 reachable (induction from
                    // s), so this distance is finite.
                    let d1_u = self.t1.dist(u);
                    let mut pending_rev = self.rev_at[u];
                    for slot in g.out_range(u) {
                        if (pending_rev as usize) < g.slot_arc[slot] as usize {
                            let ra = pending_rev as usize;
                            pending_rev = u32::MAX;
                            let v = g.src[ra] as usize;
                            let ndf = du as f64;
                            if ndf < self.t2.dist(v) {
                                self.t2.set(v, ndf, Some(EdgeId::from((ra << 1) | 1)));
                                self.bucket.insert_or_decrease(v, du);
                            }
                        }
                        if !g.slot_enabled[slot] || self.mask_slot.get(slot) {
                            continue;
                        }
                        let v = g.heads[slot] as usize;
                        if self.t1.stamp[v] != self.t1.gen {
                            // Unreachable head: not a residual arc.
                            continue;
                        }
                        // Floating-point noise can push a tight edge to
                        // -epsilon; clamp exactly as the pointer path does.
                        let red = (g.slot_weight[slot] + d1_u - self.t1.dist(v)).max(0.0);
                        let rk = (red * scale) as u64;
                        let nd = du + rk;
                        let ndf = nd as f64;
                        if ndf < self.t2.dist(v) {
                            let a = g.slot_arc[slot] as usize;
                            self.t2.set(v, ndf, Some(EdgeId::from(a << 1)));
                            self.bucket.insert_or_decrease(v, nd);
                        }
                    }
                    if pending_rev != u32::MAX {
                        let ra = pending_rev as usize;
                        let v = g.src[ra] as usize;
                        let ndf = du as f64;
                        if ndf < self.t2.dist(v) {
                            self.t2.set(v, ndf, Some(EdgeId::from((ra << 1) | 1)));
                            self.bucket.insert_or_decrease(v, du);
                        }
                    }
                }
                for v in 0..n {
                    if self.t2.stamp[v] == self.t2.gen {
                        self.t2.dist[v] *= inv_scale;
                    }
                }
            }
            None => {
                self.heap.ensure_capacity(n);
                self.heap.clear();
                self.t2.set(s.index(), 0.0, None);
                self.heap.insert(s.index(), 0.0);
                while let Some((u, du)) = self.heap.pop_min() {
                    if u == t.index() {
                        break;
                    }
                    let d1_u = self.t1.dist(u);
                    let mut pending_rev = self.rev_at[u];
                    for slot in g.out_range(u) {
                        if (pending_rev as usize) < g.slot_arc[slot] as usize {
                            let ra = pending_rev as usize;
                            pending_rev = u32::MAX;
                            let v = g.src[ra] as usize;
                            if du < self.t2.dist(v) {
                                self.t2.set(v, du, Some(EdgeId::from((ra << 1) | 1)));
                                self.heap.insert_or_decrease(v, du);
                            }
                        }
                        if !g.slot_enabled[slot] || self.mask_slot.get(slot) {
                            continue;
                        }
                        let v = g.heads[slot] as usize;
                        if self.t1.stamp[v] != self.t1.gen {
                            continue;
                        }
                        let red = (g.slot_weight[slot] + d1_u - self.t1.dist(v)).max(0.0);
                        let nd = du + red;
                        if nd < self.t2.dist(v) {
                            let a = g.slot_arc[slot] as usize;
                            self.t2.set(v, nd, Some(EdgeId::from(a << 1)));
                            self.heap.insert_or_decrease(v, nd);
                        }
                    }
                    if pending_rev != u32::MAX {
                        let ra = pending_rev as usize;
                        let v = g.src[ra] as usize;
                        if du < self.t2.dist(v) {
                            self.t2.set(v, du, Some(EdgeId::from((ra << 1) | 1)));
                            self.heap.insert_or_decrease(v, du);
                        }
                    }
                }
            }
        }
        // The overlay is per-request state: clear it before any return.
        for &e in &p1.edges {
            self.rev_at[g.dst[e.index()] as usize] = u32::MAX;
        }
        if !self.t2.reached(t) {
            return None;
        }

        // Interleaving removal straight off the pass-2 predecessor codes:
        // cancel (e, reverse(e)) pairs. The mask currently holds P1's edges
        // and becomes the surviving set.
        let mut at = t.index();
        while at != s.index() {
            let code = self
                .t2
                .pred(at)
                .expect("reached non-source node must have a pred edge")
                .index();
            let (a, rev) = (code >> 1, code & 1 == 1);
            if rev {
                debug_assert!(self.mask.get(a), "reversal of non-P1 edge");
                self.mask.set(a, false);
                at = g.dst[a] as usize;
            } else {
                debug_assert!(!self.mask.get(a), "forward arc duplicates P1 edge");
                self.mask.set(a, true);
                at = g.src[a] as usize;
            }
        }

        // Decompose the surviving edge set into two s->t paths by walking.
        if self.out_lists.len() < n {
            self.out_lists.resize_with(n, Vec::new);
            self.allocs += 1;
        }
        let mut total = 0.0;
        for a in 0..m {
            if self.mask.get(a) {
                self.out_lists[g.src[a] as usize].push(EdgeId::from(a));
                total += g.weight[a];
            }
        }
        let out_lists = &mut self.out_lists;
        let mut walk = || -> Path {
            let mut edges = Vec::new();
            let mut at = s;
            while at != t {
                let e = out_lists[at.index()]
                    .pop()
                    .expect("balanced edge set cannot strand a walk before t");
                edges.push(e);
                at = NodeId::from(g.dst[e.index()] as usize);
            }
            Path {
                src: s,
                dst: t,
                edges,
            }
        };
        let a = walk();
        let b = walk();
        debug_assert!(
            self.out_lists.iter().all(|l| l.is_empty()),
            "leftover edges after extracting two paths (zero-cost cycle?)"
        );
        for l in &mut self.out_lists {
            l.clear();
        }
        let mut cost = |e: EdgeId| g.weight[e.index()];
        let (first, second) = if a.cost(&mut cost) <= b.cost(&mut cost) {
            (a, b)
        } else {
            (b, a)
        };
        debug_assert!(!first.shares_edge_with(&second));
        Some(crate::suurballe::DisjointPair {
            paths: [first, second],
            total_cost: total,
        })
    }
}

/// Dijkstra into a [`TreeBank`]: the exact relaxation loop of
/// [`dijkstra_generic`](crate::dijkstra::dijkstra_generic) with the default
/// 4-ary heap, writing into reused buffers. Returns whether the tree bank
/// had to grow (an allocation event).
fn dijkstra_into<N, E>(
    bank: &mut TreeBank,
    heap: &mut DaryHeap<f64, 4>,
    g: &DiGraph<N, E>,
    source: NodeId,
    target: Option<NodeId>,
    mut cost: impl FnMut(EdgeId) -> f64,
    mut filter: impl FnMut(EdgeId) -> bool,
) -> bool {
    let n = g.node_count();
    let grew = bank.begin(n, source);
    heap.ensure_capacity(n);
    heap.clear();
    bank.set(source.index(), 0.0, None);
    heap.insert(source.index(), 0.0);
    while let Some((u_idx, du)) = heap.pop_min() {
        let u = NodeId::from(u_idx);
        if Some(u) == target {
            break;
        }
        for &e in g.out_edges(u) {
            if !filter(e) {
                continue;
            }
            let w = cost(e);
            debug_assert!(w >= 0.0, "negative arc weight {w} on {e:?}");
            let v = g.dst(e);
            let nd = du + w;
            if nd < bank.dist(v.index()) {
                bank.set(v.index(), nd, Some(e));
                heap.insert_or_decrease(v.index(), nd);
            }
        }
    }
    grew
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suurballe::edge_disjoint_pair_filtered;
    use crate::topology;
    use rand::{Rng, SeedableRng};

    fn random_graph(rng: &mut impl Rng, n: usize, p: f64) -> DiGraph<(), f64> {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        for _ in 0..n {
            g.add_node(());
        }
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen_bool(p) {
                    g.add_edge(
                        NodeId::from(u),
                        NodeId::from(v),
                        (rng.gen_range(1..=20) as f64) / 2.0,
                    );
                }
            }
        }
        g
    }

    /// The arena variant must be indistinguishable from the allocating one,
    /// including exact path choice among cost ties.
    #[test]
    fn arena_pair_matches_allocating_pair() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x5EED);
        let mut arena = SearchArena::new();
        for trial in 0..200 {
            let n = rng.gen_range(2..14);
            let g = random_graph(&mut rng, n, 0.3);
            let s = NodeId::from(rng.gen_range(0..n));
            let t = NodeId::from(rng.gen_range(0..n));
            let banned = EdgeId::from(rng.gen_range(0..g.edge_count().max(1)));
            let filter = |e: EdgeId| e != banned;
            let base = edge_disjoint_pair_filtered(&g, s, t, |e| g.weight(e), filter);
            let fast = arena.edge_disjoint_pair(&g, s, t, |e| g.weight(e), filter);
            match (base, fast) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits(), "t{trial}");
                    assert_eq!(a.paths[0].edges, b.paths[0].edges, "trial {trial}");
                    assert_eq!(a.paths[1].edges, b.paths[1].edges, "trial {trial}");
                }
                (a, b) => panic!("trial {trial}: feasibility disagrees ({a:?} vs {b:?})"),
            }
        }
    }

    /// A warmed-up arena serves same-size searches without allocating.
    #[test]
    fn alloc_events_plateau_after_warmup() {
        let mut arena = SearchArena::new();
        let g = topology::ring(24, 1.0);
        arena
            .edge_disjoint_pair(&g, NodeId(0), NodeId(12), |e| g.weight(e), |_| true)
            .unwrap();
        let after_warmup = arena.alloc_events();
        assert!(after_warmup > 0, "first search must grow the buffers");
        for _ in 0..10 {
            arena
                .edge_disjoint_pair(&g, NodeId(0), NodeId(12), |e| g.weight(e), |_| true)
                .unwrap();
        }
        assert_eq!(arena.alloc_events(), after_warmup);
    }

    /// Owned flat arrays mirroring a `DiGraph<(), f64>` (test scaffolding for
    /// the `FlatView` paths; production views are built by the aux engine).
    struct FlatArrays {
        offsets: Vec<u32>,
        heads: Vec<u32>,
        slot_arc: Vec<u32>,
        arc_slot: Vec<u32>,
        src: Vec<u32>,
        dst: Vec<u32>,
        weight: Vec<f64>,
        enabled: Vec<bool>,
        slot_weight: Vec<f64>,
        slot_enabled: Vec<bool>,
        key: Vec<u64>,
        max_key: u64,
    }

    const TEST_SHIFT: u32 = 6;

    impl FlatArrays {
        fn build(g: &DiGraph<(), f64>, mut filter: impl FnMut(EdgeId) -> bool) -> Self {
            let n = g.node_count();
            let m = g.edge_count();
            let scale = (1u64 << TEST_SHIFT) as f64;
            let mut f = Self {
                offsets: Vec::with_capacity(n + 1),
                heads: Vec::with_capacity(m),
                slot_arc: Vec::with_capacity(m),
                arc_slot: vec![0; m],
                src: vec![0; m],
                dst: vec![0; m],
                weight: vec![0.0; m],
                enabled: vec![false; m],
                slot_weight: vec![0.0; m],
                slot_enabled: vec![false; m],
                key: vec![0; m],
                max_key: 0,
            };
            for v in g.node_ids() {
                f.offsets.push(f.heads.len() as u32);
                for &e in g.out_edges(v) {
                    f.heads.push(g.dst(e).index() as u32);
                    f.slot_arc.push(e.index() as u32);
                }
            }
            f.offsets.push(f.heads.len() as u32);
            for (slot, &a) in f.slot_arc.iter().enumerate() {
                f.arc_slot[a as usize] = slot as u32;
            }
            for e in g.edge_ids() {
                let i = e.index();
                f.src[i] = g.src(e).index() as u32;
                f.dst[i] = g.dst(e).index() as u32;
                f.weight[i] = g.weight(e);
                f.enabled[i] = filter(e);
                let k = (g.weight(e) * scale) as u64;
                assert_eq!(k as f64 / scale, g.weight(e), "test weights must be dyadic");
                let slot = f.arc_slot[i] as usize;
                f.slot_weight[slot] = f.weight[i];
                f.slot_enabled[slot] = f.enabled[i];
                f.key[slot] = k;
                if f.enabled[i] {
                    f.max_key = f.max_key.max(k);
                }
            }
            f
        }

        fn view(&self) -> FlatView<'_> {
            FlatView {
                offsets: &self.offsets,
                heads: &self.heads,
                slot_arc: &self.slot_arc,
                arc_slot: &self.arc_slot,
                src: &self.src,
                dst: &self.dst,
                weight: &self.weight,
                enabled: &self.enabled,
                slot_weight: &self.slot_weight,
                slot_enabled: &self.slot_enabled,
            }
        }

        fn int(&self) -> IntWeights<'_> {
            IntWeights {
                key: &self.key,
                scale_shift: TEST_SHIFT,
                max_key: self.max_key,
            }
        }
    }

    fn assert_same_pair(
        a: &Option<crate::suurballe::DisjointPair>,
        b: &Option<crate::suurballe::DisjointPair>,
        ctx: &str,
    ) {
        match (a, b) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits(), "{ctx}");
                assert_eq!(a.paths[0].edges, b.paths[0].edges, "{ctx}");
                assert_eq!(a.paths[1].edges, b.paths[1].edges, "{ctx}");
            }
            _ => panic!("{ctx}: feasibility disagrees"),
        }
    }

    /// The flat f64 path and the cold integer/bucket path must both be
    /// bit-identical to the pointer-based arena search.
    #[test]
    fn flat_paths_match_pointer_path() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xF1A7);
        let mut ptr_arena = SearchArena::new();
        let mut flat_arena = SearchArena::new();
        let mut int_arena = SearchArena::new();
        for trial in 0..200 {
            let n = rng.gen_range(2..14);
            let g = random_graph(&mut rng, n, 0.3);
            let s = NodeId::from(rng.gen_range(0..n));
            let t = NodeId::from(rng.gen_range(0..n));
            let banned = EdgeId::from(rng.gen_range(0..g.edge_count().max(1)));
            let flat = FlatArrays::build(&g, |e| e != banned);
            let base = ptr_arena.edge_disjoint_pair(&g, s, t, |e| g.weight(e), |e| e != banned);
            let f64_pair = flat_arena.edge_disjoint_pair_flat(&flat.view(), s, t, || {});
            let int_pair =
                int_arena.edge_disjoint_pair_flat_int(&flat.view(), &flat.int(), None, s, t, || {});
            assert_same_pair(&base, &f64_pair, &format!("flat f64, trial {trial}"));
            assert_same_pair(&base, &int_pair, &format!("flat int, trial {trial}"));
        }
    }

    /// Warm restarts preserve the optimal total cost (bit-exactly, thanks to
    /// dyadic weights) and always produce a valid disjoint pair, across
    /// repeated solves with changing endpoints.
    #[test]
    fn warm_potentials_preserve_total_cost() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x3A3A);
        let mut cold_arena = SearchArena::new();
        let mut warm_arena = SearchArena::new();
        for trial in 0..40 {
            let n = rng.gen_range(4..14);
            let g = random_graph(&mut rng, n, 0.4);
            let flat = FlatArrays::build(&g, |_| true);
            let mut pot = Potentials::default();
            for solve in 0..12 {
                let s = NodeId::from(rng.gen_range(0..n));
                let t = NodeId::from(rng.gen_range(0..n));
                let cold = cold_arena.edge_disjoint_pair_flat_int(
                    &flat.view(),
                    &flat.int(),
                    None,
                    s,
                    t,
                    || {},
                );
                let warm = warm_arena.edge_disjoint_pair_flat_int(
                    &flat.view(),
                    &flat.int(),
                    Some(&mut pot),
                    s,
                    t,
                    || {},
                );
                match (&cold, &warm) {
                    (None, None) => {}
                    (Some(c), Some(w)) => {
                        assert_eq!(
                            c.total_cost.to_bits(),
                            w.total_cost.to_bits(),
                            "trial {trial} solve {solve}"
                        );
                        assert!(w.is_edge_disjoint());
                        assert_eq!(w.paths[0].src, s);
                        assert_eq!(w.paths[0].dst, t);
                    }
                    _ => panic!("trial {trial} solve {solve}: feasibility disagrees"),
                }
            }
        }
    }

    /// After the first adoption, repeated warm searches over an unchanged
    /// graph run entirely reduced-key-zero and still agree with cold runs;
    /// the arena also stops allocating once warmed up.
    #[test]
    fn warm_flat_searches_stop_allocating() {
        let g = topology::ring(24, 1.0);
        let flat = FlatArrays::build(&g, |_| true);
        let mut arena = SearchArena::new();
        let mut pot = Potentials::default();
        // Two warm-up solves: the first adopts potentials, the second grows
        // the bucket span to the now-nonzero reduced-key window.
        for _ in 0..2 {
            arena
                .edge_disjoint_pair_flat_int(
                    &flat.view(),
                    &flat.int(),
                    Some(&mut pot),
                    NodeId(0),
                    NodeId(12),
                    || {},
                )
                .unwrap();
        }
        assert!(pot.max > 0, "adoption must record reached distances");
        let after_warmup = arena.alloc_events();
        for i in 0..10 {
            let t = NodeId::from(6 + i);
            arena
                .edge_disjoint_pair_flat_int(
                    &flat.view(),
                    &flat.int(),
                    Some(&mut pot),
                    NodeId(0),
                    t,
                    || {},
                )
                .unwrap();
        }
        assert_eq!(arena.alloc_events(), after_warmup);
    }

    /// Reuse across differently-sized graphs must not leak state.
    #[test]
    fn arena_survives_shrinking_and_growing_graphs() {
        let mut arena = SearchArena::new();
        for &n in &[30usize, 4, 50, 3, 12] {
            let g = topology::ring(n, 1.0);
            let pair = arena
                .edge_disjoint_pair(
                    &g,
                    NodeId(0),
                    NodeId::from(n / 2),
                    |e| g.weight(e),
                    |_| true,
                )
                .expect("ring always has two disjoint paths");
            assert!(pair.is_edge_disjoint());
            let base = edge_disjoint_pair_filtered(
                &g,
                NodeId(0),
                NodeId::from(n / 2),
                |e| g.weight(e),
                |_| true,
            )
            .unwrap();
            assert_eq!(pair.total_cost, base.total_cost);
        }
    }
}
