//! Dijkstra's single-source shortest paths, generic over the heap engine.
//!
//! The paper's Theorem 1 charges `O(m log n)` (binary/Fibonacci heap) for
//! each shortest-path pass over the auxiliary graph; these routines are that
//! pass. All variants reject negative arc weights with a debug assertion —
//! Suurballe's second pass feeds them non-negative *reduced* costs instead.

use crate::{Csr, DiGraph, EdgeId, NodeId, Path};
use wdm_heap::{BucketQueue, DaryHeap, MinQueue};

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// The source the tree is rooted at.
    pub source: NodeId,
    /// `dist[v]` = cost of the cheapest path `source -> v`, `f64::INFINITY`
    /// if unreachable.
    pub dist: Vec<f64>,
    /// `pred[v]` = last edge on a cheapest path to `v`, `None` for the
    /// source and unreachable nodes.
    pub pred: Vec<Option<EdgeId>>,
}

impl ShortestPathTree {
    /// Whether `v` is reachable from the source.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_finite()
    }

    /// The distance to `v`, if reachable.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<f64> {
        let d = self.dist[v.index()];
        d.is_finite().then_some(d)
    }

    /// Reconstructs a cheapest path `source -> t`, if `t` is reachable.
    pub fn path_to<N, E>(&self, g: &DiGraph<N, E>, t: NodeId) -> Option<Path> {
        if !self.reached(t) {
            return None;
        }
        let mut edges = Vec::new();
        let mut at = t;
        while at != self.source {
            let e = self.pred[at.index()].expect("reached non-source node must have a pred edge");
            edges.push(e);
            at = g.src(e);
        }
        edges.reverse();
        Some(Path {
            src: self.source,
            dst: t,
            edges,
        })
    }
}

/// Dijkstra with an arbitrary [`MinQueue`] engine, arbitrary cost function
/// and an edge filter. The most general entry point; the convenience
/// wrappers below all delegate here.
///
/// `target`: if `Some(t)`, the search stops as soon as `t` is settled
/// (distances of unsettled nodes are then upper bounds, `pred` for settled
/// nodes is exact).
pub fn dijkstra_generic<N, E, Q: MinQueue<f64>>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: Option<NodeId>,
    mut cost: impl FnMut(EdgeId) -> f64,
    mut filter: impl FnMut(EdgeId) -> bool,
) -> ShortestPathTree {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut queue = Q::with_capacity(n);
    dist[source.index()] = 0.0;
    queue.insert(source.index(), 0.0);

    while let Some((u_idx, du)) = queue.pop_min() {
        let u = NodeId::from(u_idx);
        if Some(u) == target {
            break;
        }
        for &e in g.out_edges(u) {
            if !filter(e) {
                continue;
            }
            let w = cost(e);
            debug_assert!(w >= 0.0, "negative arc weight {w} on {e:?}");
            let v = g.dst(e);
            let nd = du + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = Some(e);
                queue.insert_or_decrease(v.index(), nd);
            }
        }
    }
    ShortestPathTree { source, dist, pred }
}

/// Dijkstra over all edges with the default 4-ary heap.
pub fn dijkstra<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    cost: impl FnMut(EdgeId) -> f64,
) -> ShortestPathTree {
    dijkstra_generic::<N, E, DaryHeap<f64, 4>>(g, source, None, cost, |_| true)
}

/// Dijkstra restricted to edges accepted by `filter`.
pub fn dijkstra_filtered<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    cost: impl FnMut(EdgeId) -> f64,
    filter: impl FnMut(EdgeId) -> bool,
) -> ShortestPathTree {
    dijkstra_generic::<N, E, DaryHeap<f64, 4>>(g, source, None, cost, filter)
}

/// Point-to-point Dijkstra with early termination at `target`.
pub fn dijkstra_to<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    cost: impl FnMut(EdgeId) -> f64,
) -> ShortestPathTree {
    dijkstra_generic::<N, E, DaryHeap<f64, 4>>(g, source, Some(target), cost, |_| true)
}

/// Point-to-point Dijkstra restricted to edges accepted by `filter`, with
/// early termination at `target`. Everything settled before `target` pops
/// is exact, so `path_to(target)` equals the unpruned run's path.
pub fn dijkstra_filtered_to<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    target: NodeId,
    cost: impl FnMut(EdgeId) -> f64,
    filter: impl FnMut(EdgeId) -> bool,
) -> ShortestPathTree {
    dijkstra_generic::<N, E, DaryHeap<f64, 4>>(g, source, Some(target), cost, filter)
}

/// Dijkstra over a prebuilt CSR view (hot-loop variant: contiguous arc
/// storage, cached weights).
pub fn dijkstra_csr(csr: &Csr, source: NodeId) -> ShortestPathTree {
    let n = csr.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut queue: DaryHeap<f64, 4> = DaryHeap::with_capacity(n);
    dist[source.index()] = 0.0;
    queue.insert(source.index(), 0.0);
    while let Some((u_idx, du)) = queue.pop_min() {
        for arc in csr.out_arcs(NodeId::from(u_idx)) {
            debug_assert!(arc.weight >= 0.0);
            let nd = du + arc.weight;
            let v = arc.to.index();
            if nd < dist[v] {
                dist[v] = nd;
                pred[v] = Some(arc.edge);
                queue.insert_or_decrease(v, nd);
            }
        }
    }
    ShortestPathTree { source, dist, pred }
}

/// Dial's algorithm: Dijkstra with a monotone bucket queue for *integer*
/// edge costs bounded by `max_cost`. O(m + n + C) with tiny constants —
/// the fast path for hop-count routing and quantised link weights.
///
/// # Panics
/// Debug-asserts that every returned cost is `<= max_cost`.
#[allow(clippy::needless_range_loop)]
pub fn dijkstra_bucket<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    max_cost: u64,
    mut cost: impl FnMut(EdgeId) -> u64,
) -> (Vec<u64>, Vec<Option<EdgeId>>) {
    let n = g.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    let mut queue = BucketQueue::new(n, max_cost + 1);
    dist[source.index()] = 0;
    queue.insert(source.index(), 0);
    while let Some((u_idx, du)) = queue.pop_min() {
        for &e in g.out_edges(NodeId::from(u_idx)) {
            let w = cost(e);
            debug_assert!(w <= max_cost, "edge cost {w} exceeds declared bound");
            let v = g.dst(e).index();
            let nd = du + w;
            if nd < dist[v] {
                dist[v] = nd;
                pred[v] = Some(e);
                queue.insert_or_decrease(v, nd);
            }
        }
    }
    (dist, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_heap::PairingHeap;

    /// The classic CLRS example graph.
    fn sample() -> DiGraph<(), f64> {
        DiGraph::weighted(
            5,
            &[
                (0, 1, 10.0),
                (0, 3, 5.0),
                (1, 2, 1.0),
                (1, 3, 2.0),
                (2, 4, 4.0),
                (3, 1, 3.0),
                (3, 2, 9.0),
                (3, 4, 2.0),
                (4, 0, 7.0),
                (4, 2, 6.0),
            ],
        )
    }

    #[test]
    fn distances_match_known_values() {
        let g = sample();
        let t = dijkstra(&g, NodeId(0), |e| g.weight(e));
        assert_eq!(t.dist, vec![0.0, 8.0, 9.0, 5.0, 7.0]);
    }

    #[test]
    fn path_reconstruction_is_consistent() {
        let g = sample();
        let t = dijkstra(&g, NodeId(0), |e| g.weight(e));
        let p = t.path_to(&g, NodeId(2)).unwrap();
        assert!(p.is_valid_walk(&g));
        assert!(p.is_simple(&g));
        assert_eq!(p.cost(|e| g.weight(e)), 9.0);
        assert_eq!(
            p.nodes(&g),
            vec![NodeId(0), NodeId(3), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let g = DiGraph::weighted(3, &[(0, 1, 1.0)]);
        let t = dijkstra(&g, NodeId(0), |e| g.weight(e));
        assert!(!t.reached(NodeId(2)));
        assert_eq!(t.distance(NodeId(2)), None);
        assert!(t.path_to(&g, NodeId(2)).is_none());
        assert_eq!(t.path_to(&g, NodeId(0)).unwrap().len(), 0);
    }

    #[test]
    fn filter_excludes_edges() {
        let g = sample();
        // Ban the cheap 0->3 edge; the best route to 3 becomes 0->1->3.
        let t = dijkstra_filtered(&g, NodeId(0), |e| g.weight(e), |e| e != EdgeId(1));
        assert_eq!(t.dist[3], 12.0);
    }

    #[test]
    fn early_exit_settles_target() {
        let g = sample();
        let t = dijkstra_to(&g, NodeId(0), NodeId(3), |e| g.weight(e));
        assert_eq!(t.distance(NodeId(3)), Some(5.0));
        let p = t.path_to(&g, NodeId(3)).unwrap();
        assert_eq!(p.cost(|e| g.weight(e)), 5.0);
    }

    #[test]
    fn csr_variant_agrees_with_list_variant() {
        let g = sample();
        let csr = Csr::from_weighted(&g);
        for s in g.node_ids() {
            let a = dijkstra(&g, s, |e| g.weight(e));
            let b = dijkstra_csr(&csr, s);
            assert_eq!(a.dist, b.dist, "source {s:?}");
        }
    }

    #[test]
    fn pairing_heap_engine_agrees() {
        let g = sample();
        let a = dijkstra(&g, NodeId(0), |e| g.weight(e));
        let b = dijkstra_generic::<_, _, PairingHeap<f64>>(
            &g,
            NodeId(0),
            None,
            |e| g.weight(e),
            |_| true,
        );
        assert_eq!(a.dist, b.dist);
    }

    #[test]
    fn bucket_dial_agrees_with_float_dijkstra() {
        let g = sample();
        let (dist, pred) = dijkstra_bucket(&g, NodeId(0), 10, |e| g.weight(e) as u64);
        let float = dijkstra(&g, NodeId(0), |e| g.weight(e));
        for (v, &d) in dist.iter().enumerate() {
            assert_eq!(d as f64, float.dist[v]);
        }
        // Predecessors reconstruct valid paths.
        let mut at = NodeId(2);
        let mut hops = 0;
        while at != NodeId(0) {
            let e = pred[at.index()].unwrap();
            at = g.src(e);
            hops += 1;
            assert!(hops < 10);
        }
    }

    #[test]
    fn bucket_hop_counts() {
        let g = DiGraph::weighted(
            5,
            &[
                (0, 1, 9.0),
                (1, 2, 9.0),
                (0, 3, 9.0),
                (3, 4, 9.0),
                (4, 2, 9.0),
            ],
        );
        // Unit costs = BFS hop counts.
        let (dist, _) = dijkstra_bucket(&g, NodeId(0), 1, |_| 1);
        assert_eq!(dist, vec![0, 1, 2, 1, 2]);
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let g = DiGraph::weighted(3, &[(0, 1, 0.0), (1, 2, 0.0)]);
        let t = dijkstra(&g, NodeId(0), |e| g.weight(e));
        assert_eq!(t.dist, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn parallel_edges_pick_cheapest() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 5.0);
        let cheap = g.add_edge(a, b, 2.0);
        let t = dijkstra(&g, a, |e| g.weight(e));
        assert_eq!(t.dist[b.index()], 2.0);
        assert_eq!(t.pred[b.index()], Some(cheap));
    }
}
