//! Minimum-cost flow by successive shortest paths with potentials.
//!
//! Role in the reproduction: sending `k` units of unit-capacity flow from
//! `s` to `t` computes the minimum-cost set of `k` edge-disjoint paths —
//! an *independent* implementation of the same optimisation Suurballe's
//! algorithm solves for `k = 2`. The integration tests cross-validate the
//! two on random graphs, and the simulator uses `k > 2` for the
//! multi-backup extension experiments.

use crate::{DiGraph, EdgeId, NodeId, Path};
use wdm_heap::DaryHeap;

/// Internal residual arc.
#[derive(Debug, Clone, Copy)]
struct Arc {
    to: u32,
    cap: i64,
    cost: f64,
    /// Index of the reverse arc in `arcs`.
    rev: u32,
    /// Originating public edge (None for reverse arcs and auxiliary arcs).
    orig: Option<EdgeId>,
}

/// A min-cost-flow problem instance over its own node space.
#[derive(Debug, Clone, Default)]
pub struct MinCostFlow {
    heads: Vec<Vec<u32>>, // per-node arc indices
    arcs: Vec<Arc>,
}

/// Result of a flow computation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowResult {
    /// Units actually sent (≤ requested).
    pub flow: i64,
    /// Total cost of the sent flow.
    pub cost: f64,
}

impl MinCostFlow {
    /// Creates an instance with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            heads: vec![Vec::new(); n],
            arcs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.heads.len()
    }

    /// Adds an arc `u -> v` with capacity `cap` and per-unit cost `cost`
    /// (cost must be non-negative; use potentials upstream otherwise).
    /// `orig` tags the arc for path extraction.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId, cap: i64, cost: f64, orig: Option<EdgeId>) {
        assert!(
            cost >= 0.0,
            "negative arc cost {cost}: shift with potentials first"
        );
        assert!(cap >= 0);
        let a = self.arcs.len() as u32;
        self.arcs.push(Arc {
            to: v.0,
            cap,
            cost,
            rev: a + 1,
            orig,
        });
        self.arcs.push(Arc {
            to: u.0,
            cap: 0,
            cost: -cost,
            rev: a,
            orig: None,
        });
        self.heads[u.index()].push(a);
        self.heads[v.index()].push(a + 1);
    }

    /// Sends up to `want` units from `s` to `t`, minimising cost. Uses
    /// Dijkstra with Johnson potentials per augmentation (all original costs
    /// are non-negative, so initial potentials are zero).
    pub fn solve(&mut self, s: NodeId, t: NodeId, want: i64) -> FlowResult {
        let n = self.heads.len();
        let mut potential = vec![0.0f64; n];
        let mut flow = 0i64;
        let mut cost = 0.0f64;

        while flow < want {
            // Dijkstra on reduced costs over arcs with residual capacity.
            let mut dist = vec![f64::INFINITY; n];
            let mut pre: Vec<Option<u32>> = vec![None; n];
            let mut heap: DaryHeap<f64, 4> = DaryHeap::with_capacity(n);
            use wdm_heap::MinQueue;
            dist[s.index()] = 0.0;
            heap.insert(s.index(), 0.0);
            while let Some((u, du)) = heap.pop_min() {
                for &ai in &self.heads[u] {
                    let arc = self.arcs[ai as usize];
                    if arc.cap <= 0 {
                        continue;
                    }
                    let v = arc.to as usize;
                    let red = arc.cost + potential[u] - potential[v];
                    let red = red.max(0.0); // absorb fp noise on tight arcs
                    let nd = du + red;
                    if nd + 1e-12 < dist[v] {
                        dist[v] = nd;
                        pre[v] = Some(ai);
                        heap.insert_or_decrease(v, nd);
                    }
                }
            }
            if !dist[t.index()].is_finite() {
                break; // saturated: no more augmenting paths
            }
            for v in 0..n {
                if dist[v].is_finite() {
                    potential[v] += dist[v];
                }
            }
            // Bottleneck along the path.
            let mut push = want - flow;
            let mut v = t.index();
            while let Some(ai) = pre[v] {
                push = push.min(self.arcs[ai as usize].cap);
                v = self.arcs[self.arcs[ai as usize].rev as usize].to as usize;
            }
            // Apply.
            let mut v = t.index();
            while let Some(ai) = pre[v] {
                let rev = self.arcs[ai as usize].rev as usize;
                self.arcs[ai as usize].cap -= push;
                self.arcs[rev].cap += push;
                cost += self.arcs[ai as usize].cost * push as f64;
                v = self.arcs[rev].to as usize;
            }
            flow += push;
        }
        FlowResult { flow, cost }
    }

    /// After a `solve` over a unit-capacity instance, decomposes the flow
    /// leaving `s` into edge-disjoint paths of original edges.
    pub fn extract_unit_paths(&self, s: NodeId, t: NodeId) -> Vec<Path> {
        // An original arc carries flow iff its reverse arc has cap > 0.
        let mut used: Vec<Vec<u32>> = vec![Vec::new(); self.heads.len()];
        for (ai, arc) in self.arcs.iter().enumerate() {
            if arc.orig.is_some() && self.arcs[arc.rev as usize].cap > 0 {
                let u = self.arcs[arc.rev as usize].to as usize;
                used[u].push(ai as u32);
            }
        }
        let mut paths = Vec::new();
        loop {
            let mut edges = Vec::new();
            let mut at = s.index();
            if used[at].is_empty() {
                break;
            }
            while at != t.index() {
                let Some(ai) = used[at].pop() else {
                    // Degenerate (flow cycle); abandon this walk.
                    break;
                };
                let arc = self.arcs[ai as usize];
                edges.push(arc.orig.expect("tagged arc"));
                at = arc.to as usize;
            }
            if at == t.index() {
                paths.push(Path {
                    src: s,
                    dst: t,
                    edges,
                });
            } else {
                break;
            }
        }
        paths
    }
}

/// Minimum-cost set of `k` edge-disjoint `s -> t` paths in `g`, if they
/// exist. Independent oracle for [`crate::suurballe::edge_disjoint_pair`]
/// (`k = 2`) and the multi-backup extension (`k > 2`).
pub fn min_cost_disjoint_paths<N, E>(
    g: &DiGraph<N, E>,
    s: NodeId,
    t: NodeId,
    k: usize,
    mut cost: impl FnMut(EdgeId) -> f64,
) -> Option<(Vec<Path>, f64)> {
    if s == t || k == 0 {
        return None;
    }
    let mut mcf = MinCostFlow::new(g.node_count());
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        mcf.add_arc(u, v, 1, cost(e), Some(e));
    }
    let res = mcf.solve(s, t, k as i64);
    if res.flow < k as i64 {
        return None;
    }
    let paths = mcf.extract_unit_paths(s, t);
    debug_assert_eq!(paths.len(), k);
    Some((paths, res.cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suurballe::edge_disjoint_pair;

    #[test]
    fn simple_two_path_flow() {
        let g = DiGraph::weighted(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let (paths, cost) =
            min_cost_disjoint_paths(&g, NodeId(0), NodeId(3), 2, |e| g.weight(e)).unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(cost, 6.0);
        assert!(!paths[0].shares_edge_with(&paths[1]));
        assert!(paths.iter().all(|p| p.is_valid_walk(&g)));
    }

    #[test]
    fn flow_rerouting_beats_greedy() {
        // The trap graph again: flow must partially undo the cheap path.
        let g = DiGraph::weighted(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (0, 2, 10.0),
                (1, 3, 10.0),
            ],
        );
        let (paths, cost) =
            min_cost_disjoint_paths(&g, NodeId(0), NodeId(3), 2, |e| g.weight(e)).unwrap();
        assert_eq!(cost, 22.0);
        assert!(!paths[0].shares_edge_with(&paths[1]));
    }

    #[test]
    fn infeasible_k_returns_none() {
        let g = DiGraph::weighted(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert!(min_cost_disjoint_paths(&g, NodeId(0), NodeId(2), 2, |e| g.weight(e)).is_none());
        assert!(min_cost_disjoint_paths(&g, NodeId(0), NodeId(2), 1, |e| g.weight(e)).is_some());
    }

    #[test]
    fn three_disjoint_paths() {
        let mut arcs = Vec::new();
        // Three parallel 2-hop corridors.
        for i in 0..3u32 {
            arcs.push((0, 1 + i, (i + 1) as f64));
            arcs.push((1 + i, 4, (i + 1) as f64));
        }
        let g = DiGraph::weighted(5, &arcs);
        let (paths, cost) =
            min_cost_disjoint_paths(&g, NodeId(0), NodeId(4), 3, |e| g.weight(e)).unwrap();
        assert_eq!(paths.len(), 3);
        assert_eq!(cost, 2.0 + 4.0 + 6.0);
    }

    #[test]
    fn agrees_with_suurballe_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..80 {
            let n = rng.gen_range(5..12);
            let mut arcs = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.3) {
                        arcs.push((u, v, rng.gen_range(1..50) as f64));
                    }
                }
            }
            let g = DiGraph::weighted(n as usize, &arcs);
            let s = NodeId(0);
            let t = NodeId(n - 1);
            let a = edge_disjoint_pair(&g, s, t, |e| g.weight(e));
            let b = min_cost_disjoint_paths(&g, s, t, 2, |e| g.weight(e));
            match (a, b) {
                (None, None) => {}
                (Some(pair), Some((_, cost))) => {
                    assert!(
                        (pair.total_cost - cost).abs() < 1e-6,
                        "trial {trial}: suurballe {} vs flow {cost}",
                        pair.total_cost
                    );
                }
                (a, b) => panic!("trial {trial}: existence mismatch {a:?} / {b:?}"),
            }
        }
    }

    #[test]
    fn partial_flow_reported() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_arc(NodeId(0), NodeId(1), 1, 1.0, None);
        mcf.add_arc(NodeId(1), NodeId(2), 1, 1.0, None);
        let res = mcf.solve(NodeId(0), NodeId(2), 5);
        assert_eq!(res.flow, 1);
        assert_eq!(res.cost, 2.0);
    }

    #[test]
    fn capacities_above_one() {
        let mut mcf = MinCostFlow::new(2);
        mcf.add_arc(NodeId(0), NodeId(1), 3, 2.0, None);
        let res = mcf.solve(NodeId(0), NodeId(1), 3);
        assert_eq!(res.flow, 3);
        assert_eq!(res.cost, 6.0);
    }
}
