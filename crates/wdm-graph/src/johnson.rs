//! Johnson's all-pairs shortest paths.
//!
//! Used for topology statistics (diameter, average path length — the
//! numbers WAN papers quote for their testbeds) and as another
//! cross-validation oracle: per-source Dijkstra distances must match the
//! all-pairs matrix. Handles negative arcs (without negative cycles) via
//! the standard reweighting pass, although the WDM substrate only feeds it
//! non-negative costs.

use crate::dijkstra::dijkstra;
use crate::{DiGraph, EdgeId, NodeId};

/// All-pairs shortest-path distances; `dist[u][v] = INFINITY` if `v` is
/// unreachable from `u`.
#[derive(Debug, Clone)]
pub struct AllPairs {
    /// Row-major distance matrix (`n × n`).
    pub dist: Vec<Vec<f64>>,
}

impl AllPairs {
    /// Distance `u → v`.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        self.dist[u.index()][v.index()]
    }

    /// The diameter: the largest finite pairwise distance
    /// (`None` for graphs with < 2 nodes or no finite pair).
    pub fn diameter(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for (u, row) in self.dist.iter().enumerate() {
            for (v, &d) in row.iter().enumerate() {
                if u != v && d.is_finite() {
                    best = Some(best.map_or(d, |b: f64| b.max(d)));
                }
            }
        }
        best
    }

    /// Mean finite pairwise distance over ordered pairs (`None` if no
    /// finite pair exists).
    pub fn mean_distance(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (u, row) in self.dist.iter().enumerate() {
            for (v, &d) in row.iter().enumerate() {
                if u != v && d.is_finite() {
                    sum += d;
                    count += 1;
                }
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Whether every ordered pair is connected.
    pub fn strongly_connected(&self) -> bool {
        self.dist
            .iter()
            .enumerate()
            .all(|(u, row)| row.iter().enumerate().all(|(v, d)| u == v || d.is_finite()))
    }
}

/// Johnson's algorithm: all-pairs shortest paths in O(nm + n² log n).
/// Returns `None` if the graph contains a negative cycle.
pub fn johnson_all_pairs<N, E>(
    g: &DiGraph<N, E>,
    mut cost: impl FnMut(EdgeId) -> f64,
) -> Option<AllPairs> {
    let n = g.node_count();
    // Potentials via Bellman-Ford from a virtual super-source: equivalent to
    // running it on the original graph with dist initialised to 0 everywhere.
    let h = {
        let mut dist = vec![0.0f64; n];
        for _round in 0..n {
            let mut changed = false;
            for e in g.edge_ids() {
                let (u, v) = g.endpoints(e);
                let nd = dist[u.index()] + cost(e);
                if nd < dist[v.index()] - 1e-12 {
                    dist[v.index()] = nd;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if _round == n - 1 {
                return None; // still improving after n rounds: negative cycle
            }
        }
        dist
    };

    // Reweighted Dijkstra per source.
    let mut matrix = Vec::with_capacity(n);
    for s in 0..n {
        let s = NodeId::from(s);
        let tree = dijkstra(g, s, |e| {
            let (u, v) = g.endpoints(e);
            // Reweighted cost is non-negative by the potential property;
            // clamp float noise.
            (cost(e) + h[u.index()] - h[v.index()]).max(0.0)
        });
        let row: Vec<f64> = (0..n)
            .map(|v| {
                let d = tree.dist[v];
                if d.is_finite() {
                    d - h[s.index()] + h[v]
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        matrix.push(row);
    }
    Some(AllPairs { dist: matrix })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bellman_ford::{bellman_ford, BellmanFord};

    #[test]
    fn matches_per_source_dijkstra_on_nonnegative() {
        let g = crate::topology::nsfnet();
        let ap = johnson_all_pairs(&g, |e| g.weight(e)).unwrap();
        for s in g.node_ids() {
            let tree = dijkstra(&g, s, |e| g.weight(e));
            for v in g.node_ids() {
                assert!(
                    (ap.get(s, v) - tree.dist[v.index()]).abs() < 1e-6
                        || (ap.get(s, v).is_infinite() && tree.dist[v.index()].is_infinite()),
                    "{s:?} -> {v:?}"
                );
            }
        }
        assert!(ap.strongly_connected());
        // NSFNET diameter in km: known to be 0 < d <= sum of all links.
        let d = ap.diameter().unwrap();
        assert!(d > 2000.0 && d < 30_000.0, "diameter {d}");
        assert!(ap.mean_distance().unwrap() < d);
    }

    #[test]
    fn handles_negative_edges() {
        let g = DiGraph::weighted(4, &[(0, 1, 4.0), (0, 2, 2.0), (2, 1, -3.0), (1, 3, 1.0)]);
        let ap = johnson_all_pairs(&g, |e| g.weight(e)).unwrap();
        assert_eq!(ap.get(NodeId(0), NodeId(1)), -1.0);
        assert_eq!(ap.get(NodeId(0), NodeId(3)), 0.0);
        assert!(ap.get(NodeId(3), NodeId(0)).is_infinite());
    }

    #[test]
    fn detects_negative_cycle() {
        let g = DiGraph::weighted(3, &[(0, 1, 1.0), (1, 2, -3.0), (2, 1, 1.0)]);
        assert!(johnson_all_pairs(&g, |e| g.weight(e)).is_none());
    }

    #[test]
    fn degenerate_graphs() {
        let empty: DiGraph<(), f64> = DiGraph::new();
        let ap = johnson_all_pairs(&empty, |_| 0.0).unwrap();
        assert!(ap.diameter().is_none());
        assert!(ap.mean_distance().is_none());

        let mut single: DiGraph<(), f64> = DiGraph::new();
        single.add_node(());
        let ap = johnson_all_pairs(&single, |_| 0.0).unwrap();
        assert!(ap.strongly_connected());
        assert!(ap.diameter().is_none());
    }

    #[test]
    fn cross_check_against_bellman_ford_per_source() {
        let g = DiGraph::weighted(
            5,
            &[
                (0, 1, 2.0),
                (1, 2, -1.0),
                (2, 3, 2.0),
                (0, 3, 5.0),
                (3, 4, 1.0),
                (4, 0, 10.0),
            ],
        );
        let ap = johnson_all_pairs(&g, |e| g.weight(e)).unwrap();
        for s in g.node_ids() {
            if let BellmanFord::Tree(t) = bellman_ford(&g, s, |e| g.weight(e)) {
                for v in g.node_ids() {
                    let a = ap.get(s, v);
                    let b = t.dist[v.index()];
                    assert!(
                        (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                        "{s:?} -> {v:?}: {a} vs {b}"
                    );
                }
            } else {
                panic!("unexpected negative cycle");
            }
        }
    }
}
