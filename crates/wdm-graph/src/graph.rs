//! Adjacency-list directed multigraph with typed payloads.

use crate::{EdgeId, NodeId};

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct EdgeRecord<E> {
    src: NodeId,
    dst: NodeId,
    data: E,
}

/// A directed multigraph with dense ids and per-node / per-edge payloads.
///
/// ```
/// use wdm_graph::{DiGraph, NodeId};
/// use wdm_graph::dijkstra::dijkstra;
///
/// // A weighted diamond; find the cheapest route across it.
/// let g = DiGraph::weighted(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)]);
/// let tree = dijkstra(&g, NodeId(0), |e| g.weight(e));
/// assert_eq!(tree.distance(NodeId(3)), Some(2.0));
/// let path = tree.path_to(&g, NodeId(3)).unwrap();
/// assert_eq!(path.nodes(&g), vec![NodeId(0), NodeId(1), NodeId(3)]);
/// ```
///
/// * Nodes and edges are identified by dense [`NodeId`] / [`EdgeId`] indices
///   in insertion order; neither can be removed (algorithms that need
///   subgraphs use edge filters or [`DiGraph::edge_subgraph`]).
/// * Parallel edges and self-loops are allowed — the WDM model needs parallel
///   fibres, and auxiliary-graph constructions never create self-loops but
///   the substrate does not forbid them.
/// * Both out- and in-adjacency are maintained, because the paper's
///   auxiliary-graph construction iterates `E_in(v) × E_out(v)` per node.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DiGraph<N = (), E = ()> {
    nodes: Vec<N>,
    edges: Vec<EdgeRecord<E>>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }

    /// Creates an empty graph with reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_adj: Vec::with_capacity(nodes),
            in_adj: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node carrying `data` and returns its id.
    pub fn add_node(&mut self, data: N) -> NodeId {
        let id = NodeId::from(self.nodes.len());
        self.nodes.push(data);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds `count` nodes of default payload, returning the first id.
    pub fn add_nodes(&mut self, count: usize) -> NodeId
    where
        N: Default,
    {
        let first = NodeId::from(self.nodes.len());
        for _ in 0..count {
            self.add_node(N::default());
        }
        first
    }

    /// Removes every edge while keeping the nodes and the allocated
    /// capacity of the edge list and per-node adjacency lists, so a scratch
    /// graph (e.g. a Suurballe residual graph) can be rebuilt without
    /// reallocating.
    pub fn clear_edges(&mut self) {
        self.edges.clear();
        for adj in &mut self.out_adj {
            adj.clear();
        }
        for adj in &mut self.in_adj {
            adj.clear();
        }
    }

    /// Adds a directed edge `src -> dst` carrying `data` and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, data: E) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "src {src:?} out of range");
        assert!(dst.index() < self.nodes.len(), "dst {dst:?} out of range");
        let id = EdgeId::from(self.edges.len());
        self.edges.push(EdgeRecord { src, dst, data });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Source node of `e`.
    #[inline]
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].src
    }

    /// Destination node of `e`.
    #[inline]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].dst
    }

    /// `(src, dst)` of `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let r = &self.edges[e.index()];
        (r.src, r.dst)
    }

    /// Payload of node `v`.
    #[inline]
    pub fn node(&self, v: NodeId) -> &N {
        &self.nodes[v.index()]
    }

    /// Mutable payload of node `v`.
    #[inline]
    pub fn node_mut(&mut self, v: NodeId) -> &mut N {
        &mut self.nodes[v.index()]
    }

    /// Payload of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &E {
        &self.edges[e.index()].data
    }

    /// Mutable payload of edge `e`.
    #[inline]
    pub fn edge_mut(&mut self, e: EdgeId) -> &mut E {
        &mut self.edges[e.index()].data
    }

    /// Ids of edges leaving `v` (`E_out(v)` in the paper's notation).
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out_adj[v.index()]
    }

    /// Ids of edges entering `v` (`E_in(v)` in the paper's notation).
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.in_adj[v.index()]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_adj[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_adj[v.index()].len()
    }

    /// Maximum total degree (in + out) over all nodes — the `d` of the
    /// paper's Theorem 1 complexity bound.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|i| self.out_adj[i].len() + self.in_adj[i].len())
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.nodes.len()).map(NodeId::from)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone {
        (0..self.edges.len()).map(EdgeId::from)
    }

    /// Iterator over `(edge id, src, dst, &payload)` in id order.
    pub fn edges_iter(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, r)| (EdgeId::from(i), r.src, r.dst, &r.data))
    }

    /// First edge `src -> dst`, if any (parallel edges return the lowest id).
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_adj[src.index()]
            .iter()
            .copied()
            .find(|&e| self.dst(e) == dst)
    }

    /// All parallel edges `src -> dst`.
    pub fn find_edges(&self, src: NodeId, dst: NodeId) -> Vec<EdgeId> {
        self.out_adj[src.index()]
            .iter()
            .copied()
            .filter(|&e| self.dst(e) == dst)
            .collect()
    }

    /// Builds a new graph containing the same nodes but only the edges
    /// accepted by `keep`. Returns the graph and, for each new edge, the
    /// original edge id (`mapping[new.index()] = old id`).
    pub fn edge_subgraph(
        &self,
        mut keep: impl FnMut(EdgeId) -> bool,
    ) -> (DiGraph<N, E>, Vec<EdgeId>)
    where
        N: Clone,
        E: Clone,
    {
        let mut g = DiGraph::with_capacity(self.node_count(), self.edge_count());
        for n in &self.nodes {
            g.add_node(n.clone());
        }
        let mut mapping = Vec::new();
        for (i, r) in self.edges.iter().enumerate() {
            let e = EdgeId::from(i);
            if keep(e) {
                g.add_edge(r.src, r.dst, r.data.clone());
                mapping.push(e);
            }
        }
        (g, mapping)
    }

    /// The reverse graph (every edge flipped, payloads cloned, ids preserved).
    pub fn reversed(&self) -> DiGraph<N, E>
    where
        N: Clone,
        E: Clone,
    {
        let mut g = DiGraph::with_capacity(self.node_count(), self.edge_count());
        for n in &self.nodes {
            g.add_node(n.clone());
        }
        for r in &self.edges {
            g.add_edge(r.dst, r.src, r.data.clone());
        }
        g
    }

    /// Maps edge payloads, keeping structure and ids.
    pub fn map_edges<E2>(&self, mut f: impl FnMut(EdgeId, &E) -> E2) -> DiGraph<N, E2>
    where
        N: Clone,
    {
        let mut g = DiGraph::with_capacity(self.node_count(), self.edge_count());
        for n in &self.nodes {
            g.add_node(n.clone());
        }
        for (i, r) in self.edges.iter().enumerate() {
            g.add_edge(r.src, r.dst, f(EdgeId::from(i), &r.data));
        }
        g
    }

    /// Total degree of `v` (in + out).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }
}

impl DiGraph<(), f64> {
    /// Convenience constructor for weighted test graphs:
    /// `weighted(n, &[(u, v, w), ...])`.
    pub fn weighted(n: usize, arcs: &[(u32, u32, f64)]) -> Self {
        let mut g = DiGraph::new();
        for _ in 0..n {
            g.add_node(());
        }
        for &(u, v, w) in arcs {
            g.add_edge(NodeId(u), NodeId(v), w);
        }
        g
    }

    /// The weight of edge `e` (payload).
    #[inline]
    pub fn weight(&self, e: EdgeId) -> f64 {
        *self.edge(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_adjacency_both_directions() {
        let mut g: DiGraph<&str, i32> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let e0 = g.add_edge(a, b, 1);
        let e1 = g.add_edge(b, c, 2);
        let e2 = g.add_edge(a, c, 3);

        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_edges(a), &[e0, e2]);
        assert_eq!(g.in_edges(c), &[e1, e2]);
        assert_eq!(g.endpoints(e1), (b, c));
        assert_eq!(*g.edge(e2), 3);
        assert_eq!(*g.node(b), "b");
        assert_eq!(g.max_degree(), 2); // every node touches exactly 2 edges
    }

    #[test]
    fn parallel_edges_have_distinct_ids() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e0 = g.add_edge(a, b, ());
        let e1 = g.add_edge(a, b, ());
        assert_ne!(e0, e1);
        assert_eq!(g.find_edges(a, b), vec![e0, e1]);
        assert_eq!(g.find_edge(a, b), Some(e0));
        assert_eq!(g.find_edge(b, a), None);
    }

    #[test]
    fn edge_subgraph_keeps_mapping() {
        let g = DiGraph::weighted(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let (sub, mapping) = g.edge_subgraph(|e| g.weight(e) >= 2.0);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(mapping, vec![EdgeId(1), EdgeId(2)]);
        assert_eq!(sub.endpoints(EdgeId(0)), (NodeId(1), NodeId(2)));
    }

    #[test]
    fn reversed_flips_endpoints() {
        let g = DiGraph::weighted(2, &[(0, 1, 5.0)]);
        let r = g.reversed();
        assert_eq!(r.endpoints(EdgeId(0)), (NodeId(1), NodeId(0)));
        assert_eq!(r.weight(EdgeId(0)), 5.0);
    }

    #[test]
    fn map_edges_preserves_ids() {
        let g = DiGraph::weighted(2, &[(0, 1, 5.0)]);
        let m = g.map_edges(|_, &w| w as i64 * 2);
        assert_eq!(*m.edge(EdgeId(0)), 10);
        assert_eq!(m.endpoints(EdgeId(0)), (NodeId(0), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_bounds() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(9), ());
    }

    #[test]
    fn add_nodes_bulk() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let first = g.add_nodes(4);
        assert_eq!(first, NodeId(0));
        assert_eq!(g.node_count(), 4);
    }
}
