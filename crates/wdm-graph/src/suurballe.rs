//! Suurballe's algorithm: a minimum-total-cost pair of edge-disjoint
//! directed `s -> t` paths (Suurballe 1974, Suurballe–Tarjan 1984).
//!
//! This is the `Find_Two_Paths` subroutine of the paper (§3.3.2): the
//! approximation algorithms run it on the auxiliary graphs `G'`, `G_c` and
//! `G_rc`. The implementation uses the potential (reduced-cost)
//! formulation so both passes are plain Dijkstra runs on non-negative
//! weights:
//!
//! 1. Dijkstra from `s` gives distances `d(·)` and a shortest path `P1`.
//! 2. Every remaining edge `(u, v)` gets reduced cost
//!    `c(e) + d(u) − d(v) ≥ 0`; the edges of `P1` are removed and replaced
//!    by zero-cost reversals (tree edges are tight, so their reversals cost
//!    exactly 0).
//! 3. A second Dijkstra finds `P2'` in that residual graph.
//! 4. Interleaving removal: edges of `P1` whose reversals `P2'` used cancel
//!    (the `E_intersect` step of the paper's pseudocode); the surviving edge
//!    set decomposes into the two edge-disjoint paths, recovered by walking
//!    from `s` (every interior node has equal in/out degree).
//!
//! Also provided: [`node_disjoint_pair`] via the standard node-splitting
//! transform (the paper's remark that node-disjoint routes additionally
//! survive single *node* failures), and the [`two_step_pair`] baseline that
//! the evaluation compares against (greedy shortest-then-remove, which is
//! both suboptimal and incomplete on "trap" topologies).

use crate::arena::{ResidArc, SearchArena};
use crate::dijkstra::{dijkstra_filtered, dijkstra_filtered_to};
use crate::{DiGraph, EdgeId, NodeId, Path};

/// A pair of edge-disjoint paths with their summed cost.
#[derive(Debug, Clone)]
pub struct DisjointPair {
    /// The two paths; `paths\[0\]` is the cheaper of the two.
    pub paths: [Path; 2],
    /// Total cost of both paths under the cost function used to find them.
    pub total_cost: f64,
}

impl DisjointPair {
    /// Verifies edge-disjointness (always true for algorithm output; public
    /// for tests and defensive callers).
    pub fn is_edge_disjoint(&self) -> bool {
        !self.paths[0].shares_edge_with(&self.paths[1])
    }
}

/// Minimum-cost pair of edge-disjoint `s -> t` paths over edges accepted by
/// `filter`, with per-edge costs from `cost` (must be non-negative).
///
/// Returns `None` when fewer than two edge-disjoint paths exist (including
/// `s == t`, for which the problem is degenerate).
///
/// ```
/// use wdm_graph::{DiGraph, NodeId};
/// use wdm_graph::suurballe::edge_disjoint_pair;
///
/// // The classic trap: the single shortest path blocks the naive
/// // two-step approach, but Suurballe re-routes around it.
/// let g = DiGraph::weighted(4, &[
///     (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), // cheap chain
///     (0, 2, 10.0), (1, 3, 10.0),            // expensive detours
/// ]);
/// let pair = edge_disjoint_pair(&g, NodeId(0), NodeId(3), |e| g.weight(e)).unwrap();
/// assert!(pair.is_edge_disjoint());
/// assert_eq!(pair.total_cost, 22.0); // {0-1-3, 0-2-3}
/// ```
pub fn edge_disjoint_pair_filtered<N, E>(
    g: &DiGraph<N, E>,
    s: NodeId,
    t: NodeId,
    cost: impl FnMut(EdgeId) -> f64,
    filter: impl FnMut(EdgeId) -> bool,
) -> Option<DisjointPair> {
    // The algorithm lives in `SearchArena` so hot loops can reuse the
    // working buffers; a one-shot call just uses a throwaway arena.
    SearchArena::new().edge_disjoint_pair(g, s, t, cost, filter)
}

/// [`edge_disjoint_pair_filtered`] over all edges.
pub fn edge_disjoint_pair<N, E>(
    g: &DiGraph<N, E>,
    s: NodeId,
    t: NodeId,
    cost: impl FnMut(EdgeId) -> f64,
) -> Option<DisjointPair> {
    edge_disjoint_pair_filtered(g, s, t, cost, |_| true)
}

/// Minimum-cost pair of *internally node-disjoint* `s -> t` paths, via the
/// node-splitting reduction: each node `v ∉ {s, t}` becomes `v_in -> v_out`
/// with a zero-cost arc, original edges go `u_out -> v_in`; edge-disjoint
/// paths in the split graph are node-disjoint in the original.
pub fn node_disjoint_pair<N, E>(
    g: &DiGraph<N, E>,
    s: NodeId,
    t: NodeId,
    mut cost: impl FnMut(EdgeId) -> f64,
) -> Option<DisjointPair> {
    if s == t {
        return None;
    }
    let n = g.node_count();
    // Split ids: v_in = 2v, v_out = 2v + 1.
    let mut split: DiGraph<(), Option<EdgeId>> = DiGraph::with_capacity(2 * n, g.edge_count() + n);
    for _ in 0..2 * n {
        split.add_node(());
    }
    let vin = |v: NodeId| NodeId(2 * v.0);
    let vout = |v: NodeId| NodeId(2 * v.0 + 1);
    for v in g.node_ids() {
        // s and t keep infinite "capacity": give them the splitter arc too,
        // it cannot be shared because paths only leave s_out / enter t_in.
        split.add_edge(vin(v), vout(v), None);
    }
    let mut costs: Vec<f64> = Vec::with_capacity(g.edge_count());
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        split.add_edge(vout(u), vin(v), Some(e));
        costs.push(cost(e));
    }
    let pair = edge_disjoint_pair(&split, vout(s), vin(t), |se| match split.edge(se) {
        None => 0.0,
        Some(orig) => costs[orig.index()],
    })?;
    // Map back: keep only original-edge arcs.
    let map_path = |p: &Path| -> Path {
        let edges: Vec<EdgeId> = p.edges.iter().filter_map(|&se| *split.edge(se)).collect();
        Path {
            src: s,
            dst: t,
            edges,
        }
    };
    let a = map_path(&pair.paths[0]);
    let b = map_path(&pair.paths[1]);
    let total = a.cost(&mut cost) + b.cost(&mut cost);
    Some(DisjointPair {
        paths: [a, b],
        total_cost: total,
    })
}

/// Bhandari's variant of the disjoint-pair computation: instead of the
/// reduced-cost (potential) transformation, the second pass runs
/// Bellman–Ford directly on the residual graph whose `P1` edges are
/// replaced by reversals with *negated* costs. Same optimal result as
/// [`edge_disjoint_pair`], simpler transformation, slower second pass
/// (O(nm) vs O(m log n)) — kept as an independent implementation for
/// cross-validation and as the textbook alternative.
pub fn bhandari_pair<N, E>(
    g: &DiGraph<N, E>,
    s: NodeId,
    t: NodeId,
    mut cost: impl FnMut(EdgeId) -> f64,
) -> Option<DisjointPair> {
    if s == t {
        return None;
    }
    let tree1 = dijkstra_filtered(g, s, &mut cost, |_| true);
    if !tree1.reached(t) {
        return None;
    }
    let p1 = tree1.path_to(g, t).expect("t is reached");
    let mut on_p1 = vec![false; g.edge_count()];
    for &e in &p1.edges {
        on_p1[e.index()] = true;
    }

    // Residual graph with raw (possibly negative) costs on reversals.
    let mut resid: DiGraph<(), ResidArc> = DiGraph::with_capacity(g.node_count(), g.edge_count());
    for _ in 0..g.node_count() {
        resid.add_node(());
    }
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        if on_p1[e.index()] {
            resid.add_edge(
                v,
                u,
                ResidArc {
                    reduced: -cost(e),
                    orig: e,
                    reversed: true,
                },
            );
        } else {
            resid.add_edge(
                u,
                v,
                ResidArc {
                    reduced: cost(e),
                    orig: e,
                    reversed: false,
                },
            );
        }
    }
    // No negative cycles exist: P1 is a shortest path, so its reversals
    // cannot close a negative loop with forward edges.
    let tree2 = match crate::bellman_ford::bellman_ford(&resid, s, |e| resid.edge(e).reduced) {
        crate::bellman_ford::BellmanFord::Tree(t) => t,
        crate::bellman_ford::BellmanFord::NegativeCycle(_) => return None,
    };
    if !tree2.reached(t) {
        return None;
    }
    let p2 = tree2.path_to(&resid, t).expect("t is reached");

    // Interleaving removal, identical to the Suurballe epilogue.
    let mut in_set = on_p1;
    for &re in &p2.edges {
        let arc = resid.edge(re);
        in_set[arc.orig.index()] = !arc.reversed;
    }
    let mut out_lists: Vec<Vec<EdgeId>> = vec![Vec::new(); g.node_count()];
    let mut total = 0.0;
    for e in g.edge_ids() {
        if in_set[e.index()] {
            out_lists[g.src(e).index()].push(e);
            total += cost(e);
        }
    }
    let mut walk = || -> Path {
        let mut edges = Vec::new();
        let mut at = s;
        while at != t {
            let e = out_lists[at.index()]
                .pop()
                .expect("balanced edge set cannot strand a walk before t");
            edges.push(e);
            at = g.dst(e);
        }
        Path {
            src: s,
            dst: t,
            edges,
        }
    };
    let a = walk();
    let b = walk();
    let (first, second) = if a.cost(&mut cost) <= b.cost(&mut cost) {
        (a, b)
    } else {
        (b, a)
    };
    Some(DisjointPair {
        paths: [first, second],
        total_cost: total,
    })
}

/// The greedy two-step baseline: shortest path, delete its edges, shortest
/// path again. Cheaper to compute than Suurballe but (a) may fail on trap
/// topologies where disjoint pairs exist, and (b) is suboptimal in general.
pub fn two_step_pair<N, E>(
    g: &DiGraph<N, E>,
    s: NodeId,
    t: NodeId,
    mut cost: impl FnMut(EdgeId) -> f64,
) -> Option<DisjointPair> {
    if s == t {
        return None;
    }
    let tree1 = dijkstra_filtered(g, s, &mut cost, |_| true);
    let p1 = tree1.path_to(g, t)?;
    let mut banned = vec![false; g.edge_count()];
    for &e in &p1.edges {
        banned[e.index()] = true;
    }
    // The second pass only needs a path to `t`, not the full tree: stop as
    // soon as `t` is settled (its distance and pred chain are exact then).
    let tree2 = dijkstra_filtered_to(g, s, t, &mut cost, |e| !banned[e.index()]);
    let p2 = tree2.path_to(g, t)?;
    let total = p1.cost(&mut cost) + p2.cost(&mut cost);
    let (a, b) = if p1.cost(&mut cost) <= p2.cost(&mut cost) {
        (p1, p2)
    } else {
        (p2, p1)
    };
    Some(DisjointPair {
        paths: [a, b],
        total_cost: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic Suurballe teaching example: the greedy shortest path goes
    /// through the middle and must be partially undone by the second pass.
    fn suurballe_classic() -> DiGraph<(), f64> {
        // Nodes: 0=A 1=B 2=C 3=D 4=E 5=F (Wikipedia's example).
        DiGraph::weighted(
            6,
            &[
                (0, 1, 1.0), // A-B
                (0, 2, 2.0), // A-C
                (1, 3, 1.0), // B-D
                (2, 3, 2.0), // C-D
                (1, 4, 2.0), // B-E
                (4, 5, 2.0), // E-F
                (3, 5, 1.0), // D-F
                (2, 4, 2.0), // C-E (extra, harmless)
            ],
        )
    }

    #[test]
    fn classic_example_total_cost() {
        let g = suurballe_classic();
        let pair = edge_disjoint_pair(&g, NodeId(0), NodeId(5), |e| g.weight(e)).unwrap();
        // Optimal: A-B-D-F (3) + A-C-E... wait for this arc set the optimum
        // pair is {A-B-D-F = 3, A-C-D... not disjoint}; check invariants and
        // the known optimum 3 + 6? Verified by exhaustive enumeration below.
        assert!(pair.is_edge_disjoint());
        assert!(pair.paths[0].is_valid_walk(&g));
        assert!(pair.paths[1].is_valid_walk(&g));
        let brute = brute_force_best_pair(&g, NodeId(0), NodeId(5));
        assert_eq!(pair.total_cost, brute.unwrap());
    }

    /// Exhaustive enumeration of edge-disjoint path pairs (tiny graphs only).
    fn brute_force_best_pair(g: &DiGraph<(), f64>, s: NodeId, t: NodeId) -> Option<f64> {
        let mut paths: Vec<(Vec<EdgeId>, f64)> = Vec::new();
        // DFS over simple paths.
        fn dfs(
            g: &DiGraph<(), f64>,
            at: NodeId,
            t: NodeId,
            seen: &mut Vec<bool>,
            cur: &mut Vec<EdgeId>,
            cost: f64,
            out: &mut Vec<(Vec<EdgeId>, f64)>,
        ) {
            if at == t {
                out.push((cur.clone(), cost));
                return;
            }
            for &e in g.out_edges(at) {
                let v = g.dst(e);
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    cur.push(e);
                    dfs(g, v, t, seen, cur, cost + g.weight(e), out);
                    cur.pop();
                    seen[v.index()] = false;
                }
            }
        }
        let mut seen = vec![false; g.node_count()];
        seen[s.index()] = true;
        dfs(g, s, t, &mut seen, &mut Vec::new(), 0.0, &mut paths);
        let mut best: Option<f64> = None;
        for i in 0..paths.len() {
            for j in 0..paths.len() {
                if i == j {
                    continue;
                }
                let disjoint = paths[i].0.iter().all(|e| !paths[j].0.contains(e));
                if disjoint {
                    let tot = paths[i].1 + paths[j].1;
                    best = Some(best.map_or(tot, |b: f64| b.min(tot)));
                }
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..60 {
            let n = rng.gen_range(4..8);
            let mut arcs = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.45) {
                        arcs.push((u, v, rng.gen_range(1..20) as f64));
                    }
                }
            }
            let g = DiGraph::weighted(n as usize, &arcs);
            let s = NodeId(0);
            let t = NodeId(n - 1);
            let ours = edge_disjoint_pair(&g, s, t, |e| g.weight(e));
            let brute = brute_force_best_pair(&g, s, t);
            match (ours, brute) {
                (None, None) => {}
                (Some(pair), Some(best)) => {
                    assert!(
                        (pair.total_cost - best).abs() < 1e-9,
                        "trial {trial}: suurballe {} vs brute {best}",
                        pair.total_cost
                    );
                    assert!(pair.is_edge_disjoint());
                }
                (ours, brute) => panic!("trial {trial}: existence mismatch {ours:?} vs {brute:?}"),
            }
        }
    }

    #[test]
    fn trap_topology_beats_two_step() {
        // Trap: the single shortest path uses the only edge into t from one
        // side, leaving no second disjoint path for the greedy baseline,
        // while a disjoint pair exists.
        //      0 -> 1 (1)   1 -> 3 (1)
        //      0 -> 2 (10)  2 -> 3 (10)
        //      1 -> 2 (1)
        // Greedy shortest: 0-1-3 (2). Removing it leaves 0-2-3 (20): works
        // here. Harder trap: make the shortest path pass 0-1-2-3.
        let g = DiGraph::weighted(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (0, 2, 10.0),
                (1, 3, 10.0),
            ],
        );
        // Greedy picks 0-1-2-3 (3); removal disconnects... 0-2 and 1-3
        // remain but 0->2->? 2->3 is used. Two-step fails.
        let greedy = two_step_pair(&g, NodeId(0), NodeId(3), |e| g.weight(e));
        assert!(greedy.is_none(), "two-step should fail on the trap");
        let pair = edge_disjoint_pair(&g, NodeId(0), NodeId(3), |e| g.weight(e)).unwrap();
        assert!(pair.is_edge_disjoint());
        // Pair must be {0-1-3, 0-2-3} with total 22.
        assert_eq!(pair.total_cost, 22.0);
    }

    #[test]
    fn bhandari_agrees_with_suurballe_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..60 {
            let n = rng.gen_range(4..12);
            let mut arcs = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.35) {
                        arcs.push((u, v, rng.gen_range(1..40) as f64));
                    }
                }
            }
            let g = DiGraph::weighted(n as usize, &arcs);
            let s = NodeId(0);
            let t = NodeId(n - 1);
            let a = edge_disjoint_pair(&g, s, t, |e| g.weight(e));
            let b = bhandari_pair(&g, s, t, |e| g.weight(e));
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert!(
                        (x.total_cost - y.total_cost).abs() < 1e-9,
                        "trial {trial}: suurballe {} vs bhandari {}",
                        x.total_cost,
                        y.total_cost
                    );
                    assert!(y.is_edge_disjoint());
                }
                (a, b) => panic!("trial {trial}: existence mismatch {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn bhandari_solves_the_trap() {
        let g = DiGraph::weighted(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (0, 2, 10.0),
                (1, 3, 10.0),
            ],
        );
        let pair = bhandari_pair(&g, NodeId(0), NodeId(3), |e| g.weight(e)).unwrap();
        assert_eq!(pair.total_cost, 22.0);
        assert!(pair.is_edge_disjoint());
    }

    #[test]
    fn no_pair_in_bridge_graph() {
        // All routes share the bridge 1 -> 2.
        let g = DiGraph::weighted(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (0, 1, 2.0),
                (2, 3, 2.0),
            ],
        );
        assert!(edge_disjoint_pair(&g, NodeId(0), NodeId(3), |e| g.weight(e)).is_none());
    }

    #[test]
    fn parallel_edges_form_a_pair() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 3.0);
        let pair = edge_disjoint_pair(&g, a, b, |e| g.weight(e)).unwrap();
        assert_eq!(pair.total_cost, 4.0);
        assert!(pair.is_edge_disjoint());
        assert_eq!(pair.paths[0].cost(|e| g.weight(e)), 1.0);
    }

    #[test]
    fn source_equals_target_is_none() {
        let g = DiGraph::weighted(2, &[(0, 1, 1.0)]);
        assert!(edge_disjoint_pair(&g, NodeId(0), NodeId(0), |e| g.weight(e)).is_none());
    }

    #[test]
    fn node_disjoint_is_stricter() {
        // Two edge-disjoint paths exist but they share node 2; no two
        // node-disjoint paths exist.
        let g = DiGraph::weighted(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (0, 2, 5.0),
                (2, 4, 5.0),
            ],
        );
        let edge_pair = edge_disjoint_pair(&g, NodeId(0), NodeId(4), |e| g.weight(e));
        assert!(edge_pair.is_some());
        let node_pair = node_disjoint_pair(&g, NodeId(0), NodeId(4), |e| g.weight(e));
        assert!(node_pair.is_none());
    }

    #[test]
    fn node_disjoint_pair_on_diamond() {
        let g = DiGraph::weighted(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)]);
        let pair = node_disjoint_pair(&g, NodeId(0), NodeId(3), |e| g.weight(e)).unwrap();
        assert_eq!(pair.total_cost, 6.0);
        assert!(!pair.paths[0].shares_interior_node_with(&pair.paths[1], &g));
    }

    #[test]
    fn cheaper_path_listed_first() {
        let g = DiGraph::weighted(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 5.0), (2, 3, 5.0)]);
        let pair = edge_disjoint_pair(&g, NodeId(0), NodeId(3), |e| g.weight(e)).unwrap();
        assert!(pair.paths[0].cost(|e| g.weight(e)) <= pair.paths[1].cost(|e| g.weight(e)));
    }

    #[test]
    fn two_step_works_when_no_trap() {
        let g = DiGraph::weighted(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 5.0), (2, 3, 5.0)]);
        let pair = two_step_pair(&g, NodeId(0), NodeId(3), |e| g.weight(e)).unwrap();
        assert_eq!(pair.total_cost, 12.0);
        assert!(pair.is_edge_disjoint());
    }

    /// `two_step_pair` with a full (non-pruned) second pass — the reference
    /// for the early-exit differential test below.
    fn two_step_pair_unpruned<N, E>(
        g: &DiGraph<N, E>,
        s: NodeId,
        t: NodeId,
        mut cost: impl FnMut(EdgeId) -> f64,
    ) -> Option<DisjointPair> {
        if s == t {
            return None;
        }
        let tree1 = dijkstra_filtered(g, s, &mut cost, |_| true);
        let p1 = tree1.path_to(g, t)?;
        let mut banned = vec![false; g.edge_count()];
        for &e in &p1.edges {
            banned[e.index()] = true;
        }
        let tree2 = dijkstra_filtered(g, s, &mut cost, |e| !banned[e.index()]);
        let p2 = tree2.path_to(g, t)?;
        let total = p1.cost(&mut cost) + p2.cost(&mut cost);
        let (a, b) = if p1.cost(&mut cost) <= p2.cost(&mut cost) {
            (p1, p2)
        } else {
            (p2, p1)
        };
        Some(DisjointPair {
            paths: [a, b],
            total_cost: total,
        })
    }

    #[test]
    fn two_step_early_exit_matches_unpruned_run() {
        use crate::topology::random_connected;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x75);
        for trial in 0..60 {
            let n = rng.gen_range(6..40);
            let m = n + rng.gen_range(0..2 * n);
            let g = random_connected(n, m, 1.0..10.0, &mut rng);
            let s = NodeId(rng.gen_range(0..n as u32));
            let mut t = NodeId(rng.gen_range(0..n as u32));
            if s == t {
                t = NodeId((t.0 + 1) % n as u32);
            }
            let pruned = two_step_pair(&g, s, t, |e| g.weight(e));
            let full = two_step_pair_unpruned(&g, s, t, |e| g.weight(e));
            match (pruned, full) {
                (None, None) => {}
                (Some(p), Some(f)) => {
                    assert_eq!(
                        p.paths[0].edges, f.paths[0].edges,
                        "trial {trial}: first paths diverge"
                    );
                    assert_eq!(
                        p.paths[1].edges, f.paths[1].edges,
                        "trial {trial}: second paths diverge"
                    );
                    assert_eq!(p.total_cost, f.total_cost, "trial {trial}: costs diverge");
                }
                (p, f) => panic!(
                    "trial {trial}: feasibility diverges (pruned {:?}, full {:?})",
                    p.is_some(),
                    f.is_some()
                ),
            }
        }
    }
}
