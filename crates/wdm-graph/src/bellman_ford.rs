//! Bellman–Ford single-source shortest paths.
//!
//! Used where Dijkstra's non-negativity precondition does not hold: as a
//! correctness oracle for the reduced-cost transformation inside Suurballe's
//! algorithm, and by the min-cost-flow initial potential computation when a
//! cost function may be negative.

use crate::dijkstra::ShortestPathTree;
use crate::{DiGraph, EdgeId, NodeId};

/// Outcome of a Bellman–Ford run.
#[derive(Debug, Clone)]
pub enum BellmanFord {
    /// Shortest-path tree (no negative cycle reachable from the source).
    Tree(ShortestPathTree),
    /// A negative-weight cycle reachable from the source, given as its edge
    /// sequence.
    NegativeCycle(Vec<EdgeId>),
}

impl BellmanFord {
    /// Unwraps the tree, panicking on a negative cycle.
    pub fn expect_tree(self, msg: &str) -> ShortestPathTree {
        match self {
            BellmanFord::Tree(t) => t,
            BellmanFord::NegativeCycle(c) => panic!("{msg}: negative cycle {c:?}"),
        }
    }
}

/// Bellman–Ford from `source` with arbitrary (possibly negative) costs.
///
/// Runs `n - 1` relaxation rounds with an early-exit when a round changes
/// nothing, then one detection round. O(nm) worst case.
pub fn bellman_ford<N, E>(
    g: &DiGraph<N, E>,
    source: NodeId,
    mut cost: impl FnMut(EdgeId) -> f64,
) -> BellmanFord {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<EdgeId>> = vec![None; n];
    dist[source.index()] = 0.0;

    let mut changed = true;
    for _round in 0..n.saturating_sub(1) {
        if !changed {
            break;
        }
        changed = false;
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            if dist[u.index()].is_finite() {
                let nd = dist[u.index()] + cost(e);
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    pred[v.index()] = Some(e);
                    changed = true;
                }
            }
        }
    }

    // Detection round: any further improvement implies a negative cycle.
    if changed {
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            if dist[u.index()].is_finite() && dist[u.index()] + cost(e) < dist[v.index()] - 1e-12 {
                return BellmanFord::NegativeCycle(extract_cycle(g, &pred, v, e));
            }
        }
    }

    BellmanFord::Tree(ShortestPathTree { source, dist, pred })
}

/// Walks `pred` pointers back from an improvable node to find the cycle.
fn extract_cycle<N, E>(
    g: &DiGraph<N, E>,
    pred: &[Option<EdgeId>],
    start: NodeId,
    improving: EdgeId,
) -> Vec<EdgeId> {
    // After n relaxations, walking n steps back from `start` is guaranteed
    // to land inside the cycle.
    let mut at = start;
    for _ in 0..pred.len() {
        if let Some(e) = pred[at.index()] {
            at = g.src(e);
        }
    }
    // Collect edges around the cycle.
    let anchor = at;
    let mut cycle = Vec::new();
    loop {
        let e = pred[at.index()].unwrap_or(improving);
        cycle.push(e);
        at = g.src(e);
        if at == anchor {
            break;
        }
    }
    cycle.reverse();
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;

    #[test]
    fn agrees_with_dijkstra_on_nonnegative() {
        let g = DiGraph::weighted(
            5,
            &[
                (0, 1, 10.0),
                (0, 3, 5.0),
                (1, 2, 1.0),
                (1, 3, 2.0),
                (2, 4, 4.0),
                (3, 1, 3.0),
                (3, 2, 9.0),
                (3, 4, 2.0),
                (4, 0, 7.0),
                (4, 2, 6.0),
            ],
        );
        let bf = bellman_ford(&g, NodeId(0), |e| g.weight(e)).expect_tree("no neg cycle");
        let dj = dijkstra(&g, NodeId(0), |e| g.weight(e));
        assert_eq!(bf.dist, dj.dist);
    }

    #[test]
    fn handles_negative_edges_without_cycle() {
        let g = DiGraph::weighted(4, &[(0, 1, 4.0), (0, 2, 2.0), (2, 1, -3.0), (1, 3, 1.0)]);
        let bf = bellman_ford(&g, NodeId(0), |e| g.weight(e)).expect_tree("ok");
        assert_eq!(bf.dist, vec![0.0, -1.0, 2.0, 0.0]);
    }

    #[test]
    fn detects_negative_cycle() {
        let g = DiGraph::weighted(3, &[(0, 1, 1.0), (1, 2, -2.0), (2, 1, 1.0)]);
        match bellman_ford(&g, NodeId(0), |e| g.weight(e)) {
            BellmanFord::NegativeCycle(cycle) => {
                // The cycle is 1 -> 2 -> 1 with total weight -1.
                let total: f64 = cycle.iter().map(|&e| g.weight(e)).sum();
                assert!(total < 0.0, "reported cycle has weight {total}");
                // It must actually be a cycle.
                let first_src = g.src(cycle[0]);
                let last_dst = g.dst(*cycle.last().unwrap());
                assert_eq!(first_src, last_dst);
            }
            BellmanFord::Tree(_) => panic!("missed negative cycle"),
        }
    }

    #[test]
    fn negative_cycle_unreachable_from_source_is_ignored() {
        // Cycle 2 <-> 3 is negative but 0 cannot reach it.
        let g = DiGraph::weighted(4, &[(0, 1, 1.0), (2, 3, -5.0), (3, 2, 1.0)]);
        let bf = bellman_ford(&g, NodeId(0), |e| g.weight(e));
        assert!(matches!(bf, BellmanFord::Tree(_)));
    }

    #[test]
    fn early_exit_on_converged_rounds() {
        // A long path graph converges in few rounds thanks to edge order.
        let arcs: Vec<(u32, u32, f64)> = (0..99).map(|i| (i, i + 1, 1.0)).collect();
        let g = DiGraph::weighted(100, &arcs);
        let bf = bellman_ford(&g, NodeId(0), |e| g.weight(e)).expect_tree("ok");
        assert_eq!(bf.dist[99], 99.0);
    }
}
