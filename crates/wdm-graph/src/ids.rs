//! Dense integer identifiers for nodes and edges.
//!
//! Newtypes over `u32` keep index spaces apart at the type level while
//! staying `Copy` and 4 bytes — graph algorithms index flat `Vec`s with
//! them, never hash maps.

use std::fmt;

/// Identifier of a node in a [`DiGraph`](crate::DiGraph).
///
/// Node ids are dense: a graph with `n` nodes uses exactly `0..n`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge in a [`DiGraph`](crate::DiGraph).
///
/// Edge ids are dense: a graph with `m` edges uses exactly `0..m`. Parallel
/// edges receive distinct ids, which is what makes edge-disjointness of
/// semilightpaths well defined on multigraphs.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

impl From<usize> for EdgeId {
    #[inline]
    fn from(i: usize) -> Self {
        EdgeId(u32::try_from(i).expect("edge index exceeds u32"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let n = NodeId::from(7usize);
        assert_eq!(n.index(), 7);
        let e = EdgeId::from(11usize);
        assert_eq!(e.index(), 11);
    }

    #[test]
    fn debug_formats_are_tagged() {
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
        assert_eq!(format!("{:?}", EdgeId(4)), "e4");
        assert_eq!(format!("{}", NodeId(3)), "3");
    }
}
