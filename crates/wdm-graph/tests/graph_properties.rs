//! Property-based cross-checks between the independent shortest-path and
//! disjoint-path implementations.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_graph::bellman_ford::{bellman_ford, BellmanFord};
use wdm_graph::dijkstra::{dijkstra, dijkstra_csr, dijkstra_to};
use wdm_graph::ksp::yen_k_shortest;
use wdm_graph::suurballe::{edge_disjoint_pair, two_step_pair};
use wdm_graph::traverse::{bfs_distances, edge_connectivity, reachable_from};
use wdm_graph::{Csr, DiGraph, NodeId};

fn random_graph(seed: u64, max_n: u32, p: f64) -> DiGraph<(), f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = rng.gen_range(3..max_n);
    let mut arcs = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                arcs.push((u, v, rng.gen_range(1..50) as f64));
            }
        }
    }
    DiGraph::weighted(n as usize, &arcs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn dijkstra_agrees_with_bellman_ford(seed in 0u64..100_000) {
        let g = random_graph(seed, 15, 0.3);
        let d = dijkstra(&g, NodeId(0), |e| g.weight(e));
        let bf = bellman_ford(&g, NodeId(0), |e| g.weight(e));
        let BellmanFord::Tree(bf) = bf else {
            return Err(TestCaseError::fail("non-negative graph reported a negative cycle"));
        };
        for v in 0..g.node_count() {
            prop_assert!((d.dist[v] - bf.dist[v]).abs() < 1e-9
                || (d.dist[v].is_infinite() && bf.dist[v].is_infinite()));
        }
    }

    #[test]
    fn csr_dijkstra_agrees_with_list_dijkstra(seed in 0u64..100_000) {
        let g = random_graph(seed, 20, 0.25);
        let csr = Csr::from_weighted(&g);
        let a = dijkstra(&g, NodeId(0), |e| g.weight(e));
        let b = dijkstra_csr(&csr, NodeId(0));
        prop_assert_eq!(a.dist, b.dist);
    }

    #[test]
    fn early_exit_dijkstra_matches_full(seed in 0u64..100_000) {
        let g = random_graph(seed, 15, 0.3);
        let t = NodeId((g.node_count() - 1) as u32);
        let full = dijkstra(&g, NodeId(0), |e| g.weight(e));
        let early = dijkstra_to(&g, NodeId(0), t, |e| g.weight(e));
        prop_assert_eq!(full.distance(t), early.distance(t));
    }

    #[test]
    fn yen_first_path_is_shortest_and_list_is_sorted(seed in 0u64..100_000) {
        let g = random_graph(seed, 10, 0.35);
        let t = NodeId((g.node_count() - 1) as u32);
        let paths = yen_k_shortest(&g, NodeId(0), t, 5, |e| g.weight(e));
        let d = dijkstra(&g, NodeId(0), |e| g.weight(e));
        match (paths.first(), d.distance(t)) {
            (Some(p), Some(dist)) => {
                prop_assert!((p.cost(|e| g.weight(e)) - dist).abs() < 1e-9);
            }
            (None, None) => {}
            other => return Err(TestCaseError::fail(format!("mismatch {other:?}"))),
        }
        for w in paths.windows(2) {
            prop_assert!(w[0].cost(|e| g.weight(e)) <= w[1].cost(|e| g.weight(e)) + 1e-9);
            prop_assert!(w[0].is_simple(&g) && w[1].is_simple(&g));
        }
    }

    #[test]
    fn suurballe_feasibility_matches_edge_connectivity(seed in 0u64..100_000) {
        let g = random_graph(seed, 12, 0.25);
        let t = NodeId((g.node_count() - 1) as u32);
        let pair = edge_disjoint_pair(&g, NodeId(0), t, |e| g.weight(e));
        let k = edge_connectivity(&g, NodeId(0), t);
        prop_assert_eq!(pair.is_some(), k >= 2, "connectivity {} vs pair {:?}", k, pair.is_some());
    }

    #[test]
    fn two_step_never_beats_suurballe(seed in 0u64..100_000) {
        let g = random_graph(seed, 12, 0.3);
        let t = NodeId((g.node_count() - 1) as u32);
        let opt = edge_disjoint_pair(&g, NodeId(0), t, |e| g.weight(e));
        let greedy = two_step_pair(&g, NodeId(0), t, |e| g.weight(e));
        if let (Some(o), Some(gr)) = (&opt, &greedy) {
            prop_assert!(o.total_cost <= gr.total_cost + 1e-9);
        }
        // If greedy succeeds, the optimum must exist too.
        if greedy.is_some() {
            prop_assert!(opt.is_some());
        }
    }

    #[test]
    fn suurballe_total_at_least_twice_shortest(seed in 0u64..100_000) {
        let g = random_graph(seed, 12, 0.3);
        let t = NodeId((g.node_count() - 1) as u32);
        if let Some(pair) = edge_disjoint_pair(&g, NodeId(0), t, |e| g.weight(e)) {
            let d = dijkstra(&g, NodeId(0), |e| g.weight(e))
                .distance(t)
                .expect("pair implies reachable");
            prop_assert!(pair.total_cost + 1e-9 >= 2.0 * d);
            // And each leg individually costs at least the shortest path.
            for p in &pair.paths {
                prop_assert!(p.cost(|e| g.weight(e)) + 1e-9 >= d);
            }
        }
    }

    #[test]
    fn bfs_reachability_consistent_with_dijkstra(seed in 0u64..100_000) {
        let g = random_graph(seed, 15, 0.2);
        let reach = reachable_from(&g, NodeId(0));
        let hops = bfs_distances(&g, NodeId(0));
        let d = dijkstra(&g, NodeId(0), |e| g.weight(e));
        for v in 0..g.node_count() {
            prop_assert_eq!(reach[v], d.dist[v].is_finite());
            prop_assert_eq!(reach[v], hops[v] != usize::MAX);
        }
    }
}
