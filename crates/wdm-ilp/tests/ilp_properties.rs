//! Property tests: branch-and-bound must agree with exhaustive enumeration
//! on random small pure-binary programs, and LP relaxations must lower-bound
//! the integer optimum.

use proptest::prelude::*;
use wdm_ilp::{solve_ilp, Cmp, IlpOptions, IlpStatus, LinExpr, Model};

/// A random binary program: n vars, a few random <=/>=/== constraints.
#[derive(Debug, Clone)]
struct RandomBip {
    n: usize,
    obj: Vec<i32>,
    cons: Vec<(Vec<i32>, u8, i32)>, // coefs, op (0 Le, 1 Ge, 2 Eq), rhs
}

fn bip_strategy() -> impl Strategy<Value = RandomBip> {
    (2usize..7)
        .prop_flat_map(|n| {
            let obj = proptest::collection::vec(-9i32..10, n);
            let con = (proptest::collection::vec(-4i32..5, n), 0u8..3, -6i32..10);
            let cons = proptest::collection::vec(con, 0..4);
            (Just(n), obj, cons)
        })
        .prop_map(|(n, obj, cons)| RandomBip { n, obj, cons })
}

/// Exhaustive 2^n enumeration of the binary program.
fn brute_force(bip: &RandomBip) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << bip.n) {
        let x: Vec<f64> = (0..bip.n).map(|i| ((mask >> i) & 1) as f64).collect();
        let ok = bip.cons.iter().all(|(coefs, op, rhs)| {
            let lhs: f64 = coefs.iter().zip(&x).map(|(&c, &xi)| c as f64 * xi).sum();
            match op {
                0 => lhs <= *rhs as f64 + 1e-9,
                1 => lhs >= *rhs as f64 - 1e-9,
                _ => (lhs - *rhs as f64).abs() < 1e-9,
            }
        });
        if ok {
            let obj: f64 = bip.obj.iter().zip(&x).map(|(&c, &xi)| c as f64 * xi).sum();
            best = Some(best.map_or(obj, |b: f64| b.min(obj)));
        }
    }
    best
}

fn build_model(bip: &RandomBip) -> Model {
    let mut m = Model::minimize();
    let vars: Vec<_> = (0..bip.n).map(|i| m.binary(format!("x{i}"))).collect();
    for (coefs, op, rhs) in &bip.cons {
        let mut e = LinExpr::new();
        for (i, &c) in coefs.iter().enumerate() {
            e.add_term(vars[i], c as f64);
        }
        let cmp = match op {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        m.constrain(e, cmp, *rhs as f64);
    }
    let mut obj = LinExpr::new();
    for (i, &c) in bip.obj.iter().enumerate() {
        obj.add_term(vars[i], c as f64);
    }
    m.set_objective(obj);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn branch_and_bound_matches_brute_force(bip in bip_strategy()) {
        let m = build_model(&bip);
        let res = solve_ilp(&m, &IlpOptions::default());
        let brute = brute_force(&bip);
        match (res.status, brute) {
            (IlpStatus::Infeasible, None) => {}
            (IlpStatus::Optimal, Some(best)) => {
                let got = res.obj.unwrap();
                prop_assert!((got - best).abs() < 1e-6,
                    "b&b found {got}, brute force {best}");
                // Returned point must be feasible for the model.
                prop_assert!(m.is_feasible(&res.x.unwrap(), 1e-6));
            }
            (status, brute) => prop_assert!(false,
                "status {status:?} vs brute-force {brute:?}"),
        }
    }
}
