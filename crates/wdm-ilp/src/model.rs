//! Modelling layer: variables, linear expressions, constraints.

/// Identifier of a model variable (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Variable domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// Continuous within `[lo, hi]` (`hi` may be `f64::INFINITY`).
    Continuous { lo: f64, hi: f64 },
    /// Integer within `[lo, hi]`.
    Integer { lo: f64, hi: f64 },
    /// Binary `{0, 1}` (an integer with bounds 0..1).
    Binary,
}

impl VarKind {
    /// Lower bound of the domain.
    pub fn lo(&self) -> f64 {
        match *self {
            VarKind::Continuous { lo, .. } | VarKind::Integer { lo, .. } => lo,
            VarKind::Binary => 0.0,
        }
    }

    /// Upper bound of the domain.
    pub fn hi(&self) -> f64 {
        match *self {
            VarKind::Continuous { hi, .. } | VarKind::Integer { hi, .. } => hi,
            VarKind::Binary => 1.0,
        }
    }

    /// Whether the variable must take an integer value.
    pub fn is_integer(&self) -> bool {
        !matches!(self, VarKind::Continuous { .. })
    }
}

/// A linear expression `Σ coefᵢ · xᵢ + constant`.
///
/// Duplicate variables are allowed while building; [`LinExpr::compact`]
/// merges them (and the solvers do so on ingestion).
#[derive(Debug, Clone, Default)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms.
    pub terms: Vec<(VarId, f64)>,
    /// Constant offset.
    pub constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-term expression `coef · x`.
    pub fn term(x: VarId, coef: f64) -> Self {
        Self {
            terms: vec![(x, coef)],
            constant: 0.0,
        }
    }

    /// Adds `coef · x` in place and returns `self` (builder style).
    pub fn plus(mut self, x: VarId, coef: f64) -> Self {
        self.terms.push((x, coef));
        self
    }

    /// Adds a constant in place and returns `self`.
    pub fn plus_const(mut self, c: f64) -> Self {
        self.constant += c;
        self
    }

    /// Appends `coef · x`.
    pub fn add_term(&mut self, x: VarId, coef: f64) {
        self.terms.push((x, coef));
    }

    /// Adds another expression scaled by `scale`.
    pub fn add_scaled(&mut self, other: &LinExpr, scale: f64) {
        for &(x, c) in &other.terms {
            self.terms.push((x, c * scale));
        }
        self.constant += other.constant * scale;
    }

    /// Merges duplicate variables and drops zero coefficients.
    pub fn compact(&mut self) {
        self.terms.sort_by_key(|&(x, _)| x);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for &(x, c) in &self.terms {
            match out.last_mut() {
                Some(&mut (lx, ref mut lc)) if lx == x => *lc += c,
                _ => out.push((x, c)),
            }
        }
        out.retain(|&(_, c)| c != 0.0);
        self.terms = out;
    }

    /// Evaluates the expression at the assignment `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|&(v, c)| c * x[v.0]).sum::<f64>()
    }
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// A linear constraint `expr (cmp) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Whether assignment `x` satisfies the constraint within `tol`.
    pub fn satisfied(&self, x: &[f64], tol: f64) -> bool {
        let lhs = self.expr.eval(x);
        match self.cmp {
            Cmp::Le => lhs <= self.rhs + tol,
            Cmp::Ge => lhs >= self.rhs - tol,
            Cmp::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// A minimisation model: variables, constraints, objective.
#[derive(Debug, Clone, Default)]
pub struct Model {
    vars: Vec<(VarKind, String)>,
    /// All constraints added so far.
    pub constraints: Vec<Constraint>,
    /// Objective to minimise.
    pub objective: LinExpr,
}

impl Model {
    /// An empty minimisation model.
    pub fn minimize() -> Self {
        Self::default()
    }

    /// Adds a continuous variable in `[lo, hi]`.
    pub fn continuous(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> VarId {
        assert!(lo <= hi, "empty domain [{lo}, {hi}]");
        self.push_var(VarKind::Continuous { lo, hi }, name.into())
    }

    /// Adds a binary variable.
    pub fn binary(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(VarKind::Binary, name.into())
    }

    /// Adds a bounded integer variable.
    pub fn integer(&mut self, name: impl Into<String>, lo: f64, hi: f64) -> VarId {
        assert!(lo <= hi, "empty domain [{lo}, {hi}]");
        self.push_var(VarKind::Integer { lo, hi }, name.into())
    }

    fn push_var(&mut self, kind: VarKind, name: String) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push((kind, name));
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Domain of `x`.
    pub fn kind(&self, x: VarId) -> VarKind {
        self.vars[x.0].0
    }

    /// Name of `x`.
    pub fn name(&self, x: VarId) -> &str {
        &self.vars[x.0].1
    }

    /// Adds the constraint `expr (cmp) rhs`.
    pub fn constrain(&mut self, mut expr: LinExpr, cmp: Cmp, rhs: f64) {
        expr.compact();
        // Fold the expression constant into the rhs.
        let c = expr.constant;
        expr.constant = 0.0;
        self.constraints.push(Constraint {
            expr,
            cmp,
            rhs: rhs - c,
        });
    }

    /// Sets the minimisation objective.
    pub fn set_objective(&mut self, mut expr: LinExpr) {
        expr.compact();
        self.objective = expr;
    }

    /// Checks primal feasibility of `x` against bounds and constraints.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (i, (kind, _)) in self.vars.iter().enumerate() {
            if x[i] < kind.lo() - tol || x[i] > kind.hi() + tol {
                return false;
            }
            if kind.is_integer() && (x[i] - x[i].round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.satisfied(x, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_building_and_eval() {
        let x = VarId(0);
        let y = VarId(1);
        let e = LinExpr::term(x, 2.0).plus(y, 3.0).plus_const(1.0);
        assert_eq!(e.eval(&[10.0, 100.0]), 321.0);
    }

    #[test]
    fn compact_merges_and_drops_zeros() {
        let x = VarId(0);
        let y = VarId(1);
        let mut e = LinExpr::new();
        e.add_term(x, 1.0);
        e.add_term(y, 2.0);
        e.add_term(x, 3.0);
        e.add_term(y, -2.0);
        e.compact();
        assert_eq!(e.terms, vec![(x, 4.0)]);
    }

    #[test]
    fn add_scaled_combines() {
        let x = VarId(0);
        let a = LinExpr::term(x, 1.0).plus_const(2.0);
        let mut b = LinExpr::term(x, 1.0);
        b.add_scaled(&a, -1.0);
        b.compact();
        assert!(b.terms.is_empty());
        assert_eq!(b.constant, -2.0);
    }

    #[test]
    fn constraint_constant_folds_into_rhs() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 10.0);
        m.constrain(LinExpr::term(x, 1.0).plus_const(5.0), Cmp::Le, 8.0);
        assert_eq!(m.constraints[0].rhs, 3.0);
        assert_eq!(m.constraints[0].expr.constant, 0.0);
    }

    #[test]
    fn feasibility_checks_bounds_integrality_constraints() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 5.0);
        m.constrain(LinExpr::term(x, 1.0).plus(y, 1.0), Cmp::Le, 4.0);
        assert!(m.is_feasible(&[1.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9), "fractional binary");
        assert!(!m.is_feasible(&[1.0, 6.0], 1e-9), "bound violation");
        assert!(!m.is_feasible(&[1.0, 3.5], 1e-9), "constraint violation");
    }

    #[test]
    fn satisfied_handles_all_ops() {
        let x = VarId(0);
        let c_le = Constraint {
            expr: LinExpr::term(x, 1.0),
            cmp: Cmp::Le,
            rhs: 1.0,
        };
        let c_ge = Constraint {
            expr: LinExpr::term(x, 1.0),
            cmp: Cmp::Ge,
            rhs: 1.0,
        };
        let c_eq = Constraint {
            expr: LinExpr::term(x, 1.0),
            cmp: Cmp::Eq,
            rhs: 1.0,
        };
        assert!(c_le.satisfied(&[0.5], 0.0));
        assert!(!c_ge.satisfied(&[0.5], 0.0));
        assert!(c_eq.satisfied(&[1.0], 0.0));
        assert!(!c_eq.satisfied(&[0.5], 0.0));
    }
}
