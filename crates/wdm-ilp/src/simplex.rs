//! Dense two-phase primal simplex on the standard form
//! `min cᵀx  s.t.  Ax = b, x ≥ 0`.
//!
//! Bland's rule is used throughout (smallest-index entering and leaving
//! candidates), which guarantees termination even on degenerate tableaus at
//! the price of more pivots — the right trade-off for an exactness oracle.
//! Phase 1 starts from an all-artificial basis and minimises the artificial
//! sum; phase 2 re-prices with the true objective with artificial columns
//! barred from entering.

/// Result of a standard-form LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal {
        /// Values of the `n` structural variables.
        x: Vec<f64>,
        /// Objective value `cᵀx`.
        obj: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves `min cᵀx  s.t.  Ax = b, x ≥ 0` with a dense two-phase tableau.
///
/// * `a` — row-major `m × n` constraint matrix;
/// * `b` — right-hand sides (any sign; rows are normalised internally);
/// * `c` — objective coefficients.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn solve_lp_standard(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> LpOutcome {
    let m = a.len();
    let n = c.len();
    assert_eq!(b.len(), m, "rhs length mismatch");
    for row in a {
        assert_eq!(row.len(), n, "matrix row length mismatch");
    }

    // Tableau: m rows × (n structural + m artificial + 1 rhs).
    let width = n + m + 1;
    let rhs_col = n + m;
    let mut t: Vec<Vec<f64>> = Vec::with_capacity(m);
    for i in 0..m {
        let mut row = vec![0.0; width];
        let flip = if b[i] < 0.0 { -1.0 } else { 1.0 };
        for j in 0..n {
            row[j] = flip * a[i][j];
        }
        row[n + i] = 1.0; // artificial
        row[rhs_col] = flip * b[i];
        t.push(row);
    }
    let mut basis: Vec<usize> = (n..n + m).collect();

    // Phase-1 reduced cost row: minimise the artificial sum. With the
    // artificial basis, d_j = -Σ_i T[i][j] for structural j, 0 for
    // artificials, rhs = -Σ_i b_i.
    let mut d1 = vec![0.0; width];
    for row in &t {
        for j in 0..n {
            d1[j] -= row[j];
        }
        d1[rhs_col] -= row[rhs_col];
    }
    if !pivot_loop(&mut t, &mut basis, &mut d1, n, usize::MAX) {
        // Phase 1 of a bounded-below objective cannot be unbounded.
        unreachable!("phase 1 objective is bounded below by 0");
    }
    if -d1[rhs_col] > 1e-7 {
        return LpOutcome::Infeasible;
    }

    // Drive artificial variables out of the basis where possible; redundant
    // rows keep a zero-valued artificial, which is harmless as long as
    // artificials are barred from entering in phase 2.
    for i in 0..m {
        if basis[i] >= n {
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > EPS) {
                pivot(&mut t, &mut basis, &mut d1, i, j);
            }
        }
    }

    // Phase-2 reduced cost row from the true objective.
    let mut d2 = vec![0.0; width];
    d2[..n].copy_from_slice(c);
    for i in 0..m {
        let bj = basis[i];
        let cost = if bj < n { c[bj] } else { 0.0 };
        if cost != 0.0 {
            let row = t[i].clone();
            for j in 0..width {
                d2[j] -= cost * row[j];
            }
        }
    }
    if !pivot_loop(&mut t, &mut basis, &mut d2, n, n) {
        return LpOutcome::Unbounded;
    }

    let mut x = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][rhs_col];
        }
    }
    let obj = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    LpOutcome::Optimal { x, obj }
}

/// Runs Bland-rule pivots until optimal (true) or unbounded (false).
/// `enter_limit` bars columns `>= enter_limit` from entering (used to
/// exclude artificials in phase 2; pass `usize::MAX` for no bar).
fn pivot_loop(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    d: &mut [f64],
    n_structural: usize,
    enter_limit: usize,
) -> bool {
    let width = d.len();
    let rhs_col = width - 1;
    let cols = if enter_limit == usize::MAX {
        width - 1
    } else {
        enter_limit.min(width - 1)
    };
    let _ = n_structural;
    loop {
        // Bland: smallest-index column with negative reduced cost.
        let Some(enter) = (0..cols).find(|&j| d[j] < -EPS) else {
            return true; // optimal
        };
        // Ratio test; Bland tie-break on smallest basis index.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for (i, row) in t.iter().enumerate() {
            if row[enter] > EPS {
                let ratio = row[rhs_col] / row[enter];
                let better = ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave.is_some_and(|l| basis[i] < basis[l]));
                if better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return false; // unbounded direction
        };
        pivot(t, basis, d, leave, enter);
    }
}

/// Pivots on `(row, col)`: normalises the pivot row and eliminates `col`
/// from every other row and from the reduced-cost row.
#[allow(clippy::needless_range_loop)] // index form keeps the row/col algebra explicit
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], d: &mut [f64], row: usize, col: usize) {
    let width = d.len();
    let piv = t[row][col];
    debug_assert!(piv.abs() > EPS, "pivot on ~zero element");
    for j in 0..width {
        t[row][j] /= piv;
    }
    t[row][col] = 1.0; // exact
    for i in 0..t.len() {
        if i != row {
            let factor = t[i][col];
            if factor != 0.0 {
                // Split borrows: copy the pivot row values on the fly.
                for j in 0..width {
                    let pr = t[row][j];
                    t[i][j] -= factor * pr;
                }
                t[i][col] = 0.0; // exact
            }
        }
    }
    let factor = d[col];
    if factor != 0.0 {
        for j in 0..width {
            d[j] -= factor * t[row][j];
        }
        d[col] = 0.0;
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_optimal(outcome: LpOutcome, want_obj: f64, want_x: Option<&[f64]>) {
        match outcome {
            LpOutcome::Optimal { x, obj } => {
                assert!(
                    (obj - want_obj).abs() < 1e-6,
                    "objective {obj} != expected {want_obj} (x = {x:?})"
                );
                if let Some(wx) = want_x {
                    for (a, b) in x.iter().zip(wx) {
                        assert!((a - b).abs() < 1e-6, "x = {x:?}, want {wx:?}");
                    }
                }
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximisation_as_min() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier–Lieberman)
        // Standard form with slacks s1..s3, minimise -(3x + 5y). Optimum 36.
        let a = vec![
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0, 0.0],
            vec![3.0, 2.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![4.0, 12.0, 18.0];
        let c = vec![-3.0, -5.0, 0.0, 0.0, 0.0];
        assert_optimal(solve_lp_standard(&a, &b, &c), -36.0, Some(&[2.0, 6.0]));
    }

    #[test]
    fn equality_constraints_via_phase1() {
        // min x + y s.t. x + y = 2, x - y = 0  =>  x = y = 1.
        let a = vec![vec![1.0, 1.0], vec![1.0, -1.0]];
        let b = vec![2.0, 0.0];
        let c = vec![1.0, 1.0];
        assert_optimal(solve_lp_standard(&a, &b, &c), 2.0, Some(&[1.0, 1.0]));
    }

    #[test]
    fn infeasible_system() {
        // x = 1 and x = 2 simultaneously.
        let a = vec![vec![1.0], vec![1.0]];
        let b = vec![1.0, 2.0];
        let c = vec![0.0];
        assert_eq!(solve_lp_standard(&a, &b, &c), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_objective() {
        // min -x s.t. x - y = 1 (x can grow with y).
        let a = vec![vec![1.0, -1.0]];
        let b = vec![1.0];
        let c = vec![-1.0, 0.0];
        assert_eq!(solve_lp_standard(&a, &b, &c), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // -x <= -3 i.e. x >= 3 written as -x + s = -3; min x => x = 3.
        let a = vec![vec![-1.0, 1.0]];
        let b = vec![-3.0];
        let c = vec![1.0, 0.0];
        assert_optimal(solve_lp_standard(&a, &b, &c), 3.0, Some(&[3.0, 0.0]));
    }

    #[test]
    fn degenerate_tableau_terminates() {
        // Classic degeneracy: redundant constraints through the optimum.
        let a = vec![
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![1.0, 1.0, 2.0]; // third row = sum of the first two
        let c = vec![-1.0, -1.0, 0.0, 0.0, 0.0];
        assert_optimal(solve_lp_standard(&a, &b, &c), -2.0, None);
    }

    #[test]
    fn redundant_equalities_keep_zero_artificials() {
        // x + y = 2 duplicated; min x.
        let a = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let b = vec![2.0, 2.0];
        let c = vec![1.0, 0.0];
        assert_optimal(solve_lp_standard(&a, &b, &c), 0.0, Some(&[0.0, 2.0]));
    }

    #[test]
    fn fractional_lp_relaxation_value() {
        // Knapsack relaxation: min -(2x1 + 3x2) s.t. 4x1 + 5x2 + s = 6,
        // x_i <= 1. Optimum picks x2 = 1, x1 = 0.25 -> obj = -3.5.
        let a = vec![
            vec![4.0, 5.0, 1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 1.0],
        ];
        let b = vec![6.0, 1.0, 1.0];
        let c = vec![-2.0, -3.0, 0.0, 0.0, 0.0];
        assert_optimal(solve_lp_standard(&a, &b, &c), -3.5, Some(&[0.25, 1.0]));
    }

    #[test]
    fn zero_rows_and_columns() {
        // A zero objective over a feasible region returns any vertex; the
        // solver must not loop.
        let a = vec![vec![1.0, 1.0, 1.0]];
        let b = vec![5.0];
        let c = vec![0.0, 0.0, 0.0];
        match solve_lp_standard(&a, &b, &c) {
            LpOutcome::Optimal { obj, .. } => assert_eq!(obj, 0.0),
            other => panic!("{other:?}"),
        }
    }
}
