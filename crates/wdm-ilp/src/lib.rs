//! A small, self-contained LP / 0-1 ILP solver.
//!
//! The paper's exact formulation of the optimal edge-disjoint semilightpath
//! problem (Eqs. 3–21) is a 0/1 integer program; the paper invokes "solve the
//! integer programming" without saying how. Reproducing the exact baseline
//! therefore requires an ILP solver, which this crate provides from scratch:
//!
//! * [`Model`] — a tiny modelling layer (variables with bounds and
//!   integrality, linear constraints, minimisation objective);
//! * [`simplex`] — a dense two-phase primal simplex with Bland's
//!   anti-cycling rule, operating on the standard form `min cᵀx, Ax = b,
//!   x ≥ 0`;
//! * [`branch`] — best-first branch-and-bound over the LP relaxation for
//!   the integer variables.
//!
//! Scope: this is an *exactness oracle for small instances* (tens-to-hundreds
//! of variables — the Theorem 2 ratio experiments use networks of ≤ 12
//! nodes), not a competitor to industrial MILP solvers. The dense tableau is
//! O(m·n) memory and O(m·n) per pivot, which is perfectly fine at that
//! scale and keeps the implementation auditable.

pub mod branch;
pub mod model;
pub mod simplex;

pub use branch::{solve_ilp, IlpOptions, IlpResult, IlpStatus};
pub use model::{Cmp, LinExpr, Model, VarId, VarKind};
pub use simplex::{solve_lp_standard, LpOutcome};
