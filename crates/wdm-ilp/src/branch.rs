//! Branch-and-bound for mixed 0/1-integer programs over the LP relaxation.
#![allow(clippy::needless_range_loop)] // dense index scans mirror the math

use crate::model::{Cmp, Model};
use crate::simplex::{solve_lp_standard, LpOutcome};

/// Solver options.
#[derive(Debug, Clone)]
pub struct IlpOptions {
    /// Maximum branch-and-bound nodes before giving up.
    pub max_nodes: usize,
    /// Tolerance for considering an LP value integral.
    pub int_tol: f64,
}

impl Default for IlpOptions {
    fn default() -> Self {
        Self {
            max_nodes: 200_000,
            int_tol: 1e-6,
        }
    }
}

/// Termination status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlpStatus {
    /// Proven optimal.
    Optimal,
    /// Proven infeasible.
    Infeasible,
    /// LP relaxation unbounded (and hence the ILP unbounded or ill-posed).
    Unbounded,
    /// Node limit hit; `x`/`obj` hold the incumbent, if any.
    NodeLimit,
}

/// Result of an ILP solve.
#[derive(Debug, Clone)]
pub struct IlpResult {
    /// Termination status.
    pub status: IlpStatus,
    /// Best integral solution found (dense over model variables).
    pub x: Option<Vec<f64>>,
    /// Objective of `x`.
    pub obj: Option<f64>,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

/// One open node: variable bound overrides + the parent LP bound.
#[derive(Debug, Clone)]
struct Node {
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Lower bound on any integral solution in this subtree.
    bound: f64,
}

/// Converts the model (with per-node bounds `lo`/`hi`) to standard form and
/// solves the LP relaxation. Returns `(x, obj)` on optimality.
#[allow(clippy::type_complexity)]
fn solve_relaxation(model: &Model, lo: &[f64], hi: &[f64]) -> LpOutcome {
    let nv = model.num_vars();
    // y_i = x_i - lo_i >= 0. Columns: nv structural + one slack per
    // inequality row (constraints Le/Ge and finite upper bounds).
    let mut rows: Vec<(Vec<(usize, f64)>, f64, Cmp)> = Vec::new();
    for c in &model.constraints {
        let mut shift = 0.0;
        let terms: Vec<(usize, f64)> = c
            .expr
            .terms
            .iter()
            .map(|&(v, coef)| {
                shift += coef * lo[v.0];
                (v.0, coef)
            })
            .collect();
        rows.push((terms, c.rhs - shift, c.cmp));
    }
    for i in 0..nv {
        debug_assert!(lo[i].is_finite(), "lower bound must be finite");
        if hi[i].is_finite() {
            if hi[i] < lo[i] {
                return LpOutcome::Infeasible; // empty branch domain
            }
            rows.push((vec![(i, 1.0)], hi[i] - lo[i], Cmp::Le));
        }
    }

    let num_slacks = rows.iter().filter(|(_, _, cmp)| *cmp != Cmp::Eq).count();
    let width = nv + num_slacks;
    let mut a: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    let mut b: Vec<f64> = Vec::with_capacity(rows.len());
    let mut slack_at = nv;
    for (terms, rhs, cmp) in &rows {
        let mut row = vec![0.0; width];
        for &(v, coef) in terms {
            row[v] += coef;
        }
        match cmp {
            Cmp::Le => {
                row[slack_at] = 1.0;
                slack_at += 1;
            }
            Cmp::Ge => {
                row[slack_at] = -1.0;
                slack_at += 1;
            }
            Cmp::Eq => {}
        }
        a.push(row);
        b.push(*rhs);
    }
    let mut c = vec![0.0; width];
    let mut obj0 = model.objective.constant;
    for &(v, coef) in &model.objective.terms {
        c[v.0] += coef;
        obj0 += coef * lo[v.0];
    }

    match solve_lp_standard(&a, &b, &c) {
        LpOutcome::Optimal { x, obj } => {
            // Undo the shift: x_i = y_i + lo_i.
            let xs: Vec<f64> = (0..nv).map(|i| x[i] + lo[i]).collect();
            LpOutcome::Optimal {
                x: xs,
                obj: obj + obj0,
            }
        }
        other => other,
    }
}

/// Solves the model to proven integer optimality (or the node limit).
///
/// Best-first search: the open node with the smallest LP bound is expanded
/// next, so the first incumbent found at bound-parity proves optimality
/// early. Branching variable: the integer variable with the most fractional
/// LP value.
///
/// ```
/// use wdm_ilp::{solve_ilp, Cmp, IlpOptions, IlpStatus, LinExpr, Model};
///
/// // max 60x0 + 100x1 + 120x2  s.t.  10x0 + 20x1 + 30x2 <= 50, x binary
/// let mut m = Model::minimize();
/// let x: Vec<_> = (0..3).map(|i| m.binary(format!("x{i}"))).collect();
/// m.constrain(
///     LinExpr::term(x[0], 10.0).plus(x[1], 20.0).plus(x[2], 30.0),
///     Cmp::Le,
///     50.0,
/// );
/// m.set_objective(LinExpr::term(x[0], -60.0).plus(x[1], -100.0).plus(x[2], -120.0));
/// let res = solve_ilp(&m, &IlpOptions::default());
/// assert_eq!(res.status, IlpStatus::Optimal);
/// assert_eq!(res.obj, Some(-220.0)); // picks items 1 and 2
/// ```
#[allow(clippy::needless_range_loop)] // dense scans over the variable index space
pub fn solve_ilp(model: &Model, opts: &IlpOptions) -> IlpResult {
    let nv = model.num_vars();
    let lo0: Vec<f64> = (0..nv).map(|i| model.kind(crate::VarId(i)).lo()).collect();
    let hi0: Vec<f64> = (0..nv).map(|i| model.kind(crate::VarId(i)).hi()).collect();

    let mut open: std::collections::BinaryHeap<OrderedNode> = std::collections::BinaryHeap::new();
    let mut nodes = 0usize;
    let mut incumbent: Option<(Vec<f64>, f64)> = None;

    // Root relaxation.
    match solve_relaxation(model, &lo0, &hi0) {
        LpOutcome::Infeasible => {
            return IlpResult {
                status: IlpStatus::Infeasible,
                x: None,
                obj: None,
                nodes: 1,
            }
        }
        LpOutcome::Unbounded => {
            return IlpResult {
                status: IlpStatus::Unbounded,
                x: None,
                obj: None,
                nodes: 1,
            }
        }
        LpOutcome::Optimal { obj, .. } => open.push(OrderedNode(Node {
            lo: lo0,
            hi: hi0,
            bound: obj,
        })),
    }

    while let Some(OrderedNode(node)) = open.pop() {
        nodes += 1;
        if nodes > opts.max_nodes {
            return IlpResult {
                status: IlpStatus::NodeLimit,
                x: incumbent.as_ref().map(|(x, _)| x.clone()),
                obj: incumbent.as_ref().map(|&(_, o)| o),
                nodes,
            };
        }
        // Bound-based pruning against the incumbent.
        if let Some((_, best)) = &incumbent {
            if node.bound >= *best - 1e-9 {
                continue;
            }
        }
        let LpOutcome::Optimal { x, obj } = solve_relaxation(model, &node.lo, &node.hi) else {
            continue; // branch infeasible (unbounded cannot appear below a bounded root)
        };
        if let Some((_, best)) = &incumbent {
            if obj >= *best - 1e-9 {
                continue;
            }
        }
        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        for i in 0..nv {
            if model.kind(crate::VarId(i)).is_integer() {
                let frac = (x[i] - x[i].round()).abs();
                if frac > opts.int_tol {
                    let score = (x[i] - x[i].floor() - 0.5).abs(); // 0 = most fractional
                    if branch_var.is_none_or(|(_, s)| score < s) {
                        branch_var = Some((i, score));
                    }
                }
            }
        }
        match branch_var {
            None => {
                // Integral: snap and accept.
                let snapped: Vec<f64> = (0..nv)
                    .map(|i| {
                        if model.kind(crate::VarId(i)).is_integer() {
                            x[i].round()
                        } else {
                            x[i]
                        }
                    })
                    .collect();
                if incumbent.as_ref().is_none_or(|&(_, best)| obj < best) {
                    incumbent = Some((snapped, obj));
                }
            }
            Some((i, _)) => {
                let split = x[i];
                let mut down = node.clone();
                down.hi[i] = split.floor();
                down.bound = obj;
                let mut up = node;
                up.lo[i] = split.ceil();
                up.bound = obj;
                open.push(OrderedNode(down));
                open.push(OrderedNode(up));
            }
        }
    }

    match incumbent {
        Some((x, obj)) => IlpResult {
            status: IlpStatus::Optimal,
            x: Some(x),
            obj: Some(obj),
            nodes,
        },
        None => IlpResult {
            status: IlpStatus::Infeasible,
            x: None,
            obj: None,
            nodes,
        },
    }
}

/// Max-heap adaptor ordering nodes by *smallest* LP bound first.
struct OrderedNode(Node);

impl PartialEq for OrderedNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for OrderedNode {}
impl PartialOrd for OrderedNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: smaller bound = higher priority.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .expect("LP bounds are never NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinExpr;

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> (IlpResult, Model) {
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..values.len())
            .map(|i| m.binary(format!("x{i}")))
            .collect();
        let mut weight = LinExpr::new();
        let mut value = LinExpr::new();
        for (i, &x) in vars.iter().enumerate() {
            weight.add_term(x, weights[i]);
            value.add_term(x, -values[i]); // maximise value = minimise -value
        }
        m.constrain(weight, Cmp::Le, cap);
        m.set_objective(value);
        (solve_ilp(&m, &IlpOptions::default()), m)
    }

    #[test]
    fn knapsack_optimum() {
        // Classic: values 60,100,120 weights 10,20,30 cap 50 -> 220.
        let (res, m) = knapsack(&[60.0, 100.0, 120.0], &[10.0, 20.0, 30.0], 50.0);
        assert_eq!(res.status, IlpStatus::Optimal);
        assert!((res.obj.unwrap() + 220.0).abs() < 1e-6);
        let x = res.x.unwrap();
        assert_eq!(x, vec![0.0, 1.0, 1.0]);
        assert!(m.is_feasible(&x, 1e-6));
    }

    #[test]
    fn lp_rounding_trap() {
        // max x s.t. 2x <= 3, x integer in [0, 5]: LP gives 1.5, ILP 1.
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 5.0);
        m.constrain(LinExpr::term(x, 2.0), Cmp::Le, 3.0);
        m.set_objective(LinExpr::term(x, -1.0));
        let res = solve_ilp(&m, &IlpOptions::default());
        assert_eq!(res.status, IlpStatus::Optimal);
        assert_eq!(res.x.unwrap(), vec![1.0]);
    }

    #[test]
    fn infeasible_integrality() {
        // 2x = 1 with x integer.
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 10.0);
        m.constrain(LinExpr::term(x, 2.0), Cmp::Eq, 1.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let res = solve_ilp(&m, &IlpOptions::default());
        assert_eq!(res.status, IlpStatus::Infeasible);
    }

    #[test]
    fn infeasible_lp_root() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.constrain(LinExpr::term(x, 1.0), Cmp::Ge, 2.0);
        let res = solve_ilp(&m, &IlpOptions::default());
        assert_eq!(res.status, IlpStatus::Infeasible);
    }

    #[test]
    fn assignment_problem_integral() {
        // 3x3 assignment; LP is integral so B&B solves at the root.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::minimize();
        let mut vars = [[crate::VarId(0); 3]; 3];
        for (i, row) in vars.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = m.binary(format!("a{i}{j}"));
            }
        }
        for i in 0..3 {
            let mut r = LinExpr::new();
            let mut c = LinExpr::new();
            for j in 0..3 {
                r.add_term(vars[i][j], 1.0);
                c.add_term(vars[j][i], 1.0);
            }
            m.constrain(r, Cmp::Eq, 1.0);
            m.constrain(c, Cmp::Eq, 1.0);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj.add_term(vars[i][j], cost[i][j]);
            }
        }
        m.set_objective(obj);
        let res = solve_ilp(&m, &IlpOptions::default());
        assert_eq!(res.status, IlpStatus::Optimal);
        // Optimal assignment: (0,1)=2? enumerate: best is 2 + 4 + 6? Let's
        // check = min over permutations: (0->1,1->0,2->2): 2+4+6=12;
        // (0->0,1->1,2->2): 4+3+6=13; (0->1,1->2,2->0): 2+7+3=12;
        // (0->2,1->0,2->1): 8+4+1=13; (0->0,1->2,2->1): 4+7+1=12;
        // (0->2,1->1,2->0): 8+3+3=14. Optimum 12.
        assert!((res.obj.unwrap() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min -x - 2y, x binary, y continuous <= 1.5, x + y <= 2.
        // Best: x=1, y=1 -> -3? y <= 1.5 and x + y <= 2 -> y <= 1 when x=1:
        // obj -3; x=0: y <= 1.5 -> obj -3. Tie at -3.
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 1.5);
        m.constrain(LinExpr::term(x, 1.0).plus(y, 1.0), Cmp::Le, 2.0);
        m.set_objective(LinExpr::term(x, -1.0).plus(y, -2.0));
        let res = solve_ilp(&m, &IlpOptions::default());
        assert_eq!(res.status, IlpStatus::Optimal);
        assert!((res.obj.unwrap() + 3.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reports_incumbent_or_none() {
        let (res, _) = knapsack(&[1.0; 12], &[1.0; 12], 6.0);
        assert_eq!(res.status, IlpStatus::Optimal);
        assert!((res.obj.unwrap() + 6.0).abs() < 1e-6);
        // With a tiny node budget the solver must stop gracefully.
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..12).map(|i| m.binary(format!("x{i}"))).collect();
        let mut w = LinExpr::new();
        let mut v = LinExpr::new();
        for (i, &x) in vars.iter().enumerate() {
            w.add_term(x, 1.0 + (i % 3) as f64 * 0.37);
            v.add_term(x, -(1.0 + (i % 5) as f64 * 0.51));
        }
        m.constrain(w, Cmp::Le, 6.3);
        m.set_objective(v);
        let res = solve_ilp(
            &m,
            &IlpOptions {
                max_nodes: 2,
                ..Default::default()
            },
        );
        assert_eq!(res.status, IlpStatus::NodeLimit);
    }

    #[test]
    fn objective_constant_is_preserved() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.set_objective(LinExpr::term(x, 1.0).plus_const(10.0));
        let res = solve_ilp(&m, &IlpOptions::default());
        assert_eq!(res.status, IlpStatus::Optimal);
        assert!((res.obj.unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn equality_with_negative_bounds() {
        // x in [-5, 5] integer, x = -3 enforced by constraint; min x² not
        // expressible — use min x with Ge constraint instead.
        let mut m = Model::minimize();
        let x = m.integer("x", -5.0, 5.0);
        m.constrain(LinExpr::term(x, 1.0), Cmp::Eq, -3.0);
        m.set_objective(LinExpr::term(x, 1.0));
        let res = solve_ilp(&m, &IlpOptions::default());
        assert_eq!(res.status, IlpStatus::Optimal);
        assert_eq!(res.x.unwrap(), vec![-3.0]);
        assert!((res.obj.unwrap() + 3.0).abs() < 1e-6);
    }
}
