//! End-to-end daemon tests: real sockets, real worker pool, real WAL.
//!
//! Covers the PR's two acceptance properties:
//!
//! * **zero lost mutations** — a daemon under ≥1000 mixed requests
//!   (provision / teardown / fail / repair / query) shuts down gracefully
//!   and its WAL replays to exactly the live final `semantic_hash`;
//! * **crash recovery** — a daemon killed mid-load (no final checkpoint,
//!   no graceful-close line) recovers from the WAL to the same state an
//!   independent reference lineage reaches, and a restarted daemon
//!   resumes serving from that state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use wdm_core::network::NetworkBuilder;
use wdm_core::network::WdmNetwork;
use wdm_graph::NodeId;
use wdm_serve::daemon::{run, Control, ServeConfig};
use wdm_serve::loadgen::{self, http_request, LoadgenConfig};
use wdm_serve::wal;
use wdm_sim::provisioner::{NetProvisioner, Provisioner};

fn nsfnet() -> WdmNetwork {
    NetworkBuilder::nsfnet(8).build()
}

fn temp_wal(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "wdm-e2e-{}-{}-{}.jsonl",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Unwind guard: a client-side assertion failure inside `thread::scope`
/// would otherwise deadlock — the scope joins a server that nobody asked
/// to stop. Dropped during unwind, this kills the daemon so the real
/// panic surfaces. (On the normal path the daemon has already exited and
/// the extra flag is a no-op.)
struct KillOnExit<'a>(&'a Control);

impl Drop for KillOnExit<'_> {
    fn drop(&mut self) {
        self.0.crash();
    }
}

#[derive(serde::Deserialize)]
struct StateResp {
    connections: u64,
    journal_seq: u64,
    semantic_hash: u64,
}

fn query_state(target: &str) -> StateResp {
    let (status, body) = http_request(target, "GET", "/state", "").expect("state query");
    assert_eq!(status, 200, "state endpoint answers: {body}");
    serde_json::from_str(&body).expect("state response parses")
}

#[test]
fn thousand_mixed_requests_with_zero_lost_mutations() {
    let net = nsfnet();
    let wal_path = temp_wal("mixed");
    let mut cfg = ServeConfig::new("127.0.0.1:0", &wal_path);
    cfg.threads = 4;
    cfg.checkpoint_every = 64;
    let control = Control::new();

    let report = std::thread::scope(|s| {
        let server = s.spawn(|| run(&net, &cfg, &control));
        let _guard = KillOnExit(&control);
        let addr = control
            .wait_addr(Duration::from_secs(10))
            .expect("daemon binds");
        let target = addr.to_string();

        // Open-loop Poisson mix: provisions with exponential holds
        // (teardowns), plus fail/repair events. Offered load is chosen so
        // the run comfortably clears 1000 requests.
        let mut lg = LoadgenConfig::new(&target, net.node_count() as u32, net.link_count() as u32);
        lg.rate = 1500.0;
        lg.duration = 2.0;
        lg.mean_hold = 0.3;
        lg.fail_fraction = 0.02;
        lg.seed = 7;
        let lr = loadgen::run(&lg);

        // A few query requests round out the mix.
        for _ in 0..10 {
            query_state(&target);
        }
        let live = query_state(&target);
        let (status, _) = http_request(&target, "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        let (status, metrics) = http_request(&target, "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        assert!(
            metrics.contains("wdm_counter{name=\"serve_provision_ok\"}")
                || metrics.contains("serve_provision_ok"),
            "prometheus exposes the serve counters:\n{metrics}"
        );

        control.shutdown();
        let report = server.join().unwrap().expect("clean run");

        assert!(
            lr.offered >= 1000,
            "the acceptance run must offer >= 1000 requests, got {}",
            lr.offered
        );
        assert!(lr.ok > 0, "some requests succeed");
        assert_eq!(lr.errors, 0, "no transport errors against a live daemon");
        // The last pre-shutdown query saw the same lineage the report
        // closed with (only the drain-phase teardowns come between; both
        // hashes come from the same journal).
        assert_eq!(live.journal_seq, report.journal_seq);
        assert_eq!(live.semantic_hash, report.semantic_hash);
        report
    });

    assert!(report.clean_shutdown);
    // Zero lost mutations: the WAL replays to exactly the live hash.
    let rec = wal::recover(&wal_path).expect("recover");
    assert_eq!(
        rec.seq, report.journal_seq,
        "every journaled event is on disk"
    );
    assert_eq!(rec.semantic_hash(), report.semantic_hash);
    assert_eq!(rec.final_hash, Some(report.semantic_hash));
    assert!(rec.clean_shutdown());
    assert!(
        rec.anchors_verified >= 1,
        "periodic checkpoints were written and verified ({} events)",
        rec.seq
    );
    std::fs::remove_file(&wal_path).ok();
}

#[test]
fn crash_recovery_matches_reference_lineage_and_resumes() {
    let net = nsfnet();
    let wal_path = temp_wal("crash");
    let mut cfg = ServeConfig::new("127.0.0.1:0", &wal_path);
    // One worker + a sequential client: the daemon's routing decisions are
    // deterministic, so an independent local provisioner fed the same
    // request sequence is a bit-exact reference lineage.
    cfg.threads = 1;
    cfg.checkpoint_every = 16;
    let control = Control::new();

    // The reference: same net, same policy, same request order.
    let mut reference = NetProvisioner::new(&net, cfg.policy);

    std::thread::scope(|s| {
        let server = s.spawn(|| run(&net, &cfg, &control));
        let _guard = KillOnExit(&control);
        let addr = control
            .wait_addr(Duration::from_secs(10))
            .expect("daemon binds");
        let target = addr.to_string();

        let n = net.node_count() as u32;
        let mut acked = 0u64;
        for i in 0..120u32 {
            let (s_node, t_node) = ((i % n), ((i * 7 + 3) % n));
            if s_node == t_node {
                continue;
            }
            let body = format!("{{\"src\":{s_node},\"dst\":{t_node}}}");
            let (status, _) = http_request(&target, "POST", "/provision", &body).unwrap();
            let reference_outcome = reference.provision(NodeId(s_node), NodeId(t_node));
            match status {
                200 => {
                    assert!(reference_outcome.is_ok(), "daemon and reference agree");
                    acked += 1;
                }
                409 => assert!(reference_outcome.is_err(), "daemon and reference agree"),
                other => panic!("unexpected status {other}"),
            }
        }
        // Saturation is expected (nothing tears down, and every request
        // needs an edge-disjoint pair): the tail of the 120 requests
        // exercises the agreed-409 path. What matters here is that enough
        // events landed to cross the checkpoint cadence.
        assert!(
            acked > cfg.checkpoint_every,
            "the run must outlast one checkpoint window, got {acked}"
        );

        // Kill mid-load: no drain, no final checkpoint, no close line.
        control.crash();
        let report = server.join().unwrap().expect("crash exit is still orderly");
        assert!(!report.clean_shutdown);
        assert_eq!(report.journal_seq, acked, "one event per acked provision");
    });

    // Recovery reconstructs the state from events alone…
    let rec = wal::recover(&wal_path).expect("recover after crash");
    assert_eq!(rec.final_hash, None, "no graceful-close line after a kill");
    assert!(!rec.clean_shutdown());
    // …and matches the independent reference lineage bit-for-bit.
    assert_eq!(
        rec.semantic_hash(),
        reference.semantic_hash(),
        "zero acked mutations lost in the crash"
    );

    // A restarted daemon resumes from the recovered state.
    let wal_path2 = temp_wal("resume");
    let mut cfg2 = ServeConfig::new("127.0.0.1:0", &wal_path2);
    cfg2.threads = 2;
    cfg2.resume_state = Some(rec.state.clone());
    let control2 = Control::new();
    std::thread::scope(|s| {
        let server = s.spawn(|| run(&net, &cfg2, &control2));
        let _guard = KillOnExit(&control2);
        let addr = control2
            .wait_addr(Duration::from_secs(10))
            .expect("resumed daemon binds");
        let target = addr.to_string();
        let live = query_state(&target);
        assert_eq!(live.semantic_hash, rec.semantic_hash(), "resumed lineage");
        assert_eq!(live.journal_seq, 0, "the resumed WAL starts fresh");
        assert_eq!(live.connections, 0, "pre-crash connections are unmanaged");
        // The resumed daemon keeps serving.
        let (status, body) =
            http_request(&target, "POST", "/provision", "{\"src\":0,\"dst\":9}").unwrap();
        assert_eq!(status, 200, "resumed daemon provisions: {body}");
        control2.shutdown();
        server.join().unwrap().expect("clean resumed run");
    });

    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&wal_path2).ok();
}

#[test]
fn malformed_requests_never_wedge_the_daemon() {
    let net = nsfnet();
    let wal_path = temp_wal("malformed");
    let mut cfg = ServeConfig::new("127.0.0.1:0", &wal_path);
    cfg.threads = 2;
    let control = Control::new();

    std::thread::scope(|s| {
        let server = s.spawn(|| run(&net, &cfg, &control));
        let _guard = KillOnExit(&control);
        let addr = control
            .wait_addr(Duration::from_secs(10))
            .expect("daemon binds");
        let target = addr.to_string();

        // Garbage bodies, bad endpoints, unknown routes, early hangups.
        let (status, _) = http_request(&target, "POST", "/provision", "not json").unwrap();
        assert_eq!(status, 400);
        let (status, _) =
            http_request(&target, "POST", "/provision", "{\"src\":0,\"dst\":0}").unwrap();
        assert_eq!(status, 400, "degenerate endpoints rejected");
        let (status, _) =
            http_request(&target, "POST", "/provision", "{\"src\":9999,\"dst\":1}").unwrap();
        assert_eq!(status, 400, "out-of-range node rejected");
        let (status, _) = http_request(&target, "POST", "/fail-link", "{\"link\":123456}").unwrap();
        assert_eq!(status, 400, "out-of-range link rejected");
        let (status, _) = http_request(&target, "POST", "/nonsense", "{}").unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_request(&target, "POST", "/teardown", "{\"id\":424242}").unwrap();
        assert_eq!(status, 404, "unknown connection is a miss, not an error");

        // An early disconnect mid-request must not take a worker down.
        {
            use std::io::Write;
            let mut raw = std::net::TcpStream::connect(&target).unwrap();
            raw.write_all(b"POST /provision HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"sr")
                .unwrap();
            drop(raw);
        }

        // The daemon still serves real traffic afterwards.
        let (status, _) =
            http_request(&target, "POST", "/provision", "{\"src\":0,\"dst\":9}").unwrap();
        assert_eq!(status, 200);
        let live = query_state(&target);
        assert_eq!(live.connections, 1);

        control.shutdown();
        let report = server.join().unwrap().expect("clean run");
        assert!(report.clean_shutdown);
        let bad = report
            .counters
            .get("serve_bad_request")
            .copied()
            .unwrap_or(0);
        assert!(bad >= 4, "bad requests were counted, got {bad}");
    });
    std::fs::remove_file(&wal_path).ok();
}

/// JSON helpers for Value-based parsing (the vendored serde `Value` has no
/// typed numeric accessors on itself).
fn num(v: &serde_json::Value) -> u64 {
    match v {
        serde_json::Value::Number(n) => n.as_f64() as u64,
        other => panic!("expected number, got {other:?}"),
    }
}

fn boolean(v: &serde_json::Value) -> bool {
    match v {
        serde_json::Value::Bool(b) => *b,
        other => panic!("expected bool, got {other:?}"),
    }
}

#[test]
fn resumed_daemon_serves_wal_correlated_flight_records() {
    let net = nsfnet();
    let wal_path = temp_wal("flight-crash");

    // First life: a few provisions, then a kill (no close line, no drain).
    let mut cfg = ServeConfig::new("127.0.0.1:0", &wal_path);
    cfg.threads = 1;
    let control = Control::new();
    std::thread::scope(|s| {
        let server = s.spawn(|| run(&net, &cfg, &control));
        let _guard = KillOnExit(&control);
        let addr = control
            .wait_addr(Duration::from_secs(10))
            .expect("daemon binds");
        let target = addr.to_string();
        for i in 0..6u32 {
            let body = format!("{{\"src\":{},\"dst\":{}}}", i, (i + 7) % 14);
            http_request(&target, "POST", "/provision", &body).unwrap();
        }
        control.crash();
        server.join().unwrap().expect("crash exit is still orderly");
    });

    // Recover the torn WAL and resume a second daemon from that state.
    let rec = wal::recover(&wal_path).expect("recover after crash");
    assert!(!rec.clean_shutdown());
    let wal_path2 = temp_wal("flight-resume");
    let mut cfg2 = ServeConfig::new("127.0.0.1:0", &wal_path2);
    cfg2.threads = 1;
    cfg2.resume_state = Some(rec.state.clone());
    let control2 = Control::new();
    std::thread::scope(|s| {
        let server = s.spawn(|| run(&net, &cfg2, &control2));
        let _guard = KillOnExit(&control2);
        let addr = control2
            .wait_addr(Duration::from_secs(10))
            .expect("resumed daemon binds");
        let target = addr.to_string();

        let mut routed = 0u64;
        for i in 0..10u32 {
            let body = format!("{{\"src\":{},\"dst\":{}}}", i, (i + 5) % 14);
            let (status, _) = http_request(&target, "POST", "/provision", &body).unwrap();
            if status == 200 {
                routed += 1;
            }
        }
        assert!(routed > 0, "the resumed daemon routes something");
        let live = query_state(&target);
        assert_eq!(live.journal_seq, routed, "one event per routed provision");

        // The flight ring is this life's own: every record correlates with
        // the resumed WAL's sequence numbers.
        let (status, body) = http_request(&target, "GET", "/debug/flight", "").unwrap();
        assert_eq!(status, 200, "flight dump answers: {body}");
        let dump: wdm_telemetry::FlightDump =
            serde_json::from_str(&body).expect("flight dump parses");
        assert_eq!(dump.total_requests, 10, "one record per provision attempt");
        let routed_seqs: Vec<u64> = dump
            .records
            .iter()
            .filter(|r| r.outcome == "routed")
            .map(|r| r.journal_seq)
            .collect();
        // Single worker, sequential client: routed record k committed as
        // journal event k+1, so it carries pre-commit seq k.
        let expect: Vec<u64> = (0..routed).collect();
        assert_eq!(routed_seqs, expect, "flight records tile the WAL sequence");
        for r in &dump.records {
            assert!(
                r.journal_seq <= live.journal_seq,
                "no record claims a seq the WAL has not reached"
            );
        }

        control2.shutdown();
        server.join().unwrap().expect("clean resumed run");
    });
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&wal_path2).ok();
}

#[test]
fn failure_storm_trips_the_anomaly_trigger_and_freezes_the_ring() {
    let net = nsfnet();
    let wal_path = temp_wal("storm");
    let mut cfg = ServeConfig::new("127.0.0.1:0", &wal_path);
    cfg.threads = 2;
    let control = Control::new();

    std::thread::scope(|s| {
        let server = s.spawn(|| run(&net, &cfg, &control));
        let _guard = KillOnExit(&control);
        let addr = control
            .wait_addr(Duration::from_secs(10))
            .expect("daemon binds");
        let target = addr.to_string();

        // Storm: take down every link, then offer provisions that can only
        // block. The anomaly window (64 requests, threshold 32 negatives)
        // must trip and freeze a snapshot of the ring.
        for l in 0..net.link_count() as u32 {
            let (status, _) =
                http_request(&target, "POST", "/fail-link", &format!("{{\"link\":{l}}}")).unwrap();
            assert_eq!(status, 200);
        }
        for i in 0..80u32 {
            let body = format!("{{\"src\":{},\"dst\":{}}}", i % 14, (i + 3) % 14);
            let (status, _) = http_request(&target, "POST", "/provision", &body).unwrap();
            assert_eq!(status, 409, "a dead network blocks everything");
        }

        let (status, body) = http_request(&target, "GET", "/status", "").unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).expect("status parses");
        assert!(
            boolean(v.get("flight_anomaly_fired").expect("gauge present")),
            "the storm must trip the anomaly trigger: {body}"
        );
        assert_eq!(num(v.get("flight_requests").unwrap()), 80);

        let (status, body) = http_request(&target, "GET", "/debug/flight", "").unwrap();
        assert_eq!(status, 200);
        let dump: wdm_telemetry::FlightDump =
            serde_json::from_str(&body).expect("flight dump parses");
        let anomaly = dump.anomaly.expect("frozen snapshot present");
        assert!(
            anomaly.negative >= 32,
            "the trigger fired with a storm-sized negative count, got {}",
            anomaly.negative
        );
        assert!(!anomaly.records.is_empty(), "snapshot froze the ring");
        // The trigger is one-shot: later requests keep appending to the
        // live ring but the snapshot stays frozen.
        assert!(dump.records.iter().all(|r| r.outcome == "blocked"));

        control.shutdown();
        server.join().unwrap().expect("clean run");
    });
    std::fs::remove_file(&wal_path).ok();
}

#[test]
fn traced_daemon_attributes_wall_time_and_serves_debug_trace() {
    let net = nsfnet();
    let wal_path = temp_wal("traced");
    let trace_path = temp_wal("traced-out");
    let mut cfg = ServeConfig::new("127.0.0.1:0", &wal_path);
    cfg.threads = 2;
    cfg.trace_path = Some(trace_path.clone());
    let control = Control::new();

    std::thread::scope(|s| {
        let server = s.spawn(|| run(&net, &cfg, &control));
        let _guard = KillOnExit(&control);
        let addr = control
            .wait_addr(Duration::from_secs(10))
            .expect("daemon binds");
        let target = addr.to_string();

        let mut ids = Vec::new();
        for i in 0..24u32 {
            let body = format!("{{\"src\":{},\"dst\":{}}}", i % 14, (i * 5 + 2) % 14);
            let (status, body) = http_request(&target, "POST", "/provision", &body).unwrap();
            if status == 200 {
                let v: serde_json::Value = serde_json::from_str(&body).unwrap();
                ids.push(num(v.get("id").unwrap()));
            }
        }
        assert!(!ids.is_empty());
        for id in ids.iter().take(4) {
            http_request(&target, "POST", "/teardown", &format!("{{\"id\":{id}}}")).unwrap();
        }

        let (status, body) = http_request(&target, "GET", "/status", "").unwrap();
        assert_eq!(status, 200);
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(boolean(v.get("tracing").unwrap()), "status reports tracing");
        assert_eq!(num(v.get("workers").unwrap()), 2);
        assert!(num(v.get("wal_seq").unwrap()) > 0);

        // The live span ring renders as Chrome trace_event JSON.
        let (status, body) = http_request(&target, "GET", "/debug/trace?n=8", "").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"traceEvents\""), "chrome envelope: {body}");
        assert!(body.contains("\"queue_wait\""), "pre-route spans present");
        assert!(body.contains("\"commit\""), "commit spans present");

        control.shutdown();
        server.join().unwrap().expect("clean run");
    });

    // The shutdown trace file attributes >= 95% of per-request wall time
    // to named phases — the same math `wdm trace analyze` runs.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let v: serde_json::Value = serde_json::from_str(&text).expect("trace parses");
    let flight: wdm_telemetry::FlightDump =
        serde_json::from_str(&serde_json::to_string(v.get("flight").unwrap()).unwrap())
            .expect("flight section parses");
    let mut attributed = 0u64;
    let mut total = 0u64;
    for r in &flight.records {
        let named: u64 = r.named_phases().iter().map(|&(_, ns)| ns).sum();
        assert!(
            named <= r.total_ns,
            "phases never exceed the request span ({named} > {})",
            r.total_ns
        );
        attributed += named;
        total += r.total_ns;
    }
    assert!(total > 0, "traced records carry wall time");
    let fraction = attributed as f64 / total as f64;
    assert!(
        fraction >= 0.95,
        "span taxonomy must attribute >= 95% of serve wall time, got {:.3}",
        fraction
    );
    std::fs::remove_file(&wal_path).ok();
    std::fs::remove_file(&trace_path).ok();
}
