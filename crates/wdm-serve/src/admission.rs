//! Admission control: a bounded work queue with load-shedding and
//! per-request deadlines.
//!
//! The daemon's accept loop is cheap; the routing work behind it is not.
//! Without a bound between them, a burst turns into an unbounded backlog
//! and every request's latency grows without limit — the classic overload
//! collapse. [`WorkQueue`] puts the bound where the paper's admission
//! story wants it: a full queue **sheds immediately** (the accept loop
//! answers `503` with `Retry-After` instead of queueing), and a request
//! that waited past its deadline is dropped by the worker *before* any
//! routing work is spent on it, so shed load costs almost nothing.
//!
//! Implementation is a plain `Mutex<VecDeque>` + `Condvar` — the queue is
//! touched once per request at each end, so lock traffic is negligible
//! next to a routing call.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One queued unit of work, stamped on admission.
#[derive(Debug)]
pub struct Admitted<T> {
    /// The work item (for the daemon: an accepted connection).
    pub item: T,
    /// When the item was admitted (queue-wait measurement + deadline).
    pub enqueued_at: Instant,
}

impl<T> Admitted<T> {
    /// How long the item has waited so far.
    pub fn queue_wait(&self) -> Duration {
        self.enqueued_at.elapsed()
    }

    /// Whether the item's deadline has passed.
    pub fn expired(&self, deadline: Duration) -> bool {
        self.queue_wait() > deadline
    }
}

/// Why [`WorkQueue::admit`] refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity: shed the request.
    Full,
    /// The queue is closed: the daemon is shutting down.
    Closed,
}

struct Inner<T> {
    items: VecDeque<Admitted<T>>,
    closed: bool,
}

/// A bounded MPMC queue with close semantics.
pub struct WorkQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue admits nothing");
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Maximum queue depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Admits `item`, or refuses without blocking: [`AdmitError::Full`]
    /// when at capacity, [`AdmitError::Closed`] during shutdown. The item
    /// rides back on the error so the caller can shed it properly (answer
    /// `503` on the very connection that was refused).
    pub fn admit(&self, item: T) -> Result<(), (T, AdmitError)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err((item, AdmitError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, AdmitError::Full));
        }
        inner.items.push_back(Admitted {
            item,
            enqueued_at: Instant::now(),
        });
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Takes the oldest item, blocking up to `wait`. `None` means either
    /// the timeout elapsed or the queue closed empty — check
    /// [`Self::is_closed`] to tell shutdown from a lull.
    pub fn take(&self, wait: Duration) -> Option<Admitted<T>> {
        let deadline = Instant::now() + wait;
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timeout) = self.ready.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
            if timeout.timed_out() && inner.items.is_empty() {
                return None;
            }
        }
    }

    /// Closes the queue: future [`admit`](Self::admit)s refuse, blocked
    /// and future [`take`](Self::take)s drain the remaining items then
    /// return `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_take_is_fifo() {
        let q = WorkQueue::new(4);
        q.admit(1).unwrap();
        q.admit(2).unwrap();
        q.admit(3).unwrap();
        assert_eq!(q.depth(), 3);
        let wait = Duration::from_millis(50);
        assert_eq!(q.take(wait).map(|a| a.item), Some(1));
        assert_eq!(q.take(wait).map(|a| a.item), Some(2));
        assert_eq!(q.take(wait).map(|a| a.item), Some(3));
    }

    #[test]
    fn full_queue_sheds_immediately() {
        let q = WorkQueue::new(2);
        q.admit('a').unwrap();
        q.admit('b').unwrap();
        let t0 = Instant::now();
        assert_eq!(q.admit('c'), Err(('c', AdmitError::Full)));
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "shed must not block"
        );
        // Draining one slot re-opens admission.
        q.take(Duration::from_millis(10)).unwrap();
        q.admit('c').unwrap();
    }

    #[test]
    fn close_drains_then_refuses() {
        let q = WorkQueue::new(4);
        q.admit(7).unwrap();
        q.close();
        assert_eq!(q.admit(8), Err((8, AdmitError::Closed)));
        // The item admitted before close still drains…
        assert_eq!(q.take(Duration::from_millis(10)).map(|a| a.item), Some(7));
        // …then takes return None without waiting out the timeout.
        let t0 = Instant::now();
        assert!(q.take(Duration::from_secs(5)).is_none());
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert!(q.is_closed());
    }

    #[test]
    fn take_blocks_until_an_item_arrives() {
        let q = WorkQueue::new(1);
        std::thread::scope(|s| {
            let taker = s.spawn(|| q.take(Duration::from_secs(5)).map(|a| a.item));
            std::thread::sleep(Duration::from_millis(20));
            q.admit(42).unwrap();
            assert_eq!(taker.join().unwrap(), Some(42));
        });
    }

    #[test]
    fn expiry_is_measured_from_admission() {
        let q = WorkQueue::new(1);
        q.admit(()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let a = q.take(Duration::from_millis(10)).unwrap();
        assert!(a.expired(Duration::from_millis(5)));
        assert!(!a.expired(Duration::from_secs(60)));
        assert!(a.queue_wait() >= Duration::from_millis(30));
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        // Capacity exceeds the offered total: nothing is shed, so every
        // admitted item must come back out exactly once.
        let q = WorkQueue::new(2048);
        let total = 8 * 200;
        let taken = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for p in 0..8 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..200 {
                        q.admit(p * 1000 + i).unwrap();
                    }
                });
            }
            for _ in 0..4 {
                let q = &q;
                let taken = &taken;
                s.spawn(move || {
                    while taken.load(std::sync::atomic::Ordering::Relaxed) < total {
                        if q.take(Duration::from_millis(20)).is_some() {
                            taken.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(taken.load(std::sync::atomic::Ordering::Relaxed), total);
        assert_eq!(q.depth(), 0);
    }
}
