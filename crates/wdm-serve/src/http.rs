//! A dependency-free, hardened HTTP/1.1 listener core.
//!
//! Grown out of `wdm serve-metrics`' inline reader (PR 5), generalized so
//! both that exporter and the `wdm serve` daemon speak through one
//! implementation. The parser is deliberately small — request line,
//! headers, optional `Content-Length` body, `Connection: close` responses
//! — but strict about the ways real clients misbehave:
//!
//! * **partial reads** — the head is accumulated across however many
//!   `read` calls the socket needs; a peer that stalls mid-head hits the
//!   socket read timeout instead of wedging the accept loop;
//! * **oversized request lines/heads** — heads are capped at
//!   [`MAX_HEAD_BYTES`]; one byte over returns [`HttpError::HeadTooLarge`]
//!   (431) without buffering the rest;
//! * **bad `Content-Length`** — non-numeric, negative, overflowing or
//!   over-[`MAX_BODY_BYTES`] declarations are rejected before any body
//!   byte is read;
//! * **early disconnect** — EOF mid-head or mid-body returns
//!   [`HttpError::Disconnected`], never a partial [`Request`].
//!
//! Every error maps to a proper status line via [`HttpError::status`], so
//! the serving loop can answer malformed input and move on.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on the request head (request line + headers + CRLFCRLF).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Hard cap on a declared request body.
pub const MAX_BODY_BYTES: usize = 256 * 1024;
/// Default per-socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The head never terminated within [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared body length is invalid or beyond [`MAX_BODY_BYTES`].
    BadContentLength(String),
    /// The request line is not `METHOD target HTTP/…`.
    MalformedHead(String),
    /// The peer closed the connection before a full request arrived.
    Disconnected,
    /// The socket timed out mid-request.
    Timeout,
    /// Any other socket error.
    Io(String),
}

impl HttpError {
    /// The status line this error answers with.
    pub fn status(&self) -> &'static str {
        match self {
            HttpError::HeadTooLarge => "431 Request Header Fields Too Large",
            HttpError::BadContentLength(_) | HttpError::MalformedHead(_) => "400 Bad Request",
            HttpError::Disconnected | HttpError::Io(_) => "400 Bad Request",
            HttpError::Timeout => "408 Request Timeout",
        }
    }

    /// Whether answering is pointless (the peer is already gone).
    pub fn peer_gone(&self) -> bool {
        matches!(self, HttpError::Disconnected | HttpError::Io(_))
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BadContentLength(v) => write!(f, "bad content-length {v:?}"),
            HttpError::MalformedHead(line) => write!(f, "malformed request line {line:?}"),
            HttpError::Disconnected => write!(f, "peer disconnected mid-request"),
            HttpError::Timeout => write!(f, "socket timed out"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/provision`.
    pub target: String,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e.to_string()),
    }
}

/// Reads and parses one request from `stream`, enforcing the module's
/// size caps and the socket's read timeout (installed here).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(IO_TIMEOUT)).ok();
    stream.set_write_timeout(Some(IO_TIMEOUT)).ok();

    // Accumulate the head across partial reads, never past the cap.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let want = chunk.len().min(MAX_HEAD_BYTES + 4 - buf.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(io_error(e)),
        }
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = (parts.next(), parts.next(), parts.next());
    let (Some(method), Some(target), Some(version)) = (method, target, version) else {
        return Err(HttpError::MalformedHead(truncate_for_error(request_line)));
    };
    if !version.starts_with("HTTP/") {
        return Err(HttpError::MalformedHead(truncate_for_error(request_line)));
    }

    // Headers: only Content-Length matters to this server.
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let value = value.trim();
            let parsed: usize = value
                .parse()
                .map_err(|_| HttpError::BadContentLength(truncate_for_error(value)))?;
            if parsed > MAX_BODY_BYTES {
                return Err(HttpError::BadContentLength(format!(
                    "{parsed} (cap {MAX_BODY_BYTES})"
                )));
            }
            content_length = parsed;
        }
    }

    // The body: whatever followed the head in the buffer, then the rest
    // off the socket.
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        // More bytes than declared: pipelining is not supported here.
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let want = chunk.len().min(content_length - body.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(HttpError::Disconnected),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(io_error(e)),
        }
    }

    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn truncate_for_error(s: &str) -> String {
    const CAP: usize = 120;
    if s.len() <= CAP {
        s.to_string()
    } else {
        let mut end = CAP;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

/// Writes one `Connection: close` response. Write errors are returned but
/// are normally ignorable — the peer may have hung up already.
pub fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Convenience: a JSON `200 OK` (or other status) response.
pub fn write_json(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    write_response(stream, status, "application/json", &[], body.as_bytes())
}

/// Answers a read error with its mapped status (unless the peer is gone).
pub fn answer_error(stream: &mut TcpStream, err: &HttpError) {
    if err.peer_gone() {
        return;
    }
    let body = format!("{{\"error\":{:?}}}\n", err.to_string());
    let _ = write_json(stream, err.status(), &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Serves exactly one connection with `read_request` on a background
    /// thread; returns what the parser said.
    fn parse_one(client_bytes: &[u8], shutdown_after_write: bool) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            read_request(&mut conn)
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(client_bytes).unwrap();
        client.flush().unwrap();
        if shutdown_after_write {
            drop(client);
        } else {
            client.shutdown(std::net::Shutdown::Write).ok();
        }
        handle.join().unwrap()
    }

    #[test]
    fn parses_a_full_post_across_partial_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            read_request(&mut conn)
        });
        let mut client = TcpStream::connect(addr).unwrap();
        // Dribble the request a few bytes at a time across the head/body
        // boundary: the reader must reassemble it.
        let raw = b"POST /provision HTTP/1.1\r\nContent-Length: 17\r\n\r\n{\"src\":1,\"dst\":5}";
        for piece in raw.chunks(7) {
            client.write_all(piece).unwrap();
            client.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let req = handle.join().unwrap().expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/provision");
        assert_eq!(req.body, b"{\"src\":1,\"dst\":5}");
    }

    #[test]
    fn oversized_head_is_rejected_not_buffered_forever() {
        let mut raw = b"GET /".to_vec();
        raw.extend(vec![b'a'; MAX_HEAD_BYTES + 100]);
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert_eq!(parse_one(&raw, false), Err(HttpError::HeadTooLarge));
    }

    #[test]
    fn bad_content_length_values_are_rejected() {
        for bad in ["banana", "-5", "999999999999999999999999"] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            match parse_one(raw.as_bytes(), false) {
                Err(HttpError::BadContentLength(_)) => {}
                other => panic!("content-length {bad:?}: expected rejection, got {other:?}"),
            }
        }
        // Over the cap: structurally valid, still refused.
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match parse_one(raw.as_bytes(), false) {
            Err(HttpError::BadContentLength(_)) => {}
            other => panic!("expected over-cap rejection, got {other:?}"),
        }
    }

    #[test]
    fn early_disconnect_mid_head_and_mid_body_are_clean_errors() {
        // Mid-head: no terminating blank line ever arrives.
        assert_eq!(
            parse_one(b"POST /x HTT", true),
            Err(HttpError::Disconnected)
        );
        // Mid-body: 10 bytes promised, 3 delivered.
        assert_eq!(
            parse_one(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", true),
            Err(HttpError::Disconnected)
        );
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for raw in [
            "\r\n\r\n",                // empty request line
            "GET\r\n\r\n",             // no target
            "GET /x SMTP/1.0\r\n\r\n", // wrong protocol
            "GET /x\r\n\r\n",          // no version
        ] {
            match parse_one(raw.as_bytes(), false) {
                Err(HttpError::MalformedHead(_)) => {}
                other => panic!("{raw:?}: expected malformed-head, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_statuses_map_sensibly() {
        assert!(HttpError::HeadTooLarge.status().starts_with("431"));
        assert!(HttpError::Timeout.status().starts_with("408"));
        assert!(HttpError::MalformedHead(String::new())
            .status()
            .starts_with("400"));
        assert!(HttpError::Disconnected.peer_gone());
        assert!(!HttpError::Timeout.peer_gone());
    }

    #[test]
    fn write_response_emits_well_formed_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            write_response(
                &mut conn,
                "503 Service Unavailable",
                "application/json",
                &[("Retry-After", "1")],
                b"{\"error\":\"overloaded\"}",
            )
            .unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        handle.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.ends_with("{\"error\":\"overloaded\"}"));
    }
}
