//! `wdm loadgen`: an open-loop Poisson load generator for the daemon.
//!
//! Mirrors the simulator's traffic model (§4 dynamic traffic) against a
//! *live* server: provision requests arrive as a Poisson process at
//! `rate` per second, each provisioned connection holds for an
//! exponential time and is then torn down, and an optional fraction of
//! arrivals are link fail/repair events instead. Because the generator is
//! open-loop, the offered load does not slow down when the server does —
//! exactly the regime admission control exists for, so shed (`503`) and
//! blocked (`409`) responses are first-class outcomes, not errors.
//!
//! Every request's wall-clock latency is recorded; the report carries the
//! achieved request rate and p50/p99 — the headline numbers
//! `BENCH_serve.json` tracks.

use std::collections::BinaryHeap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_sim::traffic::sample_exp;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target address, e.g. `127.0.0.1:8080`.
    pub target: String,
    /// Provision arrivals per second (Poisson).
    pub rate: f64,
    /// Run length in seconds of wall-clock time.
    pub duration: f64,
    /// Mean connection holding time in seconds (exponential).
    pub mean_hold: f64,
    /// Fraction of arrivals that are a link-failure event (each one is
    /// repaired after a short exponential delay).
    pub fail_fraction: f64,
    /// Node count to draw endpoints from (matches the served network).
    pub nodes: u32,
    /// Link count to draw failures from.
    pub links: u32,
    /// RNG seed.
    pub seed: u64,
}

impl LoadgenConfig {
    /// A generator against `target` for a network with `nodes`/`links`.
    pub fn new(target: impl Into<String>, nodes: u32, links: u32) -> Self {
        Self {
            target: target.into(),
            rate: 200.0,
            duration: 5.0,
            mean_hold: 1.0,
            fail_fraction: 0.01,
            nodes,
            links,
            seed: 1,
        }
    }
}

/// Outcome tallies and latency quantiles of one loadgen run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LoadgenReport {
    /// Requests sent (provisions + teardowns + fail/repair).
    pub offered: u64,
    /// `200` responses.
    pub ok: u64,
    /// `409` responses (no route / routing blocked).
    pub blocked: u64,
    /// `503` responses (shed by admission control or deadline).
    pub shed: u64,
    /// Transport errors (connect/read failures).
    pub errors: u64,
    /// Provision requests among `offered`.
    pub provisions: u64,
    /// Wall-clock run time in seconds.
    pub elapsed: f64,
    /// Achieved request rate (offered / elapsed).
    pub rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Server-side per-phase latency summaries, scraped from the daemon's
    /// `/metrics` histograms after the run (empty when the scrape failed).
    /// Client latency above says *that* requests were slow; these say
    /// *where* — queue, lock, route, commit or WAL fsync.
    pub server_phases: Vec<PhaseLatency>,
}

/// One serve-path phase's latency summary from the scraped histograms.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PhaseLatency {
    /// Histogram name with the exposition prefix stripped (e.g.
    /// `serve_route_ns`).
    pub phase: String,
    /// Recorded observations.
    pub count: u64,
    /// Median, milliseconds (upper bucket bound, ≤ 12.5 % error).
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
}

/// One HTTP exchange: connect, send, read the status line and body.
/// Returns `(status_code, body)`.
pub fn http_request(
    target: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(target)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: wdm\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::other("unparseable status line"))?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Scheduled teardown: min-heap on due time (reversed for `BinaryHeap`).
struct Due {
    at: Instant,
    /// `Ok(conn_id)` → teardown; `Err(link)` → repair.
    what: Result<u64, u32>,
}

impl PartialEq for Due {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for Due {}
impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Due {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at) // reversed: earliest due first
    }
}

/// Runs the generator to completion (plus a drain phase tearing down
/// whatever is still held).
pub fn run(cfg: &LoadgenConfig) -> LoadgenReport {
    assert!(cfg.nodes >= 2, "need two nodes to provision");
    assert!(cfg.rate > 0.0 && cfg.duration > 0.0);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let started = Instant::now();
    let until = started + Duration::from_secs_f64(cfg.duration);

    let mut report = LoadgenReport {
        offered: 0,
        ok: 0,
        blocked: 0,
        shed: 0,
        errors: 0,
        provisions: 0,
        elapsed: 0.0,
        rps: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
        server_phases: Vec::new(),
    };
    let mut latencies: Vec<f64> = Vec::new();
    let mut due: BinaryHeap<Due> = BinaryHeap::new();
    let mut next_arrival = started;

    let send = |report: &mut LoadgenReport,
                latencies: &mut Vec<f64>,
                method: &str,
                path: &str,
                body: &str|
     -> Option<(u16, String)> {
        let t0 = Instant::now();
        let outcome = http_request(&cfg.target, method, path, body);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        report.offered += 1;
        match outcome {
            Ok((status, resp)) => {
                latencies.push(ms);
                match status {
                    200 => report.ok += 1,
                    409 => report.blocked += 1,
                    503 => report.shed += 1,
                    _ => report.errors += 1,
                }
                Some((status, resp))
            }
            Err(_) => {
                report.errors += 1;
                None
            }
        }
    };

    while Instant::now() < until {
        // Fire everything due (teardowns, repairs) before the next arrival.
        while due.peek().is_some_and(|d| d.at <= Instant::now()) {
            let d = due.pop().expect("peeked");
            match d.what {
                Ok(id) => {
                    send(
                        &mut report,
                        &mut latencies,
                        "POST",
                        "/teardown",
                        &format!("{{\"id\":{id}}}"),
                    );
                }
                Err(link) => {
                    send(
                        &mut report,
                        &mut latencies,
                        "POST",
                        "/repair-link",
                        &format!("{{\"link\":{link}}}"),
                    );
                }
            }
        }

        let now = Instant::now();
        if now < next_arrival {
            let mut sleep = next_arrival - now;
            if let Some(d) = due.peek() {
                sleep = sleep.min(d.at.saturating_duration_since(now));
            }
            std::thread::sleep(sleep.min(Duration::from_millis(5)));
            continue;
        }
        next_arrival += Duration::from_secs_f64(sample_exp(&mut rng, cfg.rate));

        if cfg.links > 0 && rng.gen::<f64>() < cfg.fail_fraction {
            let link = rng.gen_range(0..cfg.links);
            send(
                &mut report,
                &mut latencies,
                "POST",
                "/fail-link",
                &format!("{{\"link\":{link}}}"),
            );
            due.push(Due {
                at: Instant::now()
                    + Duration::from_secs_f64(sample_exp(&mut rng, 1.0 / cfg.mean_hold)),
                what: Err(link),
            });
            continue;
        }

        let s = rng.gen_range(0..cfg.nodes);
        let mut t = rng.gen_range(0..cfg.nodes - 1);
        if t >= s {
            t += 1;
        }
        report.provisions += 1;
        let resp = send(
            &mut report,
            &mut latencies,
            "POST",
            "/provision",
            &format!("{{\"src\":{s},\"dst\":{t}}}"),
        );
        if let Some((200, body)) = resp {
            if let Some(id) = parse_id(&body) {
                let hold = sample_exp(&mut rng, 1.0 / cfg.mean_hold);
                due.push(Due {
                    at: Instant::now() + Duration::from_secs_f64(hold),
                    what: Ok(id),
                });
            }
        }
    }

    // Drain: tear down (and repair) everything still scheduled, so the
    // server ends the run near its starting load.
    while let Some(d) = due.pop() {
        match d.what {
            Ok(id) => {
                send(
                    &mut report,
                    &mut latencies,
                    "POST",
                    "/teardown",
                    &format!("{{\"id\":{id}}}"),
                );
            }
            Err(link) => {
                send(
                    &mut report,
                    &mut latencies,
                    "POST",
                    "/repair-link",
                    &format!("{{\"link\":{link}}}"),
                );
            }
        }
    }

    report.elapsed = started.elapsed().as_secs_f64();
    report.rps = report.offered as f64 / report.elapsed.max(1e-9);
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    report.p50_ms = quantile(&latencies, 0.50);
    report.p99_ms = quantile(&latencies, 0.99);
    // One out-of-band scrape (not counted in `offered`): the server-side
    // phase histograms tell where the latency above was spent.
    report.server_phases = match http_request(&cfg.target, "GET", "/metrics", "") {
        Ok((200, body)) => scrape_phase_latencies(&body),
        _ => Vec::new(),
    };
    report
}

/// Extracts the timing histograms (`*_ns` series) from a Prometheus text
/// exposition and summarises each as p50/p99 milliseconds, using the
/// cumulative `_bucket{le="…"}` counts (nearest-rank on bucket upper
/// bounds, so the error is bounded by the bucket width).
fn scrape_phase_latencies(text: &str) -> Vec<PhaseLatency> {
    use std::collections::BTreeMap;
    let mut series: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((metric, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Some((name, le)) = metric.split_once("_bucket{le=\"") else {
            continue;
        };
        let Some(le) = le.strip_suffix("\"}") else {
            continue;
        };
        if !name.ends_with("_ns") {
            continue;
        }
        let Ok(cumulative) = value.parse::<u64>() else {
            continue;
        };
        let le_ns = if le == "+Inf" {
            f64::INFINITY
        } else {
            match le.parse::<f64>() {
                Ok(v) => v,
                Err(_) => continue,
            }
        };
        let key = name.strip_prefix("wdm_").unwrap_or(name).to_string();
        series.entry(key).or_default().push((le_ns, cumulative));
    }
    series
        .into_iter()
        .filter_map(|(phase, mut rows)| {
            rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("bounds are comparable"));
            let count = rows.last()?.1;
            if count == 0 {
                return None;
            }
            let at = |q: f64| -> f64 {
                let rank = ((q * count as f64).ceil() as u64).max(1);
                let mut bound = f64::INFINITY;
                for &(le, cumulative) in &rows {
                    if cumulative >= rank {
                        bound = le;
                        break;
                    }
                }
                if bound.is_infinite() {
                    // Landed in the +Inf bucket: report the largest finite
                    // bound rather than infinity.
                    bound = rows
                        .iter()
                        .rev()
                        .find(|r| r.0.is_finite())
                        .map(|r| r.0)
                        .unwrap_or(0.0);
                }
                bound / 1e6
            };
            Some(PhaseLatency {
                phase,
                count,
                p50_ms: at(0.50),
                p99_ms: at(0.99),
            })
        })
        .collect()
}

fn parse_id(body: &str) -> Option<u64> {
    #[derive(serde::Deserialize)]
    struct IdResp {
        id: u64,
    }
    serde_json::from_str::<IdResp>(body.trim())
        .ok()
        .map(|r| r.id)
}

/// Nearest-rank quantile: the ⌈q·n⌉-th smallest sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate_sensibly() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.50), 50.0);
        assert_eq!(quantile(&v, 0.99), 99.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn due_heap_pops_earliest_first() {
        let now = Instant::now();
        let mut heap = BinaryHeap::new();
        heap.push(Due {
            at: now + Duration::from_secs(3),
            what: Ok(3),
        });
        heap.push(Due {
            at: now + Duration::from_secs(1),
            what: Ok(1),
        });
        heap.push(Due {
            at: now + Duration::from_secs(2),
            what: Err(2),
        });
        assert_eq!(heap.pop().unwrap().what, Ok(1));
        assert_eq!(heap.pop().unwrap().what, Err(2));
        assert_eq!(heap.pop().unwrap().what, Ok(3));
    }

    #[test]
    fn scrape_summarises_timing_histograms_only() {
        let text = "\
# HELP wdm_serve_route_ns Route computation under the read lock in nanoseconds\n\
# TYPE wdm_serve_route_ns histogram\n\
wdm_serve_route_ns_bucket{le=\"1000\"} 5\n\
wdm_serve_route_ns_bucket{le=\"2000\"} 9\n\
wdm_serve_route_ns_bucket{le=\"+Inf\"} 10\n\
wdm_serve_route_ns_sum 12345\n\
wdm_serve_route_ns_count 10\n\
# TYPE wdm_route_cost_milli histogram\n\
wdm_route_cost_milli_bucket{le=\"8\"} 3\n\
wdm_route_cost_milli_bucket{le=\"+Inf\"} 3\n\
wdm_requests_routed_total 10\n";
        let phases = scrape_phase_latencies(text);
        assert_eq!(phases.len(), 1, "only *_ns series qualify");
        let p = &phases[0];
        assert_eq!(p.phase, "serve_route_ns");
        assert_eq!(p.count, 10);
        // rank(0.5)=5 → le=1000ns; rank(0.99)=10 → +Inf, clamped to the
        // largest finite bound (2000ns).
        assert!((p.p50_ms - 1e-3).abs() < 1e-12);
        assert!((p.p99_ms - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn parse_id_reads_the_provision_response() {
        assert_eq!(parse_id("{\"id\":42,\"cost\":1.5}\n"), Some(42));
        assert_eq!(parse_id("{\"error\":\"no route\"}"), None);
        assert_eq!(parse_id("not json"), None);
    }
}
