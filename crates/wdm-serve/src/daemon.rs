//! The `wdm serve` daemon: a thread-per-core provisioning service over one
//! live network state.
//!
//! # Architecture (DESIGN.md §5i)
//!
//! ```text
//!                    accept loop (nonblocking)
//!                        │  admit / shed 503
//!                 [ bounded WorkQueue ]
//!                   │        │       │
//!                worker    worker  worker      each: warm RouterCtx
//!                   │        │       │
//!         route under read lock (shared state)
//!                   │
//!         commit under write lock ──► WAL (flushed per event)
//! ```
//!
//! One [`NetProvisioner`] owns the mutation lineage — state, journal,
//! connection table — behind an `RwLock`. Workers keep their own warm
//! [`RouterCtx`] and compute routes under the **read** lock, so search
//! (the expensive part) runs concurrently; the **write** lock serializes
//! only the commit, which is O(route length). A commit can conflict with
//! a mutation that landed after the route was computed — then
//! [`NetProvisioner::try_commit`] rolls the state back atomically and the
//! worker re-routes *under the write lock*, where the state cannot move.
//!
//! Rollbacks regress the state's change clocks, which silently breaks
//! every warm context that already synced past them. The daemon handles
//! this with an **epoch counter**: bumped under the write lock on every
//! rollback; each worker re-checks it after acquiring the read lock and
//! invalidates its context on a mismatch. Fail/repair/teardown only move
//! clocks forward, so they need no epoch bump — the dirty-link sync
//! catches them.
//!
//! Durability: every journal event is flushed to the [`WalSink`] before
//! the request is answered, so an answered mutation is never lost — a
//! `kill -9` costs at most the in-flight request. Graceful shutdown
//! (SIGTERM, or [`Control::shutdown`]) drains the queue, writes a final
//! checkpoint anchor and the graceful-close line.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use wdm_core::aux_engine::RouterCtx;
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_graph::{EdgeId, NodeId};
use wdm_sim::policy::Policy;
use wdm_sim::provisioner::{NetProvisioner, Provisioner};
use wdm_telemetry::{Counter, Hist, Recorder, TelemetrySink};

use crate::admission::{AdmitError, WorkQueue};
use crate::http::{self, Request};
use crate::signal;
use crate::wal::{WalError, WalSink};

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads (the accept loop is its own, cheap, loop).
    pub threads: usize,
    /// Provisioning policy.
    pub policy: Policy,
    /// Write-ahead log path.
    pub wal_path: PathBuf,
    /// Admission queue capacity; a full queue sheds with `503`.
    pub queue_capacity: usize,
    /// Per-request deadline measured from admission; expired requests are
    /// dropped before any routing work.
    pub deadline: Duration,
    /// Checkpoint anchor cadence in journal events (0 disables anchors).
    pub checkpoint_every: u64,
    /// Whether to install SIGINT/SIGTERM handlers and treat either as a
    /// graceful shutdown request (the CLI sets this; tests drive
    /// [`Control`] directly).
    pub handle_signals: bool,
    /// Resume state: replayed from a previous WAL instead of a fresh
    /// network (the new WAL's header checkpoint is this state).
    pub resume_state: Option<ResidualState>,
}

impl ServeConfig {
    /// Defaults for `addr`/`wal_path`: loopback on an ephemeral port,
    /// four workers, a 256-deep queue, 2 s deadline, anchors every 256
    /// events.
    pub fn new(addr: impl Into<String>, wal_path: impl Into<PathBuf>) -> Self {
        Self {
            addr: addr.into(),
            threads: 4,
            policy: Policy::CostOnly,
            wal_path: wal_path.into(),
            queue_capacity: 256,
            deadline: Duration::from_secs(2),
            checkpoint_every: 256,
            handle_signals: false,
            resume_state: None,
        }
    }
}

/// Shared control surface between the caller and a running [`run`].
///
/// [`run`] blocks until shutdown; callers hold a `&Control` on another
/// thread (tests use `std::thread::scope`) to learn the bound address and
/// request termination.
#[derive(Default)]
pub struct Control {
    shutdown: AtomicBool,
    crash: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
    addr_ready: Condvar,
}

impl Control {
    /// A fresh control block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a graceful shutdown: drain the queue, final checkpoint,
    /// graceful-close line.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Simulates a kill: workers stop immediately, queued requests are
    /// abandoned, **no** final checkpoint or graceful-close line is
    /// written. The WAL is left exactly as a `kill -9` would leave it
    /// (crash-recovery tests drive this).
    pub fn crash(&self) {
        self.crash.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn crashed(&self) -> bool {
        self.crash.load(Ordering::SeqCst)
    }

    /// Blocks until the daemon has bound its listener, returning the
    /// actual address (resolves `:0`). `None` on timeout.
    pub fn wait_addr(&self, timeout: Duration) -> Option<SocketAddr> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.addr.lock().unwrap();
        loop {
            if let Some(addr) = *guard {
                return Some(addr);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self.addr_ready.wait_timeout(guard, deadline - now).unwrap();
            guard = g;
        }
    }

    fn publish_addr(&self, addr: SocketAddr) {
        *self.addr.lock().unwrap() = Some(addr);
        self.addr_ready.notify_all();
    }
}

/// What a completed [`run`] reports.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeReport {
    /// Journal events written.
    pub journal_seq: u64,
    /// Live connections at shutdown.
    pub connections: usize,
    /// Final state hash.
    pub semantic_hash: u64,
    /// Whether the graceful-close line was written (false after
    /// [`Control::crash`]).
    pub clean_shutdown: bool,
    /// Counter snapshot (`serve_*` names from the telemetry registry).
    pub counters: std::collections::BTreeMap<String, u64>,
}

type WorkerCtx = RouterCtx;

/// JSON request bodies.
#[derive(serde::Deserialize)]
struct ProvisionReq {
    src: u32,
    dst: u32,
}

#[derive(serde::Deserialize)]
struct TeardownReq {
    id: u64,
}

#[derive(serde::Deserialize)]
struct LinkReq {
    link: u32,
}

/// Runs the daemon until shutdown. Blocks; see [`Control`] for the
/// caller-side surface.
pub fn run(
    net: &WdmNetwork,
    cfg: &ServeConfig,
    control: &Control,
) -> Result<ServeReport, WalError> {
    if cfg.handle_signals {
        signal::install(signal::SIGINT);
        signal::install(signal::SIGTERM);
    }

    let initial = cfg
        .resume_state
        .clone()
        .unwrap_or_else(|| ResidualState::fresh(net));
    let wal = WalSink::create(&cfg.wal_path, net, cfg.policy, &initial)?;
    let prov = RwLock::new(NetProvisioner::with_parts(
        net,
        cfg.policy,
        initial,
        RouterCtx::new(),
        wal,
    ));
    let epoch = AtomicU64::new(0);
    let sink = TelemetrySink::new();
    let queue: WorkQueue<TcpStream> = WorkQueue::new(cfg.queue_capacity);

    let listener = TcpListener::bind(&cfg.addr).map_err(WalError::Io)?;
    listener.set_nonblocking(true).map_err(WalError::Io)?;
    control.publish_addr(listener.local_addr().map_err(WalError::Io)?);

    std::thread::scope(|s| {
        for _ in 0..cfg.threads.max(1) {
            s.spawn(|| worker_loop(net, cfg, control, &prov, &epoch, &sink, &queue));
        }

        // Accept loop: admit or shed; never blocks on a worker.
        loop {
            let signalled = cfg.handle_signals && signal::shutdown_requested();
            if control.stopping() || signalled {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => match queue.admit(stream) {
                    Ok(()) => {}
                    Err((mut stream, AdmitError::Full)) => {
                        sink.add(Counter::ServeShed, 1);
                        let _ = http::write_response(
                            &mut stream,
                            "503 Service Unavailable",
                            "application/json",
                            &[("Retry-After", "1")],
                            b"{\"error\":\"overloaded\"}\n",
                        );
                    }
                    Err((_, AdmitError::Closed)) => break,
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        queue.close();
    });

    // Workers have drained (or abandoned, on crash) the queue.
    let mut prov = prov.into_inner().unwrap();
    let clean = !control.crashed();
    if clean {
        let snapshot = prov.state().clone();
        let wal = prov.journal_mut();
        wal.checkpoint(&snapshot);
        wal.finalize(&snapshot)?;
    }
    if let Some(e) = prov.journal_mut().take_error() {
        return Err(WalError::Io(e));
    }
    Ok(ServeReport {
        journal_seq: prov.journal_seq(),
        connections: prov.active_connections(),
        semantic_hash: prov.semantic_hash(),
        clean_shutdown: clean,
        counters: sink.snapshot().counters,
    })
}

fn worker_loop(
    net: &WdmNetwork,
    cfg: &ServeConfig,
    control: &Control,
    prov: &RwLock<
        NetProvisioner<'_, wdm_telemetry::NoopRecorder, WalSink, wdm_telemetry::NoopTracer>,
    >,
    epoch: &AtomicU64,
    sink: &TelemetrySink,
    queue: &WorkQueue<TcpStream>,
) {
    let mut ctx: WorkerCtx = RouterCtx::new();
    let mut last_epoch = epoch.load(Ordering::Acquire);
    loop {
        if control.crashed() {
            return; // Abandon everything, like a kill would.
        }
        let Some(admitted) = queue.take(Duration::from_millis(50)) else {
            if queue.is_closed() {
                return;
            }
            continue;
        };
        let queue_wait = admitted.queue_wait();
        let expired = admitted.expired(cfg.deadline);
        let mut stream = admitted.item;
        sink.observe(Hist::ServeQueueNanos, queue_wait.as_nanos() as u64);
        if expired {
            sink.add(Counter::ServeDeadlineDrop, 1);
            let _ = http::write_response(
                &mut stream,
                "503 Service Unavailable",
                "application/json",
                &[("Retry-After", "1")],
                b"{\"error\":\"deadline exceeded\"}\n",
            );
            continue;
        }
        let started = Instant::now();
        match http::read_request(&mut stream) {
            Ok(req) => {
                dispatch(
                    net,
                    cfg,
                    prov,
                    epoch,
                    sink,
                    &req,
                    &mut stream,
                    &mut ctx,
                    &mut last_epoch,
                );
            }
            Err(e) => {
                sink.add(Counter::ServeBadRequest, 1);
                http::answer_error(&mut stream, &e);
            }
        }
        sink.observe(Hist::ServeLatencyNanos, started.elapsed().as_nanos() as u64);
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    net: &WdmNetwork,
    cfg: &ServeConfig,
    prov: &RwLock<
        NetProvisioner<'_, wdm_telemetry::NoopRecorder, WalSink, wdm_telemetry::NoopTracer>,
    >,
    epoch: &AtomicU64,
    sink: &TelemetrySink,
    req: &Request,
    stream: &mut TcpStream,
    ctx: &mut WorkerCtx,
    last_epoch: &mut u64,
) {
    match (req.method.as_str(), req.target.as_str()) {
        ("POST", "/provision") => {
            let Some(body) = parse_body::<ProvisionReq>(sink, stream, &req.body) else {
                return;
            };
            let n = net.node_count() as u32;
            if body.src >= n || body.dst >= n || body.src == body.dst {
                sink.add(Counter::ServeBadRequest, 1);
                let _ = http::write_json(
                    stream,
                    "400 Bad Request",
                    "{\"error\":\"invalid endpoints\"}\n",
                );
                return;
            }
            let (s, t) = (NodeId(body.src), NodeId(body.dst));

            // Route under the read lock with this worker's warm context.
            // The epoch check must happen *inside* the lock: rollbacks
            // only occur under the write lock, so a stable epoch here
            // guarantees the clocks this context syncs against are
            // monotone.
            let routed = {
                let guard = prov.read().unwrap();
                let now_epoch = epoch.load(Ordering::Acquire);
                if now_epoch != *last_epoch {
                    ctx.invalidate();
                    *last_epoch = now_epoch;
                }
                cfg.policy.route_ctx(ctx, net, guard.state(), s, t)
            };
            let route = match routed {
                Ok(route) => route,
                Err(e) => {
                    sink.add(Counter::ServeProvisionBlocked, 1);
                    let _ = http::write_json(
                        stream,
                        "409 Conflict",
                        &format!(
                            "{{\"error\":\"no route\",\"detail\":{:?}}}\n",
                            e.to_string()
                        ),
                    );
                    return;
                }
            };

            // Commit under the write lock. The state may have moved since
            // the route was computed; try_commit detects the conflict and
            // rolls back atomically, after which we re-route and commit
            // in place — the write lock guarantees no further movement.
            let mut guard = prov.write().unwrap();
            let outcome = match guard.try_commit(s, t, route) {
                Ok(id) => Some(id),
                Err(_conflict) => {
                    // try_commit already invalidated the provisioner's
                    // own context; the rollback regressed clocks, so
                    // every worker context must resync too.
                    epoch.fetch_add(1, Ordering::AcqRel);
                    sink.add(Counter::ServeConflictRetries, 1);
                    match guard.route(s, t) {
                        Ok(route) => Some(guard.commit(s, t, route)),
                        Err(_) => None,
                    }
                }
            };
            match outcome {
                Some(id) => {
                    let cost = guard
                        .connection(id)
                        .map(|c| c.route.total_cost())
                        .unwrap_or(0.0);
                    maybe_checkpoint(&mut guard, cfg.checkpoint_every);
                    drop(guard);
                    sink.add(Counter::ServeProvisionOk, 1);
                    let _ = http::write_json(
                        stream,
                        "200 OK",
                        &format!("{{\"id\":{id},\"cost\":{cost}}}\n"),
                    );
                }
                None => {
                    drop(guard);
                    sink.add(Counter::ServeProvisionBlocked, 1);
                    let _ = http::write_json(stream, "409 Conflict", "{\"error\":\"no route\"}\n");
                }
            }
        }
        ("POST", "/teardown") => {
            let Some(body) = parse_body::<TeardownReq>(sink, stream, &req.body) else {
                return;
            };
            let mut guard = prov.write().unwrap();
            let released = guard.teardown(body.id).is_some();
            if released {
                maybe_checkpoint(&mut guard, cfg.checkpoint_every);
            }
            drop(guard);
            if released {
                sink.add(Counter::ServeTeardownOk, 1);
                let _ = http::write_json(stream, "200 OK", "{\"released\":true}\n");
            } else {
                sink.add(Counter::ServeTeardownMiss, 1);
                let _ = http::write_json(
                    stream,
                    "404 Not Found",
                    "{\"error\":\"unknown connection\"}\n",
                );
            }
        }
        ("POST", "/fail-link") | ("POST", "/repair-link") => {
            let Some(body) = parse_body::<LinkReq>(sink, stream, &req.body) else {
                return;
            };
            if body.link as usize >= net.link_count() {
                sink.add(Counter::ServeBadRequest, 1);
                let _ =
                    http::write_json(stream, "400 Bad Request", "{\"error\":\"unknown link\"}\n");
                return;
            }
            let link = EdgeId(body.link);
            let repair = req.target == "/repair-link";
            let mut guard = prov.write().unwrap();
            let changed = if repair {
                guard.repair_link(link)
            } else {
                guard.fail_link(link)
            };
            maybe_checkpoint(&mut guard, cfg.checkpoint_every);
            drop(guard);
            sink.add(
                if repair {
                    Counter::ServeRepairLink
                } else {
                    Counter::ServeFailLink
                },
                1,
            );
            let _ = http::write_json(stream, "200 OK", &format!("{{\"changed\":{changed}}}\n"));
        }
        ("GET", "/state") => {
            let guard = prov.read().unwrap();
            let body = format!(
                "{{\"connections\":{},\"journal_seq\":{},\"semantic_hash\":{},\"load\":{}}}\n",
                guard.active_connections(),
                guard.journal_seq(),
                guard.semantic_hash(),
                guard.state().network_load(net),
            );
            drop(guard);
            sink.add(Counter::ServeQuery, 1);
            let _ = http::write_json(stream, "200 OK", &body);
        }
        ("GET", "/metrics") => {
            let body = sink.snapshot().prometheus("wdm");
            let _ = http::write_response(
                stream,
                "200 OK",
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
            );
        }
        ("GET", "/healthz") => {
            let _ = http::write_response(stream, "200 OK", "text/plain", &[], b"ok\n");
        }
        _ => {
            let _ = http::write_json(
                stream,
                "404 Not Found",
                "{\"error\":\"no such endpoint\"}\n",
            );
        }
    }
}

fn parse_body<T: serde::Deserialize>(
    sink: &TelemetrySink,
    stream: &mut TcpStream,
    body: &[u8],
) -> Option<T> {
    match serde_json::from_slice::<T>(body) {
        Ok(v) => Some(v),
        Err(e) => {
            sink.add(Counter::ServeBadRequest, 1);
            let _ = http::write_json(
                stream,
                "400 Bad Request",
                &format!(
                    "{{\"error\":\"bad body\",\"detail\":{:?}}}\n",
                    e.to_string()
                ),
            );
            None
        }
    }
}

fn maybe_checkpoint(
    guard: &mut NetProvisioner<'_, wdm_telemetry::NoopRecorder, WalSink, wdm_telemetry::NoopTracer>,
    every: u64,
) {
    if every == 0 {
        return;
    }
    let seq = guard.journal_seq();
    // Not `is_multiple_of`: that needs Rust 1.87, above the 1.85 MSRV.
    #[allow(clippy::manual_is_multiple_of)]
    if seq > 0 && seq % every == 0 {
        let snapshot = guard.state().clone();
        guard.journal_mut().checkpoint(&snapshot);
    }
}
