//! The `wdm serve` daemon: a thread-per-core provisioning service over one
//! live network state.
//!
//! # Architecture (DESIGN.md §5i)
//!
//! ```text
//!                    accept loop (nonblocking)
//!                        │  admit / shed 503
//!                 [ bounded WorkQueue ]
//!                   │        │       │
//!                worker    worker  worker      each: warm RouterCtx
//!                   │        │       │
//!         route under read lock (shared state)
//!                   │
//!         commit under write lock ──► WAL (flushed per event)
//! ```
//!
//! One [`NetProvisioner`] owns the mutation lineage — state, journal,
//! connection table — behind an `RwLock`. Workers keep their own warm
//! [`RouterCtx`] and compute routes under the **read** lock, so search
//! (the expensive part) runs concurrently; the **write** lock serializes
//! only the commit, which is O(route length). A commit can conflict with
//! a mutation that landed after the route was computed — then
//! [`NetProvisioner::try_commit`] rolls the state back atomically and the
//! worker re-routes *under the write lock*, where the state cannot move.
//!
//! Rollbacks regress the state's change clocks, which silently breaks
//! every warm context that already synced past them. The daemon handles
//! this with an **epoch counter**: bumped under the write lock on every
//! rollback; each worker re-checks it after acquiring the read lock and
//! invalidates its context on a mismatch. Fail/repair/teardown only move
//! clocks forward, so they need no epoch bump — the dirty-link sync
//! catches them.
//!
//! Durability: every journal event is flushed to the [`WalSink`] before
//! the request is answered, so an answered mutation is never lost — a
//! `kill -9` costs at most the in-flight request. Graceful shutdown
//! (SIGTERM, or [`Control::shutdown`]) drains the queue, writes a final
//! checkpoint anchor and the graceful-close line.
//!
//! # Observability (DESIGN.md §5j)
//!
//! The serve path is generic over the telemetry stack. Counters and
//! histograms always flow into the shared [`TelemetrySink`] (scraped via
//! `/metrics`, with per-phase latency histograms and queue/WAL gauges);
//! every provision lands a WAL-seq-correlated record in the [`Diag`]
//! flight ring (`/debug/flight`). With `--trace`, each worker additionally
//! owns a live [`SpanBuffer`] on a shared clock domain and times the full
//! request lifecycle — queue wait, admission, lock acquires, epoch check,
//! the route phases, commit, WAL fsync, rollback — draining closed spans
//! into the [`Diag`] span ring (`/debug/trace?n=K`, Chrome `trace_event`
//! format) after every request. At clean shutdown the flight dump is
//! written as a `wdm trace analyze`-compatible trace file.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use wdm_core::aux_engine::RouterCtx;
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_graph::{EdgeId, NodeId};
use wdm_sim::policy::Policy;
use wdm_sim::provisioner::{NetProvisioner, Provisioner};
use wdm_telemetry::{
    Counter, FlightRecord, Hist, MonotonicClock, NoopTracer, Phase, Recorder, SpanBuffer,
    SpanRecord, TelemetrySink, Tracer, DEFAULT_FLIGHT_CAPACITY,
};

use crate::admission::{AdmitError, WorkQueue};
use crate::diag::Diag;
use crate::http::{self, Request};
use crate::signal;
use crate::wal::{ServeLog, WalError, WalSink};

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads (the accept loop is its own, cheap, loop).
    pub threads: usize,
    /// Provisioning policy.
    pub policy: Policy,
    /// Write-ahead log path.
    pub wal_path: PathBuf,
    /// Admission queue capacity; a full queue sheds with `503`.
    pub queue_capacity: usize,
    /// Per-request deadline measured from admission; expired requests are
    /// dropped before any routing work.
    pub deadline: Duration,
    /// Checkpoint anchor cadence in journal events (0 disables anchors).
    pub checkpoint_every: u64,
    /// Whether to install SIGINT/SIGTERM handlers and treat either as a
    /// graceful shutdown request (the CLI sets this; tests drive
    /// [`Control`] directly).
    pub handle_signals: bool,
    /// Resume state: replayed from a previous WAL instead of a fresh
    /// network (the new WAL's header checkpoint is this state).
    pub resume_state: Option<ResidualState>,
    /// When set, workers carry live span buffers and a `wdm trace
    /// analyze`-compatible trace file is written here at clean shutdown.
    pub trace_path: Option<PathBuf>,
    /// Flight-recorder ring capacity (per-request records behind
    /// `/debug/flight`).
    pub flight_capacity: usize,
}

impl ServeConfig {
    /// Defaults for `addr`/`wal_path`: loopback on an ephemeral port,
    /// four workers, a 256-deep queue, 2 s deadline, anchors every 256
    /// events, tracing off, the default flight ring.
    pub fn new(addr: impl Into<String>, wal_path: impl Into<PathBuf>) -> Self {
        Self {
            addr: addr.into(),
            threads: 4,
            policy: Policy::CostOnly,
            wal_path: wal_path.into(),
            queue_capacity: 256,
            deadline: Duration::from_secs(2),
            checkpoint_every: 256,
            handle_signals: false,
            resume_state: None,
            trace_path: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// Shared control surface between the caller and a running [`run`].
///
/// [`run`] blocks until shutdown; callers hold a `&Control` on another
/// thread (tests use `std::thread::scope`) to learn the bound address and
/// request termination.
#[derive(Default)]
pub struct Control {
    shutdown: AtomicBool,
    crash: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
    addr_ready: Condvar,
}

impl Control {
    /// A fresh control block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a graceful shutdown: drain the queue, final checkpoint,
    /// graceful-close line.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Simulates a kill: workers stop immediately, queued requests are
    /// abandoned, **no** final checkpoint or graceful-close line is
    /// written. The WAL is left exactly as a `kill -9` would leave it
    /// (crash-recovery tests drive this).
    pub fn crash(&self) {
        self.crash.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn crashed(&self) -> bool {
        self.crash.load(Ordering::SeqCst)
    }

    /// Blocks until the daemon has bound its listener, returning the
    /// actual address (resolves `:0`). `None` on timeout.
    pub fn wait_addr(&self, timeout: Duration) -> Option<SocketAddr> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.addr.lock().unwrap();
        loop {
            if let Some(addr) = *guard {
                return Some(addr);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self.addr_ready.wait_timeout(guard, deadline - now).unwrap();
            guard = g;
        }
    }

    fn publish_addr(&self, addr: SocketAddr) {
        *self.addr.lock().unwrap() = Some(addr);
        self.addr_ready.notify_all();
    }
}

/// What a completed [`run`] reports.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeReport {
    /// Journal events written.
    pub journal_seq: u64,
    /// Live connections at shutdown.
    pub connections: usize,
    /// Final state hash.
    pub semantic_hash: u64,
    /// Whether the graceful-close line was written (false after
    /// [`Control::crash`]).
    pub clean_shutdown: bool,
    /// Counter snapshot (`serve_*` names from the telemetry registry).
    pub counters: std::collections::BTreeMap<String, u64>,
}

/// A worker-owned tracer the daemon can drain: spans close into the
/// worker's private buffer while a request is handled, then move to the
/// shared [`Diag`] span ring in one batch. [`NoopTracer`] drains nothing,
/// so the untraced daemon never touches the ring or its lock.
pub trait WorkerTracer: Tracer + Sized {
    /// Takes every span closed since the last drain.
    fn drain(&self) -> Vec<SpanRecord>;
}

impl WorkerTracer for NoopTracer {
    #[inline(always)]
    fn drain(&self) -> Vec<SpanRecord> {
        Vec::new()
    }
}

impl<C: wdm_telemetry::Clock + Clone> WorkerTracer for SpanBuffer<C> {
    fn drain(&self) -> Vec<SpanRecord> {
        self.take_records()
    }
}

/// Per-request timestamps captured in the worker loop, before dispatch.
///
/// The `u64` fields are tracer-clock readings (all zero when untraced)
/// used to back-fill the queue-wait and admission spans once `route_ctx`
/// has opened the request's span ordinal; `wall`/`queue_wait_ns` are real
/// wall measurements, so flight records carry a total even without
/// `--trace`.
struct ReqTiming {
    /// When the request entered the admission queue (tracer clock).
    queue_start: u64,
    /// When the worker picked it up and began reading the socket.
    read_start: u64,
    /// Wall-clock anchor at `read_start`.
    wall: Instant,
    /// Measured queue wait.
    queue_wait_ns: u64,
}

/// On-disk shape of `--trace` output: field-compatible with the
/// `wdm simulate --trace` file, so `wdm trace analyze` consumes daemon
/// traces unchanged. `seed` is zero — a daemon has no replication seed.
#[derive(serde::Serialize)]
struct ServeTraceFile {
    policy: String,
    seed: u64,
    phases: Vec<String>,
    offered: u64,
    flight: wdm_telemetry::FlightDump,
}

/// JSON request bodies.
#[derive(serde::Deserialize)]
struct ProvisionReq {
    src: u32,
    dst: u32,
}

#[derive(serde::Deserialize)]
struct TeardownReq {
    id: u64,
}

#[derive(serde::Deserialize)]
struct LinkReq {
    link: u32,
}

/// Runs the daemon until shutdown. Blocks; see [`Control`] for the
/// caller-side surface.
pub fn run(
    net: &WdmNetwork,
    cfg: &ServeConfig,
    control: &Control,
) -> Result<ServeReport, WalError> {
    if cfg.handle_signals {
        signal::install(signal::SIGINT);
        signal::install(signal::SIGTERM);
    }

    let initial = cfg
        .resume_state
        .clone()
        .unwrap_or_else(|| ResidualState::fresh(net));
    let wal = WalSink::create(&cfg.wal_path, net, cfg.policy, &initial)?;
    let prov = RwLock::new(NetProvisioner::with_parts(
        net,
        cfg.policy,
        initial,
        RouterCtx::new(),
        wal,
    ));
    let epoch = AtomicU64::new(0);
    let sink = TelemetrySink::new();
    let queue: WorkQueue<TcpStream> = WorkQueue::new(cfg.queue_capacity);
    let tracing = cfg.trace_path.is_some();
    let diag = Diag::new(cfg.flight_capacity.max(1), tracing);
    // One clock domain for every worker's span buffer, so interleaved
    // requests line up on a common timeline in `/debug/trace`.
    let clock = MonotonicClock::default();

    let listener = TcpListener::bind(&cfg.addr).map_err(WalError::Io)?;
    listener.set_nonblocking(true).map_err(WalError::Io)?;
    control.publish_addr(listener.local_addr().map_err(WalError::Io)?);

    std::thread::scope(|s| {
        let (prov, epoch, sink, queue, diag) = (&prov, &epoch, &sink, &queue, &diag);
        for _ in 0..cfg.threads.max(1) {
            // Monomorphise the worker per mode: the untraced daemon runs
            // the NoopTracer instantiation, where every span call is an
            // empty inlined body.
            if tracing {
                let tracer = SpanBuffer::with_clock(clock);
                s.spawn(move || {
                    worker_loop(net, cfg, control, prov, epoch, sink, queue, diag, tracer)
                });
            } else {
                s.spawn(move || {
                    worker_loop(
                        net, cfg, control, prov, epoch, sink, queue, diag, NoopTracer,
                    )
                });
            }
        }

        // Accept loop: admit or shed; never blocks on a worker.
        loop {
            let signalled = cfg.handle_signals && signal::shutdown_requested();
            if control.stopping() || signalled {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => match queue.admit(stream) {
                    Ok(()) => {}
                    Err((mut stream, AdmitError::Full)) => {
                        sink.add(Counter::ServeShed, 1);
                        let _ = http::write_response(
                            &mut stream,
                            "503 Service Unavailable",
                            "application/json",
                            &[("Retry-After", "1")],
                            b"{\"error\":\"overloaded\"}\n",
                        );
                    }
                    Err((_, AdmitError::Closed)) => break,
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        queue.close();
    });

    // Workers have drained (or abandoned, on crash) the queue.
    let mut prov = prov.into_inner().unwrap();
    let clean = !control.crashed();
    if clean {
        let snapshot = prov.state().clone();
        let wal = prov.journal_mut();
        wal.checkpoint(&snapshot);
        wal.finalize(&snapshot)?;
        if let Some(path) = &cfg.trace_path {
            let trace = ServeTraceFile {
                policy: cfg.policy.name().to_string(),
                seed: 0,
                phases: Phase::ALL.iter().map(|p| p.name().to_string()).collect(),
                offered: diag.flight.total_requests(),
                flight: diag.flight.dump(),
            };
            let text = serde_json::to_string(&trace)
                .map_err(|e| WalError::Io(std::io::Error::other(e.to_string())))?;
            std::fs::write(path, text).map_err(WalError::Io)?;
        }
    }
    if let Some(e) = prov.journal_mut().take_error() {
        return Err(WalError::Io(e));
    }
    Ok(ServeReport {
        journal_seq: prov.journal_seq(),
        connections: prov.active_connections(),
        semantic_hash: prov.semantic_hash(),
        clean_shutdown: clean,
        counters: sink.snapshot().counters,
    })
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<R, W, T, WT>(
    net: &WdmNetwork,
    cfg: &ServeConfig,
    control: &Control,
    prov: &RwLock<NetProvisioner<'_, R, W, T>>,
    epoch: &AtomicU64,
    sink: &TelemetrySink,
    queue: &WorkQueue<TcpStream>,
    diag: &Diag,
    tracer: WT,
) where
    R: Recorder,
    W: ServeLog,
    T: Tracer,
    WT: WorkerTracer,
{
    let mut ctx = RouterCtx::with_recorder_and_tracer(sink, &tracer);
    let mut last_epoch = epoch.load(Ordering::Acquire);
    loop {
        if control.crashed() {
            return; // Abandon everything, like a kill would.
        }
        let Some(admitted) = queue.take(Duration::from_millis(50)) else {
            if queue.is_closed() {
                return;
            }
            continue;
        };
        let queue_wait = admitted.queue_wait();
        let expired = admitted.expired(cfg.deadline);
        let mut stream = admitted.item;
        sink.observe(Hist::ServeQueueNanos, queue_wait.as_nanos() as u64);
        if expired {
            sink.add(Counter::ServeDeadlineDrop, 1);
            let _ = http::write_response(
                &mut stream,
                "503 Service Unavailable",
                "application/json",
                &[("Retry-After", "1")],
                b"{\"error\":\"deadline exceeded\"}\n",
            );
            continue;
        }
        let started = Instant::now();
        let queue_wait_ns = queue_wait.as_nanos() as u64;
        let read_start = tracer.now_ns();
        match http::read_request(&mut stream) {
            Ok(req) => {
                let timing = ReqTiming {
                    queue_start: read_start.saturating_sub(queue_wait_ns),
                    read_start,
                    wall: started,
                    queue_wait_ns,
                };
                dispatch(
                    net,
                    cfg,
                    prov,
                    epoch,
                    sink,
                    queue,
                    diag,
                    &req,
                    &mut stream,
                    &mut ctx,
                    &mut last_epoch,
                    &tracer,
                    &timing,
                );
            }
            Err(e) => {
                sink.add(Counter::ServeBadRequest, 1);
                http::answer_error(&mut stream, &e);
            }
        }
        sink.observe(Hist::ServeLatencyNanos, started.elapsed().as_nanos() as u64);
        let spans = tracer.drain();
        if !spans.is_empty() {
            diag.absorb_spans(spans);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch<R, W, T, CR, WT>(
    net: &WdmNetwork,
    cfg: &ServeConfig,
    prov: &RwLock<NetProvisioner<'_, R, W, T>>,
    epoch: &AtomicU64,
    sink: &TelemetrySink,
    queue: &WorkQueue<TcpStream>,
    diag: &Diag,
    req: &Request,
    stream: &mut TcpStream,
    ctx: &mut RouterCtx<CR, &WT>,
    last_epoch: &mut u64,
    tracer: &WT,
    timing: &ReqTiming,
) where
    R: Recorder,
    W: ServeLog,
    T: Tracer,
    CR: Recorder,
    WT: WorkerTracer,
{
    let (path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (req.target.as_str(), None),
    };
    match (req.method.as_str(), path) {
        ("POST", "/provision") => {
            let Some(body) = parse_body::<ProvisionReq>(sink, stream, &req.body) else {
                return;
            };
            let n = net.node_count() as u32;
            if body.src >= n || body.dst >= n || body.src == body.dst {
                sink.add(Counter::ServeBadRequest, 1);
                let _ = http::write_json(
                    stream,
                    "400 Bad Request",
                    "{\"error\":\"invalid endpoints\"}\n",
                );
                return;
            }
            let (s, t) = (NodeId(body.src), NodeId(body.dst));

            // Route under the read lock with this worker's warm context.
            // The epoch check must happen *inside* the lock: rollbacks
            // only occur under the write lock, so a stable epoch here
            // guarantees the clocks this context syncs against are
            // monotone.
            let lock_wall = Instant::now();
            let t_rl0 = tracer.now_ns();
            let guard = prov.read().unwrap();
            let t_rl1 = tracer.now_ns();
            let read_lock_ns = lock_wall.elapsed().as_nanos() as u64;
            let now_epoch = epoch.load(Ordering::Acquire);
            if now_epoch != *last_epoch {
                ctx.invalidate();
                *last_epoch = now_epoch;
            }
            let t_ec1 = tracer.now_ns();
            let route_wall = Instant::now();
            let routed = cfg.policy.route_ctx(ctx, net, guard.state(), s, t);
            sink.observe(
                Hist::ServeRouteNanos,
                route_wall.elapsed().as_nanos() as u64,
            );
            let t_route1 = tracer.now_ns();
            let seq_seen = guard.journal_seq();
            drop(guard);
            // `route_ctx` opened this request's span ordinal; back-fill
            // the intervals that elapsed before it. Admission runs until
            // the read-lock acquire begins: socket read, parse, validate.
            tracer.record_span(Phase::QueueWait, timing.queue_start, timing.read_start);
            tracer.record_span(Phase::Admission, timing.read_start, t_rl0);
            tracer.record_span(Phase::LockAcquire, t_rl0, t_rl1);
            tracer.record_span(Phase::EpochCheck, t_rl1, t_ec1);

            let route = match routed {
                Ok(route) => route,
                Err(e) => {
                    sink.add(Counter::ServeProvisionBlocked, 1);
                    let _ = http::write_json(
                        stream,
                        "409 Conflict",
                        &format!(
                            "{{\"error\":\"no route\",\"detail\":{:?}}}\n",
                            e.to_string()
                        ),
                    );
                    // Respond opens at `t_route1`: the read-unlock and
                    // back-fill bookkeeping above tile into it.
                    finish_flight(
                        cfg, diag, tracer, timing, s, t, "blocked", seq_seen, 0, t_route1,
                    );
                    return;
                }
            };
            let footprint_links = route.footprint().links.len() as u32;

            // Commit under the write lock. The state may have moved since
            // the route was computed; try_commit detects the conflict and
            // rolls back atomically, after which we re-route and commit
            // in place — the write lock guarantees no further movement.
            // The acquire span opens as soon as the route is in hand
            // (`t_route1`), so the read-unlock and footprint bookkeeping
            // above tile into it rather than into an attribution gap.
            let lock_wall = Instant::now();
            let mut guard = prov.write().unwrap();
            let t_wl1 = tracer.now_ns();
            sink.observe(
                Hist::ServeLockNanos,
                read_lock_ns + lock_wall.elapsed().as_nanos() as u64,
            );
            tracer.record_span(Phase::LockAcquire, t_route1, t_wl1);
            let seq_before = guard.journal_seq();
            let commit_wall = Instant::now();
            let t_c0 = tracer.now_ns();
            let outcome = match guard.try_commit(s, t, route) {
                Ok(id) => {
                    close_commit_spans(sink, tracer, guard.journal_mut(), t_c0);
                    Some(id)
                }
                Err(_conflict) => {
                    // try_commit already invalidated the provisioner's
                    // own context; the rollback regressed clocks, so
                    // every worker context must resync too.
                    epoch.fetch_add(1, Ordering::AcqRel);
                    sink.add(Counter::ServeConflictRetries, 1);
                    match guard.route(s, t) {
                        Ok(route) => {
                            // The failed occupy, its rollback and the
                            // re-route are all conflict fallout.
                            let t_rb1 = tracer.now_ns();
                            tracer.record_span(Phase::Rollback, t_c0, t_rb1);
                            let id = guard.commit(s, t, route);
                            close_commit_spans(sink, tracer, guard.journal_mut(), t_rb1);
                            Some(id)
                        }
                        Err(_) => {
                            tracer.record_span(Phase::Rollback, t_c0, tracer.now_ns());
                            None
                        }
                    }
                }
            };
            // Respond opens here: post-commit bookkeeping (cost lookup,
            // checkpoint cadence, lock release) tiles into the span that
            // ends when the response hits the socket.
            let t_resp0 = tracer.now_ns();
            sink.observe(
                Hist::ServeCommitNanos,
                commit_wall.elapsed().as_nanos() as u64,
            );
            match outcome {
                Some(id) => {
                    let cost = guard
                        .connection(id)
                        .map(|c| c.route.total_cost())
                        .unwrap_or(0.0);
                    maybe_checkpoint(&mut guard, cfg.checkpoint_every, diag);
                    drop(guard);
                    sink.add(Counter::ServeProvisionOk, 1);
                    let _ = http::write_json(
                        stream,
                        "200 OK",
                        &format!("{{\"id\":{id},\"cost\":{cost}}}\n"),
                    );
                    finish_flight(
                        cfg,
                        diag,
                        tracer,
                        timing,
                        s,
                        t,
                        "routed",
                        seq_before,
                        footprint_links,
                        t_resp0,
                    );
                }
                None => {
                    drop(guard);
                    sink.add(Counter::ServeProvisionBlocked, 1);
                    let _ = http::write_json(stream, "409 Conflict", "{\"error\":\"no route\"}\n");
                    finish_flight(
                        cfg, diag, tracer, timing, s, t, "blocked", seq_before, 0, t_resp0,
                    );
                }
            }
        }
        ("POST", "/teardown") => {
            let Some(body) = parse_body::<TeardownReq>(sink, stream, &req.body) else {
                return;
            };
            tracer.begin_request();
            tracer.record_span(Phase::QueueWait, timing.queue_start, timing.read_start);
            let lock_wall = Instant::now();
            let t_l0 = tracer.now_ns();
            tracer.record_span(Phase::Admission, timing.read_start, t_l0);
            let mut guard = prov.write().unwrap();
            sink.observe(Hist::ServeLockNanos, lock_wall.elapsed().as_nanos() as u64);
            tracer.record_span(Phase::LockAcquire, t_l0, tracer.now_ns());
            let t_c0 = tracer.now_ns();
            let released = guard.teardown(body.id).is_some();
            if released {
                close_commit_spans(sink, tracer, guard.journal_mut(), t_c0);
                maybe_checkpoint(&mut guard, cfg.checkpoint_every, diag);
            }
            drop(guard);
            let t_resp0 = tracer.now_ns();
            if released {
                sink.add(Counter::ServeTeardownOk, 1);
                let _ = http::write_json(stream, "200 OK", "{\"released\":true}\n");
            } else {
                sink.add(Counter::ServeTeardownMiss, 1);
                let _ = http::write_json(
                    stream,
                    "404 Not Found",
                    "{\"error\":\"unknown connection\"}\n",
                );
            }
            tracer.record_span(Phase::Respond, t_resp0, tracer.now_ns());
            tracer.record(Phase::Request, timing.queue_start);
        }
        ("POST", "/fail-link") | ("POST", "/repair-link") => {
            let Some(body) = parse_body::<LinkReq>(sink, stream, &req.body) else {
                return;
            };
            if body.link as usize >= net.link_count() {
                sink.add(Counter::ServeBadRequest, 1);
                let _ =
                    http::write_json(stream, "400 Bad Request", "{\"error\":\"unknown link\"}\n");
                return;
            }
            let link = EdgeId(body.link);
            let repair = path == "/repair-link";
            tracer.begin_request();
            tracer.record_span(Phase::QueueWait, timing.queue_start, timing.read_start);
            let lock_wall = Instant::now();
            let t_l0 = tracer.now_ns();
            tracer.record_span(Phase::Admission, timing.read_start, t_l0);
            let mut guard = prov.write().unwrap();
            sink.observe(Hist::ServeLockNanos, lock_wall.elapsed().as_nanos() as u64);
            tracer.record_span(Phase::LockAcquire, t_l0, tracer.now_ns());
            let t_c0 = tracer.now_ns();
            let changed = if repair {
                guard.repair_link(link)
            } else {
                guard.fail_link(link)
            };
            close_commit_spans(sink, tracer, guard.journal_mut(), t_c0);
            maybe_checkpoint(&mut guard, cfg.checkpoint_every, diag);
            drop(guard);
            sink.add(
                if repair {
                    Counter::ServeRepairLink
                } else {
                    Counter::ServeFailLink
                },
                1,
            );
            let t_resp0 = tracer.now_ns();
            let _ = http::write_json(stream, "200 OK", &format!("{{\"changed\":{changed}}}\n"));
            tracer.record_span(Phase::Respond, t_resp0, tracer.now_ns());
            tracer.record(Phase::Request, timing.queue_start);
        }
        ("GET", "/state") => {
            let guard = prov.read().unwrap();
            let body = format!(
                "{{\"connections\":{},\"journal_seq\":{},\"semantic_hash\":{},\"load\":{}}}\n",
                guard.active_connections(),
                guard.journal_seq(),
                guard.semantic_hash(),
                guard.state().network_load(net),
            );
            drop(guard);
            sink.add(Counter::ServeQuery, 1);
            let _ = http::write_json(stream, "200 OK", &body);
        }
        ("GET", "/status") => {
            let guard = prov.read().unwrap();
            let wal_seq = guard.journal_seq();
            let connections = guard.active_connections();
            drop(guard);
            sink.add(Counter::ServeQuery, 1);
            let body = format!(
                "{{\"uptime_secs\":{},\"tracing\":{},\"workers\":{},\"queue_depth\":{},\
                 \"queue_capacity\":{},\"epoch\":{},\"connections\":{connections},\
                 \"wal_seq\":{wal_seq},\"wal_checkpoint_seq\":{},\"flight_requests\":{},\
                 \"flight_anomaly_fired\":{}}}\n",
                diag.uptime_secs(),
                diag.tracing(),
                cfg.threads.max(1),
                queue.depth(),
                queue.capacity(),
                epoch.load(Ordering::Acquire),
                diag.checkpoint_seq(),
                diag.flight.total_requests(),
                diag.flight.anomaly_fired(),
            );
            let _ = http::write_json(stream, "200 OK", &body);
        }
        ("GET", "/debug/flight") => {
            sink.add(Counter::ServeQuery, 1);
            match serde_json::to_string(&diag.flight.dump()) {
                Ok(mut body) => {
                    body.push('\n');
                    let _ = http::write_json(stream, "200 OK", &body);
                }
                Err(e) => {
                    let _ = http::write_json(
                        stream,
                        "500 Internal Server Error",
                        &format!("{{\"error\":{:?}}}\n", e.to_string()),
                    );
                }
            }
        }
        ("GET", "/debug/trace") => {
            sink.add(Counter::ServeQuery, 1);
            let n = query
                .and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("n=")))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(64);
            let mut body = wdm_telemetry::chrome_trace_json(&diag.recent_spans(n));
            body.push('\n');
            let _ = http::write_json(stream, "200 OK", &body);
        }
        ("GET", "/metrics") => {
            let mut snap = sink.snapshot();
            snap.set_gauge("serve_queue_depth", queue.depth() as u64);
            snap.set_gauge("serve_queue_capacity", queue.capacity() as u64);
            snap.set_gauge("serve_epoch", epoch.load(Ordering::Acquire));
            snap.set_gauge("serve_workers", cfg.threads.max(1) as u64);
            {
                let guard = prov.read().unwrap();
                snap.set_gauge("wal_seq", guard.journal_seq());
            }
            snap.set_gauge("wal_checkpoint_seq", diag.checkpoint_seq());
            snap.set_gauge("flight_records", diag.flight.total_requests());
            snap.set_gauge("flight_anomaly_fired", diag.flight.anomaly_fired() as u64);
            let body = snap.prometheus("wdm");
            let _ = http::write_response(
                stream,
                "200 OK",
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
            );
        }
        ("GET", "/healthz") => {
            let _ = http::write_response(stream, "200 OK", "text/plain", &[], b"ok\n");
        }
        _ => {
            let _ = http::write_json(
                stream,
                "404 Not Found",
                "{\"error\":\"no such endpoint\"}\n",
            );
        }
    }
}

/// Closes the commit/WAL-fsync span pair for a journalled mutation that
/// started (on the tracer clock) at `start_ns`: the WAL append+flush time
/// reported by the journal is carved off the tail of the measured stretch,
/// so the two spans tile it without overlap. Also feeds the always-on
/// fsync-latency histogram.
fn close_commit_spans<W: ServeLog, T: Tracer>(
    sink: &TelemetrySink,
    tracer: &T,
    journal: &mut W,
    start_ns: u64,
) {
    let end_ns = tracer.now_ns();
    let wal_ns = journal.take_last_write_ns();
    sink.observe(Hist::WalFsyncNanos, wal_ns);
    let split = end_ns.saturating_sub(wal_ns).max(start_ns);
    tracer.record_span(Phase::Commit, start_ns, split);
    tracer.record_span(Phase::WalFsync, split, end_ns);
}

/// Closes a provision's respond + root spans (the root covers queue wait
/// through the response write; `t_resp0` marks where response writing
/// began) and pushes its WAL-seq-correlated flight record. With a live
/// tracer the record carries the full per-phase breakdown; without one,
/// phase durations are zero and the total falls back to wall time.
#[allow(clippy::too_many_arguments)]
fn finish_flight<T: Tracer>(
    cfg: &ServeConfig,
    diag: &Diag,
    tracer: &T,
    timing: &ReqTiming,
    s: NodeId,
    t: NodeId,
    outcome: &str,
    journal_seq: u64,
    footprint_links: u32,
    t_resp0: u64,
) {
    // One clock read closes both spans so the root never outlives Respond.
    let t_end = tracer.now_ns();
    tracer.record_span(Phase::Respond, t_resp0, t_end);
    tracer.record_span(Phase::Request, timing.queue_start, t_end);
    let phases = tracer.last_request_phases();
    let traced_total = phases[Phase::Request as usize];
    let total_ns = if traced_total > 0 {
        traced_total
    } else {
        timing.queue_wait_ns + timing.wall.elapsed().as_nanos() as u64
    };
    diag.flight.push(FlightRecord {
        request: diag.flight.total_requests(),
        src: s.0,
        dst: t.0,
        policy: cfg.policy.name().to_string(),
        outcome: outcome.to_string(),
        journal_seq,
        footprint_links,
        phase_ns: phases.to_vec(),
        total_ns,
        abort_cause: None,
    });
}

fn parse_body<T: serde::Deserialize>(
    sink: &TelemetrySink,
    stream: &mut TcpStream,
    body: &[u8],
) -> Option<T> {
    match serde_json::from_slice::<T>(body) {
        Ok(v) => Some(v),
        Err(e) => {
            sink.add(Counter::ServeBadRequest, 1);
            let _ = http::write_json(
                stream,
                "400 Bad Request",
                &format!(
                    "{{\"error\":\"bad body\",\"detail\":{:?}}}\n",
                    e.to_string()
                ),
            );
            None
        }
    }
}

fn maybe_checkpoint<R, W, T>(guard: &mut NetProvisioner<'_, R, W, T>, every: u64, diag: &Diag)
where
    R: Recorder,
    W: ServeLog,
    T: Tracer,
{
    if every == 0 {
        return;
    }
    let seq = guard.journal_seq();
    // Not `is_multiple_of`: that needs Rust 1.87, above the 1.85 MSRV.
    #[allow(clippy::manual_is_multiple_of)]
    if seq > 0 && seq % every == 0 {
        let snapshot = guard.state().clone();
        guard.journal_mut().checkpoint(&snapshot);
        diag.note_checkpoint(seq);
    }
}
