//! The daemon's write-ahead log: a line-oriented JSON journal on disk.
//!
//! The in-memory [`StateJournal`] keeps the whole event log and serializes
//! once at the end of a run — fine for a simulation, useless for a daemon
//! that must survive being killed mid-load. [`WalSink`] is the streaming
//! counterpart: an [`EventSink`] whose every [`record`](EventSink::record)
//! appends one JSON line to the log file and flushes it, so the log on
//! disk is never more than the in-flight event behind the live state.
//!
//! # File format (JSONL)
//!
//! ```text
//! {"wal":1,"policy":…,"network":…,"checkpoint":…,"semantic_hash":H0}   header
//! {"seq":1,"event":{"Provision":{…}}}                                  event
//! {"seq":2,"event":{"FailLink":{…}}}                                   event
//! {"checkpoint_seq":2,"state":…,"semantic_hash":H2}                    checkpoint
//! {"seq":3,"event":…}                                                  event
//! {"final_seq":3,"semantic_hash":H3}                                   graceful close
//! ```
//!
//! * the **header** is self-contained: network, policy, initial state —
//!   recovery needs no other inputs (same property as `wdm simulate
//!   --journal` files);
//! * **event** lines carry a strictly `+1`-increasing sequence number;
//! * **checkpoint** lines are *verification anchors*: recovery replays
//!   events from the header and asserts its reconstructed
//!   [`semantic_hash`](wdm_core::network::ResidualState::semantic_hash)
//!   against every anchor, so divergence is pinned to the first bad
//!   window rather than discovered at the end;
//! * the **final** line only exists after a graceful shutdown; its absence
//!   means the process died mid-stream and [`recover`] is reconstructing
//!   from events alone.
//!
//! [`recover`] tolerates exactly one torn line — a partial write at the
//! very end of the file, the signature of a kill mid-append. Corruption
//! anywhere else is an error.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use wdm_core::journal::{apply_event, EventSink, NetEvent};
use wdm_core::network::{ResidualState, WdmNetwork};
use wdm_sim::policy::Policy;

/// Why a WAL could not be written or recovered.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The first line is not a valid header.
    BadHeader(String),
    /// A non-tail line failed to parse.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        detail: String,
    },
    /// An event line's sequence number broke the `+1` chain.
    SeqGap {
        /// Expected next sequence number.
        expected: u64,
        /// Number actually found.
        got: u64,
    },
    /// Replaying an event was rejected by the state (journal/state
    /// divergence).
    Replay {
        /// The offending event's sequence number.
        seq: u64,
        /// The mutation error.
        detail: String,
    },
    /// A checkpoint anchor's hash does not match the replayed state.
    CheckpointMismatch {
        /// The anchor's sequence number.
        seq: u64,
    },
    /// The graceful-close line's hash does not match the replayed state.
    FinalHashMismatch {
        /// Hash recorded at shutdown.
        recorded: u64,
        /// Hash of the recovered state.
        replayed: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::BadHeader(d) => write!(f, "wal header invalid: {d}"),
            WalError::Corrupt { line, detail } => {
                write!(f, "wal corrupt at line {line}: {detail}")
            }
            WalError::SeqGap { expected, got } => {
                write!(f, "wal sequence gap: expected {expected}, got {got}")
            }
            WalError::Replay { seq, detail } => {
                write!(f, "wal replay diverged at seq {seq}: {detail}")
            }
            WalError::CheckpointMismatch { seq } => {
                write!(
                    f,
                    "wal checkpoint anchor at seq {seq} does not match replayed state"
                )
            }
            WalError::FinalHashMismatch { recorded, replayed } => write!(
                f,
                "wal final hash {recorded:#x} does not match replayed {replayed:#x}"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

#[derive(serde::Serialize, serde::Deserialize)]
struct WalHeader {
    wal: u32,
    policy: Policy,
    network: WdmNetwork,
    checkpoint: ResidualState,
    semantic_hash: u64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct WalEventLine {
    seq: u64,
    event: NetEvent,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct WalCheckpointLine {
    checkpoint_seq: u64,
    state: ResidualState,
    semantic_hash: u64,
}

#[derive(serde::Serialize, serde::Deserialize)]
struct WalFinalLine {
    final_seq: u64,
    semantic_hash: u64,
}

/// The streaming [`EventSink`]: one flushed JSON line per event.
///
/// I/O errors cannot surface through [`EventSink::record`]'s signature, so
/// they are stashed; callers poll [`WalSink::take_error`] at their
/// convenience (the daemon checks once per mutation batch).
pub struct WalSink {
    out: BufWriter<File>,
    seq: u64,
    io_error: Option<std::io::Error>,
    last_write_ns: u64,
}

impl WalSink {
    /// Creates the log at `path` and writes the self-contained header.
    pub fn create(
        path: &Path,
        net: &WdmNetwork,
        policy: Policy,
        checkpoint: &ResidualState,
    ) -> Result<Self, WalError> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        let header = WalHeader {
            wal: 1,
            policy,
            network: net.clone(),
            checkpoint: checkpoint.clone(),
            semantic_hash: checkpoint.semantic_hash(),
        };
        let line =
            serde_json::to_string(&header).map_err(|e| WalError::BadHeader(e.to_string()))?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        Ok(Self {
            out,
            seq: 0,
            io_error: None,
            last_write_ns: 0,
        })
    }

    /// Events written so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Takes the first stashed write error, if any.
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        self.io_error.take()
    }

    /// Takes (and clears) the wall time the last [`EventSink::record`]
    /// spent serializing, appending and flushing its journal line. The
    /// daemon reads this right after a commit to carve the WAL-fsync
    /// slice out of the commit span and feed the fsync-latency histogram.
    pub fn take_last_write_ns(&mut self) -> u64 {
        std::mem::take(&mut self.last_write_ns)
    }

    fn write_line(&mut self, line: &str) {
        if self.io_error.is_some() {
            return; // The log is already broken; don't mask the first error.
        }
        let r = self
            .out
            .write_all(line.as_bytes())
            .and_then(|_| self.out.write_all(b"\n"))
            .and_then(|_| self.out.flush());
        if let Err(e) = r {
            self.io_error = Some(e);
        }
    }

    /// Writes a checkpoint anchor for the current state.
    pub fn checkpoint(&mut self, state: &ResidualState) {
        let line = serde_json::to_string(&WalCheckpointLine {
            checkpoint_seq: self.seq,
            state: state.clone(),
            semantic_hash: state.semantic_hash(),
        });
        match line {
            Ok(line) => self.write_line(&line),
            Err(e) => {
                self.io_error
                    .get_or_insert(std::io::Error::other(e.to_string()));
            }
        }
    }

    /// Writes the graceful-close line and flushes. The log is complete
    /// after this; further records would corrupt it.
    pub fn finalize(&mut self, state: &ResidualState) -> Result<(), WalError> {
        let line = serde_json::to_string(&WalFinalLine {
            final_seq: self.seq,
            semantic_hash: state.semantic_hash(),
        })
        .map_err(|e| WalError::BadHeader(e.to_string()))?;
        self.write_line(&line);
        if let Some(e) = self.io_error.take() {
            return Err(WalError::Io(e));
        }
        Ok(())
    }
}

impl EventSink for WalSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: NetEvent) {
        let t0 = std::time::Instant::now();
        self.seq += 1;
        match serde_json::to_string(&WalEventLine {
            seq: self.seq,
            event,
        }) {
            Ok(line) => self.write_line(&line),
            Err(e) => {
                self.io_error
                    .get_or_insert(std::io::Error::other(e.to_string()));
            }
        }
        self.last_write_ns = t0.elapsed().as_nanos() as u64;
    }
}

/// What the daemon needs from its journal beyond [`EventSink`]: sequence
/// numbers for correlation, checkpoint anchors, the graceful close, and
/// the stashed-error / write-latency side channels. Abstracting it (rather
/// than naming [`WalSink`] in every signature) keeps the daemon's worker
/// and dispatch paths generic, so tests can substitute an in-memory log.
pub trait ServeLog: EventSink {
    /// Events written so far (the WAL sequence number of the last event).
    fn seq(&self) -> u64;
    /// Writes a checkpoint anchor for `state`.
    fn checkpoint(&mut self, state: &ResidualState);
    /// Writes the graceful-close line; the log is complete afterwards.
    fn finalize(&mut self, state: &ResidualState) -> Result<(), WalError>;
    /// Takes the first stashed write error, if any.
    fn take_error(&mut self) -> Option<std::io::Error>;
    /// Takes (and clears) the last event append's wall time.
    fn take_last_write_ns(&mut self) -> u64;
}

impl ServeLog for WalSink {
    fn seq(&self) -> u64 {
        WalSink::seq(self)
    }

    fn checkpoint(&mut self, state: &ResidualState) {
        WalSink::checkpoint(self, state);
    }

    fn finalize(&mut self, state: &ResidualState) -> Result<(), WalError> {
        WalSink::finalize(self, state)
    }

    fn take_error(&mut self) -> Option<std::io::Error> {
        WalSink::take_error(self)
    }

    fn take_last_write_ns(&mut self) -> u64 {
        WalSink::take_last_write_ns(self)
    }
}

/// What [`recover`] reconstructed from a log file.
pub struct WalRecovery {
    /// The network the log was recorded on.
    pub network: WdmNetwork,
    /// The provisioning policy in force.
    pub policy: Policy,
    /// The state after replaying every intact event.
    pub state: ResidualState,
    /// Sequence number of the last applied event.
    pub seq: u64,
    /// Hash from the graceful-close line (`None`: the process died
    /// mid-stream).
    pub final_hash: Option<u64>,
    /// Whether a torn (partially written) last line was discarded.
    pub torn_tail: bool,
    /// Checkpoint anchors verified during replay.
    pub anchors_verified: usize,
}

impl WalRecovery {
    /// Hash of the recovered state.
    pub fn semantic_hash(&self) -> u64 {
        self.state.semantic_hash()
    }

    /// Whether the log ended with a matching graceful-close line.
    pub fn clean_shutdown(&self) -> bool {
        self.final_hash == Some(self.state.semantic_hash())
    }
}

/// Recovers a WAL: replays every event over the header checkpoint,
/// verifying each checkpoint anchor and (if present) the graceful-close
/// hash. Tolerates one torn line at the very end of the file.
pub fn recover(path: &Path) -> Result<WalRecovery, WalError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines: Vec<&str> = text.lines().collect();
    // A trailing blank (from the final "\n") is not a torn line.
    while lines.last().is_some_and(|l| l.trim().is_empty()) {
        lines.pop();
    }
    let Some((&head, tail)) = lines.split_first() else {
        return Err(WalError::BadHeader("empty file".into()));
    };

    let header: WalHeader =
        serde_json::from_str(head).map_err(|e| WalError::BadHeader(e.to_string()))?;
    if header.wal != 1 {
        return Err(WalError::BadHeader(format!(
            "unsupported wal version {}",
            header.wal
        )));
    }

    let net = header.network;
    let mut state = header.checkpoint;
    let mut seq = 0u64;
    let mut final_hash = None;
    let mut torn_tail = false;
    let mut anchors_verified = 0usize;

    for (i, raw) in tail.iter().enumerate() {
        let lineno = i + 2; // 1-based, after the header
        let last = i + 1 == tail.len();
        let value = match serde_json::from_str::<serde_json::Value>(raw) {
            Ok(v) => v,
            Err(e) if last => {
                // A partial append from a kill mid-write: discard.
                let _ = e;
                torn_tail = true;
                break;
            }
            Err(e) => {
                return Err(WalError::Corrupt {
                    line: lineno,
                    detail: e.to_string(),
                })
            }
        };
        if final_hash.is_some() {
            return Err(WalError::Corrupt {
                line: lineno,
                detail: "records after the graceful-close line".into(),
            });
        }
        if value.get("seq").is_some() {
            let ev: WalEventLine =
                serde::Deserialize::from_value(&value).map_err(|e| WalError::Corrupt {
                    line: lineno,
                    detail: e.to_string(),
                })?;
            if ev.seq != seq + 1 {
                return Err(WalError::SeqGap {
                    expected: seq + 1,
                    got: ev.seq,
                });
            }
            apply_event(&mut state, &net, &ev.event).map_err(|e| WalError::Replay {
                seq: ev.seq,
                detail: e.to_string(),
            })?;
            seq = ev.seq;
        } else if value.get("checkpoint_seq").is_some() {
            let cp: WalCheckpointLine =
                serde::Deserialize::from_value(&value).map_err(|e| WalError::Corrupt {
                    line: lineno,
                    detail: e.to_string(),
                })?;
            if cp.checkpoint_seq != seq || cp.semantic_hash != state.semantic_hash() {
                return Err(WalError::CheckpointMismatch {
                    seq: cp.checkpoint_seq,
                });
            }
            anchors_verified += 1;
        } else if value.get("final_seq").is_some() {
            let fin: WalFinalLine =
                serde::Deserialize::from_value(&value).map_err(|e| WalError::Corrupt {
                    line: lineno,
                    detail: e.to_string(),
                })?;
            if fin.final_seq != seq {
                return Err(WalError::SeqGap {
                    expected: seq,
                    got: fin.final_seq,
                });
            }
            if fin.semantic_hash != state.semantic_hash() {
                return Err(WalError::FinalHashMismatch {
                    recorded: fin.semantic_hash,
                    replayed: state.semantic_hash(),
                });
            }
            final_hash = Some(fin.semantic_hash);
        } else {
            return Err(WalError::Corrupt {
                line: lineno,
                detail: "unrecognized record shape".into(),
            });
        }
    }

    Ok(WalRecovery {
        network: net,
        policy: header.policy,
        state,
        seq,
        final_hash,
        torn_tail,
        anchors_verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use wdm_core::network::NetworkBuilder;
    use wdm_graph::NodeId;
    use wdm_sim::provisioner::{NetProvisioner, Provisioner};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "wdm-wal-{}-{}-{}.jsonl",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// Drives a journaled provisioner lifecycle through a WalSink; returns
    /// (path, live hash, live seq).
    fn record_lifecycle(tag: &str, finalize: bool) -> (std::path::PathBuf, u64, u64) {
        let net = NetworkBuilder::nsfnet(8).build();
        let path = temp_path(tag);
        let state = wdm_core::network::ResidualState::fresh(&net);
        let wal = WalSink::create(&path, &net, Policy::CostOnly, &state).expect("create");
        let mut p = NetProvisioner::with_parts(
            &net,
            Policy::CostOnly,
            state,
            wdm_core::aux_engine::RouterCtx::new(),
            wal,
        );
        let a = p.provision(NodeId(0), NodeId(9)).unwrap();
        let _b = p.provision(NodeId(3), NodeId(11)).unwrap();
        // Mid-stream checkpoint anchor.
        let snapshot = p.state().clone();
        p.journal_mut().checkpoint(&snapshot);
        p.fail_link(wdm_graph::EdgeId(0));
        p.teardown(a);
        p.repair_link(wdm_graph::EdgeId(0));
        let seq = p.journal_seq();
        let hash = p.semantic_hash();
        if finalize {
            let fin = p.state().clone();
            p.journal_mut().finalize(&fin).expect("finalize");
        }
        assert!(
            p.journal_mut().take_error().is_none(),
            "no stashed io error"
        );
        (path, hash, seq)
    }

    #[test]
    fn graceful_log_recovers_to_live_hash() {
        let (path, live_hash, live_seq) = record_lifecycle("graceful", true);
        let rec = recover(&path).expect("recover");
        assert_eq!(rec.seq, live_seq);
        assert_eq!(rec.semantic_hash(), live_hash);
        assert_eq!(rec.final_hash, Some(live_hash));
        assert!(rec.clean_shutdown());
        assert!(!rec.torn_tail);
        assert_eq!(rec.anchors_verified, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crashed_log_without_final_line_still_recovers() {
        let (path, live_hash, live_seq) = record_lifecycle("crash", false);
        let rec = recover(&path).expect("recover");
        assert_eq!(rec.seq, live_seq);
        assert_eq!(rec.semantic_hash(), live_hash);
        assert_eq!(rec.final_hash, None);
        assert!(!rec.clean_shutdown());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_but_earlier_corruption_is_fatal() {
        let (path, _, live_seq) = record_lifecycle("torn", false);
        // Tear the last line in half — a kill mid-append.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - 20;
        std::fs::write(&path, &text.as_bytes()[..keep]).unwrap();
        let rec = recover(&path).expect("torn tail tolerated");
        assert!(rec.torn_tail);
        assert_eq!(rec.seq, live_seq - 1, "the torn event is discarded");

        // The same damage mid-file is corruption, not a torn tail.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let mid = lines.len() / 2;
        let half = lines[mid].len() / 2;
        lines[mid].truncate(half);
        std::fs::write(&path, lines.join("\n")).unwrap();
        match recover(&path) {
            Err(WalError::Corrupt { line, .. }) => assert_eq!(line, mid + 1),
            other => panic!("expected Corrupt, got {:?}", other.map(|r| r.seq)),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_event_stream_fails_the_anchor_check() {
        let (path, _, _) = record_lifecycle("tamper", true);
        // Drop the first event line (a Provision): the checkpoint anchor
        // that follows must catch the divergence.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(1);
        std::fs::write(&path, lines.join("\n")).unwrap();
        match recover(&path) {
            Err(WalError::SeqGap {
                expected: 1,
                got: 2,
            }) => {}
            other => panic!(
                "expected the seq chain to break, got {:?}",
                other.map(|r| r.seq)
            ),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_headerless_files_are_rejected() {
        let path = temp_path("empty");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(recover(&path), Err(WalError::BadHeader(_))));
        std::fs::write(&path, "{\"seq\":1}\n").unwrap();
        assert!(matches!(recover(&path), Err(WalError::BadHeader(_))));
        std::fs::remove_file(&path).ok();
    }
}
