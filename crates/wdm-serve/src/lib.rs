//! Long-lived routing daemon for wide-area WDM networks.
//!
//! The library crates compute routes; this crate keeps them *running*:
//! `wdm serve` holds one live [`ResidualState`] behind a writer lock with
//! a pool of warm-context workers, accepts provision / teardown /
//! fail-link / repair-link / query requests over HTTP/JSON, streams every
//! mutation into a write-ahead log, and sheds load instead of collapsing
//! under it. `wdm loadgen` is the matching open-loop Poisson client.
//!
//! Module map:
//!
//! * [`http`] — the hardened dependency-free HTTP/1.1 listener core
//!   (shared with `wdm serve-metrics`);
//! * [`admission`] — bounded work queue: shed-on-full, per-request
//!   deadlines;
//! * [`daemon`] — the serving loop: read-lock routing on warm contexts,
//!   write-lock commits with optimistic conflict retry, epoch-based
//!   context invalidation;
//! * [`diag`] — live diagnostics shared across threads: the flight ring
//!   behind `/debug/flight`, the span ring behind `/debug/trace`, the
//!   checkpoint gauge (DESIGN.md §5j);
//! * [`wal`] — the streaming JSONL write-ahead log and its recovery
//!   (checkpoint anchors, torn-tail tolerance);
//! * [`signal`] — SIGINT/SIGTERM flags for graceful shutdown;
//! * [`loadgen`] — the Poisson load generator and tiny HTTP client.
//!
//! [`ResidualState`]: wdm_core::network::ResidualState

pub mod admission;
pub mod daemon;
pub mod diag;
pub mod http;
pub mod loadgen;
pub mod signal;
pub mod wal;

pub use daemon::{run, Control, ServeConfig, ServeReport};
pub use diag::Diag;
pub use loadgen::{LoadgenConfig, LoadgenReport, PhaseLatency};
pub use wal::{recover, ServeLog, WalRecovery, WalSink};
