//! Live diagnostics shared by every daemon thread.
//!
//! The daemon's observability splits in two. Aggregate series (counters,
//! histograms, gauges) live in the lock-free [`TelemetrySink`] and are
//! scraped via `/metrics`. Everything *per-request* — the journal-
//! correlated flight ring behind `/debug/flight` and the recent-span ring
//! behind `/debug/trace` — lives here, behind coarse mutexes that are
//! touched at most once per request.
//!
//! Span flow: each worker owns a private `SpanBuffer` (it is `Send` but
//! not `Sync`), closes its spans while handling a request, then drains
//! them into [`Diag::absorb_spans`]. The drain renumbers the worker-local
//! request ordinals into one daemon-wide ordinal space, so a dumped trace
//! shows each request on its own track even though workers interleave.
//!
//! [`TelemetrySink`]: wdm_telemetry::TelemetrySink

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use wdm_telemetry::{FlightRecorder, SpanRecord};

/// Spans retained for `/debug/trace` (oldest dropped first). At ~10 spans
/// per provision this covers the last few hundred requests.
const SPAN_RING_CAPACITY: usize = 8192;

/// Shared diagnostics state: the flight ring, the span ring and the
/// checkpoint gauge. One instance per [`run`](crate::daemon::run), shared
/// by reference across the accept loop and every worker.
pub struct Diag {
    /// Per-request flight records with WAL-seq correlation; the anomaly
    /// trigger freezes the ring under failure storms.
    pub flight: FlightRecorder,
    spans: Mutex<VecDeque<SpanRecord>>,
    next_request: AtomicU64,
    checkpoint_seq: AtomicU64,
    started: Instant,
    tracing: bool,
}

impl Diag {
    /// Fresh diagnostics for a daemon run. `flight_capacity` sizes the
    /// flight ring (anomaly window/threshold keep their defaults);
    /// `tracing` records whether workers carry live span buffers, so
    /// `/status` can say which mode the daemon is in.
    pub fn new(flight_capacity: usize, tracing: bool) -> Self {
        Diag {
            flight: FlightRecorder::with_config(
                flight_capacity,
                wdm_telemetry::DEFAULT_ANOMALY_WINDOW,
                wdm_telemetry::DEFAULT_ANOMALY_THRESHOLD,
            ),
            spans: Mutex::new(VecDeque::new()),
            next_request: AtomicU64::new(0),
            checkpoint_seq: AtomicU64::new(0),
            started: Instant::now(),
            tracing,
        }
    }

    /// Whether workers record spans.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Seconds since the daemon started.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Journal sequence of the last checkpoint anchor written.
    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq.load(Ordering::Relaxed)
    }

    /// Records that a checkpoint anchor was written at `seq`.
    pub fn note_checkpoint(&self, seq: u64) {
        self.checkpoint_seq.fetch_max(seq, Ordering::Relaxed);
    }

    /// Folds one worker's drained spans into the shared ring, renumbering
    /// the batch's worker-local request ordinals (0-based per drain) into
    /// the daemon-wide ordinal space.
    pub fn absorb_spans(&self, mut batch: Vec<SpanRecord>) {
        let Some(count) = batch.iter().map(|r| r.request + 1).max() else {
            return;
        };
        let offset = self.next_request.fetch_add(count, Ordering::Relaxed);
        let mut ring = self.spans.lock().unwrap();
        for r in &mut batch {
            r.request += offset;
        }
        ring.extend(batch);
        while ring.len() > SPAN_RING_CAPACITY {
            ring.pop_front();
        }
    }

    /// Spans of the most recent `n` requests (by daemon-wide ordinal),
    /// oldest first. `n = 0` returns everything still in the ring.
    pub fn recent_spans(&self, n: u64) -> Vec<SpanRecord> {
        let ring = self.spans.lock().unwrap();
        if n == 0 {
            return ring.iter().copied().collect();
        }
        let Some(newest) = ring.iter().map(|r| r.request).max() else {
            return Vec::new();
        };
        let cutoff = newest.saturating_sub(n - 1);
        ring.iter()
            .filter(|r| r.request >= cutoff)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_telemetry::Phase;

    fn span(request: u64, start_ns: u64) -> SpanRecord {
        SpanRecord {
            request,
            phase: Phase::Request,
            start_ns,
            end_ns: start_ns + 10,
        }
    }

    #[test]
    fn absorbed_batches_are_renumbered_into_one_ordinal_space() {
        let diag = Diag::new(8, true);
        // Two workers each drain a single-request batch numbered 0.
        diag.absorb_spans(vec![span(0, 100)]);
        diag.absorb_spans(vec![span(0, 200)]);
        // A two-request batch.
        diag.absorb_spans(vec![span(0, 300), span(1, 400)]);
        let all = diag.recent_spans(0);
        let ids: Vec<u64> = all.iter().map(|r| r.request).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recent_spans_filters_by_request_window() {
        let diag = Diag::new(8, true);
        for i in 0..5 {
            diag.absorb_spans(vec![span(0, i * 100)]);
        }
        let last_two = diag.recent_spans(2);
        let ids: Vec<u64> = last_two.iter().map(|r| r.request).collect();
        assert_eq!(ids, vec![3, 4]);
        assert!(diag.recent_spans(100).len() == 5);
    }

    #[test]
    fn checkpoint_gauge_is_monotone() {
        let diag = Diag::new(8, false);
        assert_eq!(diag.checkpoint_seq(), 0);
        diag.note_checkpoint(256);
        diag.note_checkpoint(128); // late report from a slower worker
        assert_eq!(diag.checkpoint_seq(), 256);
        assert!(!diag.tracing());
    }
}
