//! Dependency-free POSIX signal flags.
//!
//! The daemon (SIGTERM) and `wdm simulate --journal` (SIGINT) both need
//! exactly one thing from signal handling: an async-signal-safe "please
//! stop" flag they can poll from their event loops so the final journal
//! checkpoint gets flushed before exit. This module installs handlers via
//! the C `signal(2)` entry point (libc is already linked by std) that do
//! nothing but store into process-wide [`AtomicBool`]s — the only
//! side-effect async-signal-safety allows.
//!
//! On non-Unix targets installation is a no-op and the flags simply never
//! trip (graceful shutdown then needs the HTTP control surface or process
//! supervision instead).

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (`kill`'s default, what service managers send).
pub const SIGTERM: i32 = 15;

static INT_FLAG: AtomicBool = AtomicBool::new(false);
static TERM_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    /// POSIX `signal(2)`. `handler` is a function pointer or `SIG_ERR`
    /// (-1) / `SIG_DFL` (0) / `SIG_IGN` (1) cast to the pointer width.
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_signal(signum: i32) {
    // Only atomic stores: the one thing a handler may safely do.
    match signum {
        SIGINT => INT_FLAG.store(true, Ordering::SeqCst),
        SIGTERM => TERM_FLAG.store(true, Ordering::SeqCst),
        _ => {}
    }
}

/// Installs the flag-setting handler for `signum` ([`SIGINT`] or
/// [`SIGTERM`]). Returns whether installation succeeded (always `false`
/// off Unix).
pub fn install(signum: i32) -> bool {
    #[cfg(unix)]
    {
        const SIG_ERR: usize = usize::MAX;
        // Safety: `on_signal` is async-signal-safe (atomic stores only)
        // and stays alive for the process lifetime.
        unsafe { signal(signum, on_signal as *const () as usize) != SIG_ERR }
    }
    #[cfg(not(unix))]
    {
        let _ = signum;
        false
    }
}

/// Whether `signum`'s flag has tripped since [`install`].
pub fn tripped(signum: i32) -> bool {
    match signum {
        SIGINT => INT_FLAG.load(Ordering::SeqCst),
        SIGTERM => TERM_FLAG.load(Ordering::SeqCst),
        _ => false,
    }
}

/// Whether any installed termination signal has tripped.
pub fn shutdown_requested() -> bool {
    tripped(SIGINT) || tripped(SIGTERM)
}

/// Clears the flags (tests, or re-arming after a handled interruption).
pub fn reset() {
    INT_FLAG.store(false, Ordering::SeqCst);
    TERM_FLAG.store(false, Ordering::SeqCst);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn raised_signals_trip_their_flags() {
        reset();
        assert!(install(SIGINT), "installing a SIGINT handler");
        assert!(install(SIGTERM), "installing a SIGTERM handler");
        assert!(!shutdown_requested());

        // Safety: raise() delivers synchronously to this thread; our
        // handler only flips an atomic.
        unsafe { raise(SIGINT) };
        assert!(tripped(SIGINT));
        assert!(!tripped(SIGTERM));
        assert!(shutdown_requested());

        unsafe { raise(SIGTERM) };
        assert!(tripped(SIGTERM));

        reset();
        assert!(!shutdown_requested());
        // Re-arm: the flags work repeatedly.
        unsafe { raise(SIGTERM) };
        assert!(shutdown_requested());
        reset();
    }
}
