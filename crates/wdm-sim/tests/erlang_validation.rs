//! Analytic validation of the simulator against the Erlang-B formula.
//!
//! A two-node network with one fibre of `W` channels, unprotected
//! provisioning, Poisson arrivals and exponential holding is *exactly* an
//! M/M/c/c loss system: measured blocking must converge to
//! `ErlangB(A, W)`. This pins down the correctness of the arrival process,
//! the holding-time sampling, the event ordering and the channel
//! accounting all at once.

use wdm_core::conversion::ConversionTable;
use wdm_core::network::NetworkBuilder;
use wdm_sim::metrics::erlang_b;
use wdm_sim::parallel::run_replications;
use wdm_sim::policy::Policy;
use wdm_sim::sim::SimConfig;
use wdm_sim::traffic::TrafficModel;

fn single_fibre(w: usize) -> wdm_core::network::WdmNetwork {
    let mut b = NetworkBuilder::new(w);
    let n0 = b.add_node(ConversionTable::None);
    let n1 = b.add_node(ConversionTable::None);
    // Both directions so every (s, t) draw is routable; each direction is
    // its own c-server system.
    b.add_link(n0, n1, 1.0);
    b.add_link(n1, n0, 1.0);
    b.build()
}

/// Measured blocking on the single-fibre network at `erlangs` offered load
/// per direction (total arrival rate is split uniformly over the two
/// ordered pairs).
fn measured_blocking(w: usize, erlangs_per_direction: f64, seeds: usize) -> f64 {
    let net = single_fibre(w);
    // Total arrival rate = 2 directions × per-direction rate.
    let cfg = SimConfig {
        policy: Policy::PrimaryOnly,
        traffic: TrafficModel::new(2.0 * erlangs_per_direction / 10.0, 10.0),
        duration: 6000.0,
        failure_rate: 0.0,
        mean_repair: 1.0,
        reconfig_threshold: None,
        seed: 0,
        switchover_time: 0.001,
        setup_time_per_hop: 0.05,
    };
    let runs = run_replications(&net, cfg, &(0..seeds as u64).collect::<Vec<_>>());
    let blocked: u64 = runs.iter().map(|m| m.blocked).sum();
    let offered: u64 = runs.iter().map(|m| m.offered).sum();
    blocked as f64 / offered as f64
}

#[test]
fn blocking_matches_erlang_b_light_load() {
    // A = 2 Erlang per direction over 4 channels: B ≈ 0.0952.
    let analytic = erlang_b(2.0, 4);
    let measured = measured_blocking(4, 2.0, 4);
    assert!(
        (measured - analytic).abs() < 0.015,
        "measured {measured:.4} vs Erlang-B {analytic:.4}"
    );
}

#[test]
fn blocking_matches_erlang_b_heavy_load() {
    // A = 8 Erlang per direction over 8 channels: B ≈ 0.2356.
    let analytic = erlang_b(8.0, 8);
    let measured = measured_blocking(8, 8.0, 4);
    assert!(
        (measured - analytic).abs() < 0.02,
        "measured {measured:.4} vs Erlang-B {analytic:.4}"
    );
}

#[test]
fn blocking_matches_erlang_b_overload() {
    // A = 12 Erlang per direction over 6 channels: B ≈ 0.5408.
    let analytic = erlang_b(12.0, 6);
    let measured = measured_blocking(6, 12.0, 4);
    assert!(
        (measured - analytic).abs() < 0.02,
        "measured {measured:.4} vs Erlang-B {analytic:.4}"
    );
}
