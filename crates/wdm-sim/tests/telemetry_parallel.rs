//! Property test: the telemetry of a parallel replication sweep, merged
//! across its per-shard sinks, equals the telemetry of running the same
//! seeds serially through one sink.
//!
//! Deterministic metrics (all counters; every histogram not named `*_ns`)
//! must match bucket-for-bucket. Timing histograms record wall-clock
//! durations and only their population counts are required to agree.

use proptest::prelude::*;
use wdm_core::network::NetworkBuilder;
use wdm_sim::prelude::*;

/// Splits a snapshot into (deterministic part, timing-histogram counts).
fn split_timing(mut snap: TelemetrySnapshot) -> (TelemetrySnapshot, Vec<(String, u64)>) {
    let timing: Vec<(String, u64)> = snap
        .histograms
        .iter()
        .filter(|(name, _)| name.ends_with("_ns"))
        .map(|(name, h)| (name.clone(), h.count))
        .collect();
    snap.histograms.retain(|name, _| !name.ends_with("_ns"));
    (snap, timing)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    #[test]
    fn merged_parallel_telemetry_equals_serial(
        base in 0u64..1_000_000,
        n in 1usize..5,
        erlang in 1u32..8,
        policy_idx in 0usize..4,
        fail_idx in 0usize..2,
    ) {
        let net = NetworkBuilder::nsfnet(8).build();
        let policy = [
            Policy::CostOnly,
            Policy::LoadOnly { a: 2.0 },
            Policy::Joint { a: 2.0 },
            Policy::PrimaryOnly,
        ][policy_idx];
        let cfg = SimConfig {
            traffic: TrafficModel::new(f64::from(erlang), 3.0),
            duration: 30.0,
            failure_rate: if fail_idx == 1 { 0.3 } else { 0.0 },
            mean_repair: 5.0,
            ..SimConfig::default_with(policy, 0)
        };
        let seeds = replication_seeds(base, n);

        // Serial reference: every replication records into ONE sink, in
        // seed order.
        let sink = TelemetrySink::new();
        let serial_metrics: Vec<Metrics> = seeds
            .iter()
            .map(|&seed| run_sim_recorded(&net, SimConfig { seed, ..cfg }, &sink))
            .collect();
        let serial = sink.snapshot();

        // Parallel: one sink per shard, snapshots folded in seed order.
        let (par_metrics, merged) = run_replications_telemetry(&net, cfg, &seeds);

        prop_assert_eq!(&par_metrics, &serial_metrics, "metrics must not depend on telemetry plumbing");

        let (serial_det, serial_ns) = split_timing(serial);
        let (merged_det, merged_ns) = split_timing(merged);
        // Counter sums and bucket-wise histogram contents are bit-equal.
        prop_assert_eq!(serial_det, merged_det);
        // Timing histograms: same set of names, same populations.
        prop_assert_eq!(serial_ns, merged_ns);
    }
}
