//! Property test: the speculative batch engine is *serial-equivalent* —
//! for every window size `K`, [`wdm_sim::sim::run_batch`] returns a
//! [`BatchOutcome`] bit-identical to the serial run's (routes, rejection
//! set, total cost in the same floating-point accumulation order, load
//! snapshot, residual state), across random topologies, wavelength
//! counts, demand sequences, processing orders and policies — including
//! load-sensitive policies, where only commit rule 1 applies, and
//! uniform-cost networks, where rule 2's guard is off. The same standard
//! as `telemetry_parallel.rs`: equality, not approximation.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_core::conversion::ConversionTable;
use wdm_core::network::{NetworkBuilder, ResidualState, WdmNetwork};
use wdm_sim::batch::BatchOutcome;
use wdm_sim::prelude::*;

/// A random connected network whose directed links carry pairwise-distinct
/// uniform costs (cost rank `k` lands in `(k, k + 1)`). Conversion is a
/// 50/50 mix of free (`None` — rule 2's full guard holds) and costed
/// (`Full { cost: 0.3 }` — the guard correctly turns rule 2 off, since
/// the G′ conversion-arc averages move with occupancy), so the suite
/// pins serial equivalence on both sides of the soundness boundary.
fn random_distinct_net(rng: &mut ChaCha8Rng, w: usize) -> WdmNetwork {
    let n = rng.gen_range(5..12usize);
    let conv = if rng.gen_bool(0.5) {
        ConversionTable::Full { cost: 0.3 }
    } else {
        ConversionTable::None
    };
    let mut b = NetworkBuilder::new(w);
    let nodes: Vec<_> = (0..n).map(|_| b.add_node(conv.clone())).collect();
    let mut k = 0.0f64;
    let mut cost = |rng: &mut ChaCha8Rng| {
        let c = k + rng.gen_range(0.05..0.95);
        k += 1.0;
        c
    };
    // A bidirected ring keeps the graph connected…
    for i in 0..n {
        let j = (i + 1) % n;
        let c = cost(rng);
        b.add_link(nodes[i], nodes[j], c);
        let c = cost(rng);
        b.add_link(nodes[j], nodes[i], c);
    }
    // …plus random chords for route diversity.
    for _ in 0..rng.gen_range(n..3 * n) {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            let c = cost(rng);
            b.add_link(nodes[i], nodes[j], c);
        }
    }
    b.build()
}

/// Random demands over `n` nodes, occasionally degenerate (`s == t`).
fn random_demands(rng: &mut ChaCha8Rng, n: usize) -> Vec<Demand> {
    let count = rng.gen_range(10..60usize);
    (0..count)
        .map(|_| {
            let s = rng.gen_range(0..n as u32);
            let t = if rng.gen_bool(0.05) {
                s
            } else {
                rng.gen_range(0..n as u32)
            };
            Demand::new(s, t)
        })
        .collect()
}

fn assert_bit_identical(a: &BatchOutcome, b: &BatchOutcome) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.provisioned, &b.provisioned);
    prop_assert_eq!(&a.rejected, &b.rejected);
    prop_assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
    prop_assert_eq!(&a.final_load, &b.final_load);
    prop_assert_eq!(&a.state, &b.state);
    Ok(())
}

const POLICIES: [Policy; 8] = [
    Policy::CostOnly,
    Policy::TwoStep,
    Policy::Unrefined,
    Policy::Ksp { k: 3 },
    Policy::LoadOnly { a: 2.0 },
    Policy::Joint { a: 2.0 },
    Policy::NodeDisjoint,
    Policy::PrimaryOnly,
];

const ORDERS: [BatchOrder; 3] = [
    BatchOrder::AsGiven,
    BatchOrder::ShortestFirst,
    BatchOrder::LongestFirst,
];

const SCHEDULES: [ScheduleMode; 3] = [
    ScheduleMode::Windowed,
    ScheduleMode::ConflictGroups,
    ScheduleMode::Sharded { shards: 3 },
];

fn check_all_windows(
    net: &WdmNetwork,
    demands: &[Demand],
    policy: Policy,
    order: BatchOrder,
) -> Result<(), TestCaseError> {
    let st = ResidualState::fresh(net);
    let serial = provision_batch(net, &st, demands, policy, order);
    for schedule in SCHEDULES {
        for window in [1usize, 2, 8, 64] {
            let cfg = BatchConfig {
                policy,
                order,
                parallel_window: window,
                schedule,
                // A fixed worker count keeps the parallel fan-out path
                // exercised deterministically regardless of the host.
                threads: 2,
            };
            let sink = TelemetrySink::new();
            let (out, stats) = run_batch_recorded(net, &st, demands, cfg, &sink);
            assert_bit_identical(&serial, &out)?;
            let snap = sink.snapshot();
            if window <= 1 {
                prop_assert_eq!(stats, SpeculationStats::default());
                prop_assert_eq!(snap.counters["speculative_commits"], 0);
            } else {
                // Every abort is retried, and every demand commits exactly
                // once — windowed retries re-speculate and land back in
                // `commits`; conflict-groups retries and skips commit
                // inline, so the three paths partition the demand set.
                prop_assert_eq!(stats.aborts, stats.retries);
                match schedule {
                    ScheduleMode::Windowed => {
                        prop_assert_eq!(stats.inline_routes, 0);
                        prop_assert_eq!(stats.commits, demands.len() as u64);
                    }
                    ScheduleMode::ConflictGroups | ScheduleMode::Sharded { .. } => {
                        prop_assert_eq!(
                            stats.commits + stats.retries + stats.inline_routes,
                            demands.len() as u64
                        );
                    }
                }
                if let ScheduleMode::Sharded { .. } = schedule {
                    // Cross-shard demands are a subset of the inline path,
                    // and the counter mirrors the stat.
                    prop_assert!(stats.cut_demands <= stats.inline_routes);
                    prop_assert_eq!(snap.counters["sharded_cut_demands"], stats.cut_demands);
                }
                prop_assert_eq!(snap.counters["speculative_commits"], stats.commits);
                prop_assert_eq!(snap.counters["speculative_aborts"], stats.aborts);
                prop_assert_eq!(snap.counters["speculative_retries"], stats.retries);
                prop_assert_eq!(
                    snap.counters["speculative_inline_routes"],
                    stats.inline_routes
                );
                prop_assert_eq!(snap.histograms["window_occupancy"].count, stats.rounds);
                if schedule == ScheduleMode::ConflictGroups {
                    let grp = &snap.histograms["conflict_group_size"];
                    prop_assert_eq!(grp.count, stats.rounds);
                    prop_assert!(grp.max <= window as u64);
                }
                // The speculated routing calls themselves are unrecorded.
                prop_assert_eq!(snap.counters["suurballe_searches"], 0);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Random distinct-cost topologies: rule 2 commits across the window
    /// for link-local policies (`CostOnly`, `Unrefined`, `NodeDisjoint`);
    /// everything else — load-sensitive policies, but also `TwoStep` /
    /// `Ksp` / `PrimaryOnly`, whose wavelength ties are broken by global
    /// exploration order — falls back to rule 1. Both must reproduce the
    /// serial outcome exactly.
    #[test]
    fn speculative_batch_is_bit_identical_to_serial(
        seed in 0u64..1_000_000,
        w_idx in 0usize..3,
        policy_idx in 0usize..POLICIES.len(),
        order_idx in 0usize..ORDERS.len(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = random_distinct_net(&mut rng, [2, 4, 8][w_idx]);
        let demands = random_demands(&mut rng, net.node_count());
        check_all_windows(&net, &demands, POLICIES[policy_idx], ORDERS[order_idx])?;
    }

    /// NSFNET's twin directed links share costs, so the rule 2 guard is
    /// off and every non-leading commit must wait for its own round.
    #[test]
    fn speculative_batch_matches_serial_on_uniform_cost_nsfnet(
        seed in 0u64..1_000_000,
        policy_idx in 0usize..POLICIES.len(),
        order_idx in 0usize..ORDERS.len(),
    ) {
        let net = NetworkBuilder::nsfnet(4).build();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let demands = random_demands(&mut rng, net.node_count());
        check_all_windows(&net, &demands, POLICIES[policy_idx], ORDERS[order_idx])?;
    }
}
