//! Property tests for the conflict-aware scheduler: the
//! [`ConflictPartitioner`]'s plans are always structurally valid and
//! link-disjoint under the predicted footprints, degenerate inputs
//! produce valid schedules, and — the load-bearing property — an
//! arbitrarily wrong [`FootprintOracle`] can only cost retries or
//! parallelism, never serial equivalence.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wdm_core::predict::FootprintOracle;
use wdm_graph::{EdgeId, NodeId};
use wdm_sim::prelude::*;

/// A deterministic but arbitrary oracle: each `(s, t)` pair predicts a
/// pseudo-random subset of the link space, derived only from the pair and
/// the seed — so re-predicting the same pair yields the same footprint,
/// as the trait requires, while having nothing to do with real routes.
#[derive(Clone)]
struct RandomOracle {
    seed: u64,
    links: usize,
    /// Density knob: predicted footprint ≈ `links / spread` links.
    spread: usize,
}

impl RandomOracle {
    fn pair_rng(&self, s: NodeId, t: NodeId) -> ChaCha8Rng {
        let mix = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((s.0 as u64) << 32) | t.0 as u64);
        ChaCha8Rng::seed_from_u64(mix)
    }
}

impl FootprintOracle for RandomOracle {
    fn predict(&mut self, s: NodeId, t: NodeId, out: &mut Vec<EdgeId>) {
        let mut rng = self.pair_rng(s, t);
        let count = rng.gen_range(0..=self.links / self.spread.max(1));
        out.extend((0..count).map(|_| EdgeId::from(rng.gen_range(0..self.links))));
    }
}

fn random_pairs(rng: &mut ChaCha8Rng, n_nodes: u32, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|_| {
            (
                NodeId(rng.gen_range(0..n_nodes)),
                NodeId(rng.gen_range(0..n_nodes)),
            )
        })
        .collect()
}

/// Structural validity + the disjointness contract of one plan.
fn assert_plan_valid(
    plan: &GroupPlan,
    oracle: &mut RandomOracle,
    pending: &[(NodeId, NodeId)],
    window: usize,
    links: usize,
) -> Result<(), TestCaseError> {
    // Shape: head always selected, offsets strictly ascending, the range
    // is the contiguous span up to the last member, the group respects
    // the window, and the scan respects the 2×window lookahead.
    prop_assert!(!plan.members.is_empty());
    prop_assert_eq!(plan.members[0], 0);
    prop_assert!(plan.members.windows(2).all(|w| w[0] < w[1]));
    prop_assert_eq!(plan.range, plan.members.last().unwrap() + 1);
    prop_assert!(plan.members.len() <= window.max(1));
    prop_assert!(plan.range <= pending.len().min(window.max(1) * 2));

    // Link-disjointness under the predicted footprints: no link is
    // predicted by two distinct members. (The oracle is deterministic per
    // pair, so re-predicting here reproduces what the partitioner saw.)
    let mut owner = vec![usize::MAX; links];
    for &k in &plan.members {
        let (s, t) = pending[k];
        let mut fp = Vec::new();
        oracle.predict(s, t, &mut fp);
        for e in fp {
            prop_assert!(
                owner[e.index()] == usize::MAX || owner[e.index()] == k,
                "link {} predicted by members {} and {}",
                e.index(),
                owner[e.index()],
                k
            );
            owner[e.index()] = k;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32 })]

    /// Every plan over random pending sets and random footprints is
    /// structurally valid and link-disjoint, across a whole batch's worth
    /// of consecutive rounds reusing one partitioner.
    #[test]
    fn plans_are_valid_and_link_disjoint(
        seed in 0u64..1_000_000,
        links in 8usize..128,
        window in 1usize..32,
        spread in 1usize..16,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut oracle = RandomOracle { seed, links, spread };
        let mut p = ConflictPartitioner::new(links);
        let count = rng.gen_range(1..80);
        let mut pending = random_pairs(&mut rng, 12, count);
        while !pending.is_empty() {
            let plan = p.plan(&mut oracle, &pending, window);
            assert_plan_valid(&plan, &mut oracle, &pending, window, links)?;
            pending.drain(..plan.range);
        }
    }

    /// Degenerate pending shapes: a single demand, all-identical demands
    /// (maximally conflicting predictions), and window 1 all yield valid
    /// singleton-headed schedules that still consume the whole queue.
    #[test]
    fn degenerate_inputs_produce_valid_schedules(
        seed in 0u64..1_000_000,
        links in 8usize..64,
    ) {
        let mut oracle = RandomOracle { seed, links, spread: 2 };
        let mut p = ConflictPartitioner::new(links);

        // Single demand.
        let single = random_pairs(&mut ChaCha8Rng::seed_from_u64(seed), 12, 1);
        let plan = p.plan(&mut oracle, &single, 8);
        assert_plan_valid(&plan, &mut oracle, &single, 8, links)?;
        prop_assert_eq!(&plan.members, &vec![0]);

        // All-identical pairs: every prediction collides with the head's
        // (unless the pair predicts nothing at all, in which case all are
        // mutually disjoint — both are valid plans).
        let same = vec![(NodeId(3), NodeId(7)); 16];
        let plan = p.plan(&mut oracle, &same, 8);
        assert_plan_valid(&plan, &mut oracle, &same, 8, links)?;
        let mut fp = Vec::new();
        oracle.predict(NodeId(3), NodeId(7), &mut fp);
        if !fp.is_empty() {
            prop_assert_eq!(&plan.members, &vec![0]);
        }

        // Window 1 never speculates past the head.
        let pending = random_pairs(&mut ChaCha8Rng::seed_from_u64(seed ^ 1), 12, 20);
        let plan = p.plan(&mut oracle, &pending, 1);
        prop_assert_eq!(plan, GroupPlan { members: vec![0], range: 1 });
    }

    /// The oracle is advisory only: driving the full engine with random
    /// junk predictions still reproduces the serial outcome bit-for-bit,
    /// paying at most bounded retries (one per abort) and inline routes.
    #[test]
    fn junk_predictions_never_break_serial_equivalence(
        seed in 0u64..1_000_000,
        window in 2usize..64,
        spread in 1usize..16,
        policy_idx in 0usize..4,
    ) {
        let policy = [
            Policy::CostOnly,
            Policy::Unrefined,
            Policy::NodeDisjoint,
            Policy::Joint { a: 2.0 },
        ][policy_idx];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Reuse the equivalence suite's topology recipe: distinct uniform
        // costs and free conversion so rule 2 (and with it real group
        // speculation) is live.
        let n = rng.gen_range(5..10u32);
        let mut b = wdm_core::network::NetworkBuilder::new(4);
        let nodes: Vec<_> = (0..n)
            .map(|_| b.add_node(wdm_core::conversion::ConversionTable::Full { cost: 0.0 }))
            .collect();
        let mut c = 1.0;
        for i in 0..n as usize {
            for j in [(i + 1) % n as usize, (i + 2) % n as usize] {
                b.add_link(nodes[i], nodes[j], c);
                c += 0.17;
                b.add_link(nodes[j], nodes[i], c);
                c += 0.17;
            }
        }
        let net = b.build();
        let count = rng.gen_range(10..50);
        let demands: Vec<Demand> = random_pairs(&mut rng, n, count)
            .into_iter()
            .map(|(s, t)| Demand::new(s.0, t.0))
            .collect();
        let st = wdm_core::network::ResidualState::fresh(&net);
        let serial = provision_batch(&net, &st, &demands, policy, BatchOrder::AsGiven);
        let mut oracle = RandomOracle { seed, links: net.link_count(), spread };
        let (out, stats) = provision_batch_speculative_with_oracle(
            &net,
            &st,
            &demands,
            policy,
            BatchOrder::AsGiven,
            window,
            NoopRecorder,
            NoopSink,
            &NoopTracer,
            &mut oracle,
        );
        prop_assert_eq!(&serial.provisioned, &out.provisioned);
        prop_assert_eq!(&serial.rejected, &out.rejected);
        prop_assert_eq!(serial.total_cost.to_bits(), out.total_cost.to_bits());
        prop_assert_eq!(&serial.state, &out.state);
        prop_assert_eq!(stats.aborts, stats.retries);
        prop_assert_eq!(
            stats.commits + stats.retries + stats.inline_routes,
            demands.len() as u64
        );

        // The same junk oracle classifying demands for the sharded engine:
        // a garbage footprint can misroute a demand to the wrong side of
        // the intra/cross split, but never break serial equivalence —
        // escapes surface as lineage/escape aborts, each retried inline.
        for shards in [2usize, 3] {
            let mut oracle = RandomOracle { seed, links: net.link_count(), spread };
            let (out, stats) = provision_batch_sharded(
                &net,
                &st,
                &demands,
                policy,
                BatchOrder::AsGiven,
                window,
                shards,
                2,
                NoopRecorder,
                NoopSink,
                &NoopTracer,
                &mut oracle,
            );
            prop_assert_eq!(&serial.provisioned, &out.provisioned);
            prop_assert_eq!(&serial.rejected, &out.rejected);
            prop_assert_eq!(serial.total_cost.to_bits(), out.total_cost.to_bits());
            prop_assert_eq!(&serial.state, &out.state);
            prop_assert_eq!(stats.aborts, stats.retries);
            prop_assert_eq!(
                stats.commits + stats.retries + stats.inline_routes,
                demands.len() as u64
            );
            prop_assert!(stats.cut_demands <= stats.inline_routes);
        }
    }
}
