//! End-to-end journal equivalence: a journaled simulation (arrivals,
//! departures, fibre cuts, repairs, reconfiguration sweeps) must replay to
//! the exact final state, and journaling must not perturb the run itself.

use wdm_core::journal::StateJournal;
use wdm_core::network::{NetworkBuilder, ResidualState};
use wdm_graph::EdgeId;
use wdm_sim::policy::Policy;
use wdm_sim::sim::{run_sim, run_sim_journaled, SimConfig};
use wdm_sim::traffic::TrafficModel;

fn cfg(policy: Policy, seed: u64) -> SimConfig {
    SimConfig {
        policy,
        traffic: TrafficModel::new(5.0, 10.0),
        duration: 150.0,
        failure_rate: 0.02,
        mean_repair: 15.0,
        reconfig_threshold: Some(0.7),
        seed,
        switchover_time: 0.001,
        setup_time_per_hop: 0.05,
    }
}

/// For every (seed, policy) pair: replaying the recorded journal over its
/// checkpoint reconstructs the live run's final state bit-identically —
/// payload, failure flags, global clock, and every per-link clock.
#[test]
fn journaled_simulation_replays_bit_identically() {
    let net = NetworkBuilder::nsfnet(8).build();
    let a = std::f64::consts::E;
    for policy in [Policy::CostOnly, Policy::Joint { a }] {
        for seed in [1u64, 17, 20260805] {
            let mut journal = StateJournal::new(ResidualState::fresh(&net));
            let (metrics, final_state) = run_sim_journaled(&net, cfg(policy, seed), &mut journal);
            assert!(
                metrics.offered > 0 && !journal.is_empty(),
                "the run must exercise the journal (seed {seed})"
            );

            let replayed = journal
                .replay(&net)
                .unwrap_or_else(|e| panic!("seed {seed}: replay diverged: {e}"));
            assert_eq!(replayed, final_state, "payload diverged (seed {seed})");
            assert_eq!(
                replayed.change_clock(),
                final_state.change_clock(),
                "global clock diverged (seed {seed})"
            );
            for ei in 0..net.link_count() {
                let e = EdgeId::from(ei);
                assert_eq!(
                    replayed.link_change_clock(e),
                    final_state.link_change_clock(e),
                    "link clock diverged on {e:?} (seed {seed})"
                );
            }
            assert_eq!(replayed.semantic_hash(), final_state.semantic_hash());
        }
    }
}

/// Journaling is observation, not interference: the journaled run's metrics
/// equal the plain run's for the same configuration.
#[test]
fn journaling_does_not_perturb_the_run() {
    let net = NetworkBuilder::nsfnet(8).build();
    for seed in [1u64, 17] {
        let c = cfg(Policy::CostOnly, seed);
        let plain = run_sim(&net, c);
        let mut journal = StateJournal::new(ResidualState::fresh(&net));
        let (journaled, _) = run_sim_journaled(&net, c, &mut journal);
        assert_eq!(plain, journaled, "seed {seed}");
    }
}
